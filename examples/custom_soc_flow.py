#!/usr/bin/env python3
"""Custom SOC flow: describe your own chip, export it, and validate the model.

This example shows the parts of the library a DfT engineer would use on a
design that is *not* one of the shipped benchmarks:

1. describe the SOC programmatically with :class:`SocBuilder` (or write a
   ``.soc`` file by hand and parse it),
2. export / re-import the ``.soc`` description,
3. design the test infrastructure for a given ATE and find the optimal
   multi-site,
4. cross-check the analytic throughput model against the cycle-accurate
   scan simulator and the Monte-Carlo wafer-test flow (including contact
   failures and re-test),
5. estimate whole-wafer test time from a wafer map.

Run with:  python examples/custom_soc_flow.py
"""

import tempfile
from pathlib import Path

from repro import (
    AteSpec,
    OptimizationConfig,
    ProbeStation,
    SocBuilder,
    optimize_multisite,
    parse_soc_file,
    write_soc_file,
)
from repro.core.units import kilo_vectors
from repro.sim.montecarlo import FlowParameters, simulate_flow
from repro.sim.scan_sim import simulate_architecture
from repro.sim.wafer import TouchdownPlan, WaferMap


def build_soc():
    """A small set-top-box style SOC: CPU, DSP, peripherals and memories."""
    return (
        SocBuilder("stb_soc", functional_pins=420)
        .add_module("cpu", inputs=96, outputs=64, bidirs=16,
                    scan_lengths=[420] * 12, patterns=900)
        .add_module("dsp", inputs=64, outputs=64, bidirs=0,
                    scan_lengths=[380] * 8, patterns=650)
        .add_module("video_in", inputs=48, outputs=24, bidirs=8,
                    scan_lengths=[250] * 4, patterns=300)
        .add_module("video_out", inputs=24, outputs=56, bidirs=0,
                    scan_lengths=[260] * 4, patterns=280)
        .add_module("usb", inputs=20, outputs=18, bidirs=4,
                    scan_lengths=[120, 120], patterns=150)
        .add_module("uart", inputs=8, outputs=8, bidirs=0,
                    scan_lengths=[60], patterns=60)
        .add_module("sram0", inputs=24, outputs=24, bidirs=0,
                    scan_lengths=[], patterns=800, is_memory=True)
        .add_module("sram1", inputs=24, outputs=24, bidirs=0,
                    scan_lengths=[], patterns=800, is_memory=True)
        .add_module("rom", inputs=16, outputs=16, bidirs=0,
                    scan_lengths=[], patterns=200, is_memory=True)
        .build()
    )


def main() -> None:
    soc = build_soc()
    print(soc.describe())
    print()

    # ------------------------------------------------------------------
    # Export to the .soc interchange format and read it back.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = write_soc_file(soc, Path(tmp) / "stb_soc.soc")
        reloaded = parse_soc_file(path)
        assert reloaded == soc
        print(f"round-tripped the SOC description through {path.name}")
    print()

    # ------------------------------------------------------------------
    # Design the test infrastructure on a mid-range ATE.
    # ------------------------------------------------------------------
    ate = AteSpec(channels=128, depth=kilo_vectors(512), frequency_hz=10e6, name="ate-128x512K")
    probe = ProbeStation(index_time_s=0.4, contact_test_time_s=0.008, contact_yield=0.9995)
    config = OptimizationConfig(broadcast=False, manufacturing_yield=0.92)
    result = optimize_multisite(soc, ate, probe, config)
    print(result.describe())
    print()
    print(result.best.architecture.describe())
    print()

    # ------------------------------------------------------------------
    # Validate the analytic model against the simulators.
    # ------------------------------------------------------------------
    trace = simulate_architecture(result.best.architecture)
    print(f"analytic SOC test time : {result.best.test_time_cycles} cycles")
    print(f"simulated SOC test time: {trace.test_time_cycles} cycles")

    flow = simulate_flow(
        FlowParameters(
            sites=result.optimal_sites,
            timing=result.best.scenario.timing,
            terminals_per_site=result.best.channels_per_site,
            contact_yield=probe.contact_yield,
            manufacturing_yield=config.manufacturing_yield,
        ),
        devices=20_000,
        seed=1,
    )
    print(f"analytic throughput     : {result.best.throughput:8.0f} devices/hour")
    print(f"Monte-Carlo throughput  : {flow.throughput_per_hour:8.0f} devices/hour")
    print(f"Monte-Carlo unique/hour : {flow.unique_throughput_per_hour:8.0f} "
          f"({flow.retests} re-tests over {flow.unique_devices} devices)")
    print()

    # ------------------------------------------------------------------
    # Whole-wafer view.
    # ------------------------------------------------------------------
    wafer = WaferMap(diameter_mm=300, die_width_mm=9, die_height_mm=9)
    plan = TouchdownPlan(wafer=wafer, sites=result.optimal_sites)
    wafer_time = plan.wafer_test_time_s(probe.index_time_s, result.best.scenario.test_time_s())
    print(f"dies per wafer          : {wafer.dies_per_wafer}")
    print(f"touchdowns per wafer    : {plan.num_touchdowns} "
          f"(site utilisation {plan.site_utilisation * 100:.0f}%)")
    print(f"wafer test time         : {wafer_time / 60:.1f} minutes")


if __name__ == "__main__":
    main()
