#!/usr/bin/env python3
"""Quickstart: design the on-chip test infrastructure for an ITC'02 benchmark.

This example walks through the library's headline API:

1. load an ITC'02 benchmark SOC (d695),
2. describe the fixed target test cell (ATE + probe station),
3. run the paper's two-step algorithm to find the throughput-optimal
   multi-site configuration,
4. inspect the resulting infrastructure: channel groups (TAMs), module
   wrappers and the chip-level E-RPCT wrapper.

Run with:  python examples/quickstart.py
"""

from repro import (
    AteSpec,
    OptimizationConfig,
    ProbeStation,
    load_benchmark,
    optimize_multisite,
)
from repro.core.units import kilo_vectors
from repro.wrapper import design_wrapper


def main() -> None:
    # 1. The SOC under test: the d695 benchmark (ten ISCAS cores).
    soc = load_benchmark("d695")
    print(soc.describe())
    print()

    # 2. The fixed test cell: a 256-channel ATE with 64 K vectors per channel
    #    and a 5 MHz test clock, plus the paper's reference probe station.
    ate = AteSpec(channels=256, depth=kilo_vectors(64), frequency_hz=5e6, name="ate-256x64K")
    probe = ProbeStation(index_time_s=0.5, contact_test_time_s=0.010, contact_yield=0.999)
    print(ate.describe())
    print(probe.describe())
    print()

    # 3. Run the two-step algorithm (no stimuli broadcast, maximise D_th).
    result = optimize_multisite(soc, ate, probe, OptimizationConfig(broadcast=False))
    print(result.describe())
    print()

    # 4a. The chip-level E-RPCT wrapper: how many pads the prober touches.
    print(result.step1.erpct.describe())
    print()

    # 4b. The channel-group architecture (TAMs) behind the wrapper.
    print(result.best.architecture.describe())
    print()

    # 4c. A module wrapper in detail: the widest core on its TAM.
    bottleneck_group = max(result.best.architecture.groups, key=lambda group: group.fill)
    biggest = max(bottleneck_group.modules, key=lambda module: module.test_data_volume_bits)
    wrapper = design_wrapper(biggest, bottleneck_group.width)
    print(f"wrapper detail for {biggest.name}:")
    print(f"  {wrapper.describe()}")
    for chain in wrapper.chains[:6]:
        print(
            f"    chain {chain.index}: {chain.scan_flipflops} scan FF, "
            f"{chain.input_cells} in-cells, {chain.output_cells} out-cells"
        )
    print()

    # 5. The Step-2 sweep: throughput for every feasible site count.
    print("sites  channels/site  test time (s)  devices/hour")
    for point in sorted(result.points, key=lambda point: point.sites):
        marker = "  <== optimal" if point.sites == result.optimal_sites else ""
        seconds = ate.cycles_to_seconds(point.test_time_cycles)
        print(
            f"{point.sites:5d}  {point.channels_per_site:13d}  {seconds:13.3f}  "
            f"{point.throughput:12.0f}{marker}"
        )


if __name__ == "__main__":
    main()
