#!/usr/bin/env python3
"""Quickstart: design the on-chip test infrastructure for an ITC'02 benchmark.

This example walks through the library's scenario-first API:

1. describe the fixed target test cell (ATE + probe station) as a TestCell,
2. declare the optimisation run as a Scenario (SOC by benchmark name),
3. execute it with the Engine to find the throughput-optimal multi-site
   configuration,
4. inspect the resulting infrastructure: channel groups (TAMs), module
   wrappers and the chip-level E-RPCT wrapper,
5. sweep a parameter grid as one parallel batch,
6. swap the optimisation strategy: the solver registry makes the paper's
   greedy two-step (``"goel05"``) one backend among several, and a solver
   duel is just another sweep axis.

The legacy free functions (``optimize_multisite``, ``design_step1_only``)
remain fully supported and route through the default backend, so both APIs
return identical results.

Run with:  python examples/quickstart.py
"""

from repro import (
    AteSpec,
    Engine,
    OptimizationConfig,
    ProbeStation,
    Scenario,
    TestCell,
)
from repro.core.units import kilo_vectors, mega_vectors
from repro.wrapper import design_wrapper


def main() -> None:
    # 1. The fixed test cell: a 256-channel ATE with 64 K vectors per channel
    #    and a 5 MHz test clock, plus the paper's reference probe station.
    cell = TestCell(
        ate=AteSpec(channels=256, depth=kilo_vectors(64), frequency_hz=5e6, name="ate-256x64K"),
        probe_station=ProbeStation(
            index_time_s=0.5, contact_test_time_s=0.010, contact_yield=0.999
        ),
    )
    print(cell.describe())
    print()

    # 2. The run, declared as a scenario: the d695 benchmark (ten ISCAS
    #    cores, referenced by name) on that cell, no stimuli broadcast.
    scenario = Scenario(
        soc="d695", test_cell=cell, config=OptimizationConfig(broadcast=False)
    )
    print(scenario.resolve().describe())
    print()

    # 3. Execute through the engine (a repeated run would be a cache hit).
    engine = Engine()
    outcome = engine.run(scenario)
    result = outcome.result
    print(result.describe())
    print()

    # 4a. The chip-level E-RPCT wrapper: how many pads the prober touches.
    print(result.step1.erpct.describe())
    print()

    # 4b. The channel-group architecture (TAMs) behind the wrapper.
    print(result.best.architecture.describe())
    print()

    # 4c. A module wrapper in detail: the widest core on its TAM.
    bottleneck_group = max(result.best.architecture.groups, key=lambda group: group.fill)
    biggest = max(bottleneck_group.modules, key=lambda module: module.test_data_volume_bits)
    wrapper = design_wrapper(biggest, bottleneck_group.width)
    print(f"wrapper detail for {biggest.name}:")
    print(f"  {wrapper.describe()}")
    for chain in wrapper.chains[:6]:
        print(
            f"    chain {chain.index}: {chain.scan_flipflops} scan FF, "
            f"{chain.input_cells} in-cells, {chain.output_cells} out-cells"
        )
    print()

    # 5a. The Step-2 sweep: throughput for every feasible site count.
    print("sites  channels/site  test time (s)  devices/hour")
    for point in sorted(result.points, key=lambda point: point.sites):
        marker = "  <== optimal" if point.sites == result.optimal_sites else ""
        seconds = cell.ate.cycles_to_seconds(point.test_time_cycles)
        print(
            f"{point.sites:5d}  {point.channels_per_site:13d}  {seconds:13.3f}  "
            f"{point.throughput:12.0f}{marker}"
        )
    print()

    # 5b. A parameter grid as one batch: channel count x broadcast, executed
    #     in parallel (the scenario already run is served from the cache).
    grid = Scenario.sweep(
        "d695", cell, channels=[128, 256, 512], broadcast=[False, True]
    )
    results = engine.run_batch(grid, workers=4)
    print("batch sweep (channels x broadcast):")
    for item in results:
        ate = item.scenario.test_cell.ate
        shared = "broadcast" if item.scenario.config.broadcast else "no broadcast"
        print(
            f"  {ate.channels:4d} channels, {shared:12s}: "
            f"{item.optimal_sites:3d} sites, {item.optimal_throughput:8.0f} devices/hour"
        )
    info = engine.cache_info()
    print(f"engine cache: {info.hits} hits, {info.misses} misses")
    print()

    # 6a. Solver selection: the same scenario under the randomized
    #     multi-start backend (deterministically seeded -- rerunning this
    #     script always prints the same numbers).
    from repro import list_solvers

    print("registered solver backends:")
    for solver in list_solvers():
        print(f"  {solver.name:12s} {solver.title}")
    restart_outcome = engine.run(scenario.with_solver("restart"))
    print(
        f"restart backend: {restart_outcome.optimal_sites} sites, "
        f"{restart_outcome.optimal_throughput:.0f} devices/hour "
        f"(goel05: {result.optimal_throughput:.0f})"
    )
    print()

    # 6b. A solver duel as a sweep: backend x channel count in one batch.
    duel = engine.run_batch(
        Scenario.sweep("d695", cell, channels=[128, 256], solvers=["goel05", "restart"])
    )
    print("solver duel (channels x backend):")
    for item in duel:
        ate = item.scenario.test_cell.ate
        print(
            f"  {ate.channels:4d} channels, {item.scenario.solver:8s}: "
            f"{item.optimal_sites:3d} sites, {item.optimal_throughput:8.0f} devices/hour"
        )
    print()

    # 7. Campaign scale: a lazy SweepGrid over name-addressable catalog
    #    SOCs (here a deterministic synthetic family), sharded and
    #    streamed -- results arrive in completion order, and with a
    #    store-backed engine each one would persist immediately.
    from repro import SweepGrid, synthetic_family

    campaign = SweepGrid(
        synthetic_family(42, count=4, modules=5),
        cell.with_depth(mega_vectors(1.0)),
        channels=[64, 128],
    )
    shard = campaign.shard(0, 2)  # this machine's half of the grid
    print(f"campaign {campaign.describe()}, running shard 0/2:")
    for item in engine.run_iter(shard):
        print(
            f"  {item.soc_name:15s} @ {item.scenario.test_cell.ate.channels:3d} "
            f"channels: {item.optimal_sites:3d} sites, "
            f"{item.optimal_throughput:8.0f} devices/hour"
        )


if __name__ == "__main__":
    main()
