#!/usr/bin/env python3
"""PNX8550 throughput study: the paper's single-chip experiments in one script.

Reproduces, on the synthetic PNX8550 model (62 logic + 212 memory modules):

* Figure 5  -- throughput versus number of sites, with and without stimuli
  broadcast, including the Step-1-only reference line;
* Figure 6  -- throughput scaling with ATE channel count and with vector
  memory depth (reduced sweeps so the script finishes in about a minute;
  pass ``--full`` for the paper's complete sweeps);
* the economics argument -- doubling the vector memory versus spending the
  same money on extra channels.

Run with:  python examples/pnx8550_throughput_study.py [--full]
"""

import argparse

from repro.experiments.economics import run_economics, summarize_economics
from repro.experiments.figure5 import run_figure5, summarize_figure5
from repro.experiments.figure6 import (
    DEFAULT_CHANNEL_SWEEP,
    DEFAULT_DEPTH_SWEEP_M,
    run_figure6,
    summarize_figure6,
)
from repro.reporting.series import series_table
from repro.soc import make_pnx8550


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the paper's full Figure-6 sweeps (slower)")
    args = parser.parse_args()

    soc = make_pnx8550()
    print(soc.describe())
    print()

    # ------------------------------------------------------------------
    # Figure 5: optimal multi-site with and without stimuli broadcast.
    # ------------------------------------------------------------------
    figure5 = run_figure5(soc=soc)
    print(summarize_figure5(figure5))
    print()
    print("broadcast case -- step 1+2 versus step 1 only:")
    print(series_table([figure5.throughput_broadcast, figure5.step1_only_broadcast]))
    print()

    # ------------------------------------------------------------------
    # Figure 6: what should you buy -- channels or memory?
    # ------------------------------------------------------------------
    if args.full:
        channel_sweep = DEFAULT_CHANNEL_SWEEP
        depth_sweep = DEFAULT_DEPTH_SWEEP_M
    else:
        channel_sweep = (512, 768, 1024)
        depth_sweep = (5, 7, 10, 14)
    figure6 = run_figure6(soc=soc, channel_sweep=channel_sweep, depth_sweep_m=depth_sweep)
    print(summarize_figure6(figure6))
    print()
    print(figure6.throughput_vs_channels.render())
    print()
    print(figure6.throughput_vs_depth.render())
    print()

    # ------------------------------------------------------------------
    # Section 7 economics: memory is the cheaper throughput knob.
    # ------------------------------------------------------------------
    economics = run_economics(soc=soc)
    print(economics.to_table().render())
    print()
    print(summarize_economics(economics))


if __name__ == "__main__":
    main()
