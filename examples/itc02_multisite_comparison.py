#!/usr/bin/env python3
"""ITC'02 benchmark comparison: lower bound vs. rectangle packing vs. Step 1.

Regenerates the paper's Table 1 for the four ITC'02 SOC Test Benchmarks
(d695, p22810, p34392, p93791): for each vector-memory depth it reports the
number of ATE channels one SOC needs and the maximum multi-site reachable
with stimuli broadcast, for

* the theoretical lower bound,
* the rectangle bin-packing baseline (Iyengar et al., ITC 2002), and
* this library's Step-1 channel-group design.

Run with:  python examples/itc02_multisite_comparison.py [benchmark ...]
"""

import sys

from repro.experiments.table1 import (
    DEFAULT_DEPTH_GRIDS_K,
    run_table1,
    summarize_table1,
)
from repro.itc02 import TABLE1_BENCHMARKS, benchmark_info


def main() -> None:
    requested = sys.argv[1:] or list(TABLE1_BENCHMARKS)
    for name in requested:
        info = benchmark_info(name)
        origin = "synthetic reconstruction" if info.synthetic else "published data"
        print(f"{info.name}: {info.modules} modules ({origin})")
    print()

    result = run_table1(benchmarks=tuple(requested))
    for name in result.benchmarks:
        print(result.to_table(name).render())
        rows = result.rows_for(name)
        gap = max(row.our_channels - row.lower_bound_channels for row in rows)
        print(f"  -> largest gap to the lower bound over "
              f"{len(DEFAULT_DEPTH_GRIDS_K[name])} depths: {gap} channels")
        print()

    print(summarize_table1(result))


if __name__ == "__main__":
    main()
