"""Unit tests for the reporting helpers (tables and series)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.reporting.series import Series, series_table
from repro.reporting.tables import Table


class TestTable:
    def test_add_row_and_render(self):
        table = Table(title="T", columns=["a", "b"])
        table.add_row([1, "x"])
        table.add_row([2.5, "y"])
        text = table.render()
        assert "T" in text and "a" in text and "x" in text

    def test_row_length_checked(self):
        table = Table(title="T", columns=["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row([1])

    def test_rows_at_construction_checked(self):
        with pytest.raises(ConfigurationError):
            Table(title="T", columns=["a"], rows=[["1", "2"]])

    def test_no_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Table(title="T", columns=[])

    def test_column_lookup(self):
        table = Table(title="T", columns=["a", "b"], rows=[["1", "2"], ["3", "4"]])
        assert table.column("b") == ["2", "4"]
        with pytest.raises(KeyError):
            table.column("zzz")

    def test_float_formatting(self):
        table = Table(title="T", columns=["v"])
        table.add_row([3.14159])
        assert table.rows[0][0] == "3.14"

    def test_integral_float_formatting(self):
        table = Table(title="T", columns=["v"])
        table.add_row([5.0])
        assert table.rows[0][0] == "5"

    def test_num_rows(self):
        table = Table(title="T", columns=["a"], rows=[["1"], ["2"]])
        assert table.num_rows == 2

    def test_markdown_output(self):
        table = Table(title="T", columns=["a", "b"], rows=[["1", "2"]])
        markdown = table.to_markdown()
        assert "| a | b |" in markdown
        assert "| 1 | 2 |" in markdown


class TestSeries:
    @pytest.fixture
    def series(self):
        return Series(name="s", x_label="x", y_label="y",
                      points=((1.0, 10.0), (2.0, 15.0), (3.0, 30.0)))

    def test_xs_ys(self, series):
        assert series.xs == (1.0, 2.0, 3.0)
        assert series.ys == (10.0, 15.0, 30.0)

    def test_y_at(self, series):
        assert series.y_at(2.0) == 15.0
        with pytest.raises(KeyError):
            series.y_at(9.0)

    def test_argmax_and_extrema(self, series):
        assert series.argmax == 3.0
        assert series.max == 30.0
        assert series.min == 10.0

    def test_monotonicity_checks(self, series):
        assert series.is_nondecreasing()
        assert not series.is_nonincreasing()

    def test_monotonicity_with_tolerance(self):
        noisy = Series("n", "x", "y", ((1.0, 100.0), (2.0, 99.5), (3.0, 120.0)))
        assert not noisy.is_nondecreasing()
        assert noisy.is_nondecreasing(tolerance=0.01)

    def test_relative_gain(self, series):
        assert series.relative_gain() == pytest.approx(2.0)

    def test_linearity_ratio(self, series):
        # x grows 3x (gain 2.0), y grows 3x (gain 2.0) -> ratio 1.
        assert series.linearity_ratio() == pytest.approx(1.0)

    def test_linearity_ratio_sublinear(self):
        sub = Series("s", "x", "y", ((1.0, 10.0), (2.0, 13.0)))
        assert sub.linearity_ratio() == pytest.approx(0.3)

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            Series("s", "x", "y", ())

    def test_render_contains_name(self, series):
        assert "s" in series.render()


class TestSeriesTable:
    def test_aligned_rendering(self):
        a = Series("a", "x", "y", ((1.0, 10.0), (2.0, 20.0)))
        b = Series("b", "x", "y", ((1.0, 5.0), (2.0, 6.0)))
        text = series_table([a, b])
        assert "a" in text and "b" in text

    def test_mismatched_grids_rejected(self):
        a = Series("a", "x", "y", ((1.0, 10.0),))
        b = Series("b", "x", "y", ((2.0, 5.0),))
        with pytest.raises(ConfigurationError):
            series_table([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            series_table([])
