"""Tests of the solver-comparison experiment."""

import pytest

from repro.api.engine import Engine
from repro.core.exceptions import ConfigurationError
from repro.experiments.registry import experiment_names, get_experiment
from repro.experiments.solver_comparison import (
    ORACLE_SOLVERS,
    derived_small_socs,
    render_solver_comparison,
    run_solver_comparison,
    summarize_solver_comparison,
)
from repro.solvers.registry import DEFAULT_SOLVER


@pytest.fixture(scope="module")
def comparison():
    """A trimmed comparison: d695 only, two oracle instance sizes."""
    return run_solver_comparison(benchmarks=("d695",), small_sizes=(3, 4))


class TestDerivedSocs:
    def test_sub_socs_take_the_first_cores(self):
        socs = derived_small_socs((3, 5))
        assert [soc.name for soc in socs] == ["d695-3", "d695-5"]
        assert [len(soc.modules) for soc in socs] == [3, 5]

    def test_out_of_range_size_rejected(self):
        with pytest.raises(ConfigurationError, match="sub-SOC size"):
            derived_small_socs((0,))
        with pytest.raises(ConfigurationError, match="sub-SOC size"):
            derived_small_socs((11,))


class TestComparison:
    def test_every_solver_ran_on_every_oracle_instance(self, comparison):
        assert comparison.oracle_instances == ("d695-3", "d695-4")
        for name in comparison.oracle_instances:
            solvers = {row.solver for row in comparison.rows_for(name)}
            assert solvers == set(ORACLE_SOLVERS)

    def test_exhaustive_agrees_with_goel05_on_small_instances(self, comparison):
        # Acceptance criterion: the oracle confirms the paper's heuristic on
        # the d695-derived small instances of the comparison.
        assert set(comparison.oracle_agreements) == set(comparison.oracle_instances)
        for name in comparison.oracle_instances:
            greedy = comparison.row(name, DEFAULT_SOLVER)
            exact = comparison.row(name, "exhaustive")
            assert greedy.throughput == pytest.approx(exact.throughput)

    def test_exhaustive_is_never_beaten_on_its_instances(self, comparison):
        for name in comparison.oracle_instances:
            exact = comparison.row(name, "exhaustive")
            assert comparison.gap(exact) == pytest.approx(0.0)

    def test_gaps_are_relative_to_the_instance_best(self, comparison):
        for row in comparison.rows:
            gap = comparison.gap(row)
            assert 0.0 <= gap < 1.0
            best = comparison.best_throughput(row.soc_name)
            assert row.throughput == pytest.approx(best * (1.0 - gap))

    def test_full_benchmark_rows_use_greedy_solvers_only(self, comparison):
        solvers = {row.solver for row in comparison.rows_for("d695")}
        assert solvers == {DEFAULT_SOLVER, "restart", "simulated_annealing"}

    def test_missing_row_lookup_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison.row("d695", "exhaustive")

    def test_requires_at_least_one_instance(self):
        with pytest.raises(ConfigurationError, match="at least one instance"):
            run_solver_comparison(benchmarks=(), small_sizes=())


class TestRendering:
    def test_table_lists_every_row(self, comparison):
        text = comparison.to_table().render()
        for row in comparison.rows:
            assert row.solver in text
        assert "d695-3" in text

    def test_summary_reports_agreement_and_wins(self, comparison):
        text = summarize_solver_comparison(comparison)
        assert "matches the exhaustive optimum on 2/2" in text
        assert "full ITC'02 benchmarks" in text

    def test_render_combines_table_and_summary(self, comparison):
        text = render_solver_comparison(comparison)
        assert "Solver comparison" in text
        assert "goel05" in text


class TestRegistration:
    def test_experiment_is_registered(self):
        assert "solver_comparison" in experiment_names()
        experiment = get_experiment("solver_comparison")
        assert "solver" in experiment.title.lower() or "Solver" in experiment.title

    def test_engine_cache_is_shared_across_solver_rows(self):
        engine = Engine()
        run_solver_comparison(benchmarks=(), small_sizes=(3,), engine=engine)
        # Re-running through the same engine is pure cache hits.
        before = engine.cache_info()
        run_solver_comparison(benchmarks=(), small_sizes=(3,), engine=engine)
        after = engine.cache_info()
        assert after.misses == before.misses
        assert after.hits > before.hits
