"""Property-based tests for wrapper design and partitioning (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.soc.module import make_module
from repro.wrapper.combine import design_wrapper, module_test_time
from repro.wrapper.design import scan_test_time
from repro.wrapper.partition import best_partition, lpt_partition, spread_cells


@st.composite
def modules_strategy(draw):
    """Small but structurally diverse valid modules."""
    inputs = draw(st.integers(min_value=0, max_value=60))
    outputs = draw(st.integers(min_value=0, max_value=60))
    bidirs = draw(st.integers(min_value=0, max_value=10))
    scan_lengths = draw(
        st.lists(st.integers(min_value=1, max_value=300), min_size=0, max_size=12)
    )
    if inputs + outputs + bidirs + len(scan_lengths) == 0:
        inputs = 1
    patterns = draw(st.integers(min_value=1, max_value=400))
    return make_module("prop", inputs, outputs, bidirs, scan_lengths, patterns)


modules = modules_strategy()
widths = st.integers(min_value=1, max_value=24)


class TestPartitionProperties:
    @given(sizes=st.lists(st.integers(min_value=0, max_value=1000), max_size=20),
           bins=st.integers(min_value=1, max_value=8))
    def test_lpt_places_every_item_once(self, sizes, bins):
        partition = lpt_partition(sizes, bins)
        placed = sorted(i for bin_items in partition.bins for i in bin_items)
        assert placed == list(range(len(sizes)))

    @given(sizes=st.lists(st.integers(min_value=0, max_value=1000), max_size=20),
           bins=st.integers(min_value=1, max_value=8))
    def test_makespan_bounds(self, sizes, bins):
        partition = best_partition(sizes, bins)
        total = sum(sizes)
        largest = max(sizes) if sizes else 0
        # Any schedule is bounded below by both the average and the largest
        # item, and LPT/BFD never exceed 2x the optimum, hence <= 2 * bound.
        lower = max(largest, -(-total // bins))
        assert partition.makespan >= lower
        assert partition.makespan <= max(1, 2 * lower)

    @given(base=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=10),
           cells=st.integers(min_value=0, max_value=2000))
    def test_spread_cells_conserves_and_balances(self, base, cells):
        added = spread_cells(base, cells)
        assert sum(added) == cells
        assert all(value >= 0 for value in added)
        final = [b + a for b, a in zip(base, added)]
        # No chain that received a cell may end up strictly above another
        # chain's final load by more than 1 (water-filling property).
        received = [final[i] for i in range(len(base)) if added[i] > 0]
        if received:
            assert max(received) <= min(final) + 1


class TestWrapperProperties:
    @given(module=modules, width=widths)
    @settings(max_examples=60, deadline=None)
    def test_test_time_matches_formula(self, module, width):
        design = design_wrapper(module, width)
        assert design.test_time_cycles == scan_test_time(
            design.max_scan_in, design.max_scan_out, module.patterns
        )

    @given(module=modules, width=widths)
    @settings(max_examples=60, deadline=None)
    def test_wrapper_conserves_cells_and_chains(self, module, width):
        design = design_wrapper(module, width)
        assert sum(chain.scan_flipflops for chain in design.chains) == module.total_scan_flipflops
        assert sum(chain.input_cells for chain in design.chains) == module.wrapper_input_cells
        assert sum(chain.output_cells for chain in design.chains) == module.wrapper_output_cells
        assigned = sorted(
            index for chain in design.chains for index in chain.scan_chain_indices
        )
        assert assigned == list(range(module.num_scan_chains))

    @given(module=modules, width=widths)
    @settings(max_examples=60, deadline=None)
    def test_width_never_exceeded(self, module, width):
        design = design_wrapper(module, width)
        assert len(design.chains) <= width

    @given(module=modules, width=widths)
    @settings(max_examples=60, deadline=None)
    def test_scan_paths_bounded_by_serial_case(self, module, width):
        design = design_wrapper(module, width)
        assert design.max_scan_in <= module.scan_in_bits
        assert design.max_scan_out <= module.scan_out_bits

    @given(module=modules, width=widths)
    @settings(max_examples=60, deadline=None)
    def test_lower_bound_on_scan_in(self, module, width):
        # A perfect partition cannot beat the ceiling of total bits / width.
        design = design_wrapper(module, width)
        if module.scan_in_bits:
            assert design.max_scan_in >= -(-module.scan_in_bits // width)

    @given(module=modules)
    @settings(max_examples=40, deadline=None)
    def test_single_wire_serialises(self, module):
        assert module_test_time(module, 1) == scan_test_time(
            module.scan_in_bits, module.scan_out_bits, module.patterns
        )

    @given(module=modules, width=st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_wider_is_never_worse_than_serial(self, module, width):
        assert module_test_time(module, width) <= module_test_time(module, 1)
