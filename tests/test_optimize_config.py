"""Unit tests for the optimisation configuration."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.optimize.config import Objective, OptimizationConfig


class TestOptimizationConfig:
    def test_defaults_match_paper_base_case(self):
        config = OptimizationConfig()
        assert not config.broadcast
        assert not config.abort_on_fail
        assert config.objective is Objective.THROUGHPUT
        assert config.manufacturing_yield == 1.0
        assert config.min_sites == 1
        assert config.max_sites is None

    def test_with_broadcast(self):
        assert OptimizationConfig().with_broadcast(True).broadcast

    def test_with_abort_on_fail(self):
        assert OptimizationConfig().with_abort_on_fail(True).abort_on_fail

    def test_with_site_limit(self):
        assert OptimizationConfig().with_site_limit(8).max_sites == 8

    def test_with_methods_do_not_mutate_original(self):
        config = OptimizationConfig()
        config.with_broadcast(True)
        assert not config.broadcast

    def test_invalid_yield_rejected(self):
        with pytest.raises(ConfigurationError):
            OptimizationConfig(manufacturing_yield=1.5)

    def test_invalid_min_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            OptimizationConfig(min_sites=0)

    def test_max_below_min_rejected(self):
        with pytest.raises(ConfigurationError):
            OptimizationConfig(min_sites=4, max_sites=2)

    def test_describe_mentions_switches(self):
        text = OptimizationConfig(broadcast=True, abort_on_fail=True).describe()
        assert "broadcast=on" in text and "abort-on-fail=on" in text

    def test_objective_values(self):
        assert Objective.THROUGHPUT.value == "throughput"
        assert Objective.UNIQUE_THROUGHPUT.value == "unique_throughput"
