"""Unit tests for the COMBINE wrapper-design algorithm."""

import pytest

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.soc.module import make_module
from repro.wrapper.combine import design_wrapper, min_width_for_depth, module_test_time
from repro.wrapper.design import scan_test_time


class TestDesignWrapper:
    def test_width_one_serialises_everything(self):
        module = make_module("m", 3, 2, 0, [40, 30], 10)
        design = design_wrapper(module, 1)
        assert design.max_scan_in == 70 + 3
        assert design.max_scan_out == 70 + 2
        assert design.used_width == 1

    def test_scan_chains_kept_whole(self):
        module = make_module("m", 0, 0, 0, [50, 30, 20], 5)
        design = design_wrapper(module, 2)
        # One chain carries the 50, the other 30+20.
        assert sorted(chain.scan_flipflops for chain in design.chains) == [50, 50]

    def test_io_cells_balanced(self):
        module = make_module("m", 10, 10, 0, [], 5)
        design = design_wrapper(module, 5)
        assert design.max_scan_in == 2
        assert design.max_scan_out == 2

    def test_width_larger_than_useful_is_harmless(self):
        module = make_module("m", 2, 2, 0, [10], 5)
        narrow = design_wrapper(module, 3)
        wide = design_wrapper(module, 50)
        assert wide.test_time_cycles == narrow.test_time_cycles

    def test_chains_do_not_exceed_width(self):
        module = make_module("m", 20, 20, 0, [30] * 6, 5)
        design = design_wrapper(module, 4)
        assert len(design.chains) <= 4

    def test_all_scan_chains_assigned(self):
        module = make_module("m", 0, 0, 0, [11, 12, 13, 14, 15], 2)
        design = design_wrapper(module, 3)
        assigned = sorted(
            index for chain in design.chains for index in chain.scan_chain_indices
        )
        assert assigned == [0, 1, 2, 3, 4]

    def test_all_io_cells_assigned(self):
        module = make_module("m", 17, 23, 3, [40, 40], 4)
        design = design_wrapper(module, 3)
        assert sum(chain.input_cells for chain in design.chains) == 20
        assert sum(chain.output_cells for chain in design.chains) == 26

    def test_zero_width_rejected(self):
        module = make_module("m", 1, 1, 0, [5], 2)
        with pytest.raises(ConfigurationError):
            design_wrapper(module, 0)


class TestModuleTestTime:
    def test_matches_design(self):
        module = make_module("m", 5, 5, 1, [60, 40, 40], 12)
        for width in (1, 2, 3, 5, 8):
            assert module_test_time(module, width) == design_wrapper(module, width).test_time_cycles

    def test_known_value_width_one(self):
        module = make_module("m", 4, 2, 0, [30], 10)
        # si = 34, so = 32 -> (1+34)*10 + 32
        assert module_test_time(module, 1) == scan_test_time(34, 32, 10)

    def test_non_increasing_with_width_typical(self):
        module = make_module("m", 8, 8, 0, [64] * 8, 20)
        times = [module_test_time(module, width) for width in range(1, 12)]
        assert all(earlier >= later for earlier, later in zip(times, times[1:]))

    def test_wide_limit_equals_longest_chain(self):
        module = make_module("m", 0, 0, 0, [100, 40, 30], 10)
        # With >= 3 wires each chain sits alone: si = so = 100.
        assert module_test_time(module, 3) == scan_test_time(100, 100, 10)


class TestMinWidthForDepth:
    def test_exact_boundary(self):
        module = make_module("m", 0, 0, 0, [100, 100], 10)
        # Width 1: si=200 -> (1+200)*10+200 = 2210 cycles;
        # width 2: si=100 -> (1+100)*10+100 = 1110 cycles.
        assert min_width_for_depth(module, 2210, 8) == 1
        assert min_width_for_depth(module, 2209, 8) == 2

    def test_returns_smallest_feasible(self):
        module = make_module("m", 10, 10, 0, [50] * 10, 100)
        depth = module_test_time(module, 4)
        width = min_width_for_depth(module, depth, 32)
        assert width <= 4
        assert module_test_time(module, width) <= depth
        if width > 1:
            assert module_test_time(module, width - 1) > depth

    def test_infeasible_raises(self):
        module = make_module("m", 0, 0, 0, [1000] * 4, 1000)
        with pytest.raises(InfeasibleDesignError):
            min_width_for_depth(module, 100, 64)

    def test_infeasible_names_module(self):
        module = make_module("hog", 0, 0, 0, [1000] * 4, 1000)
        with pytest.raises(InfeasibleDesignError) as excinfo:
            min_width_for_depth(module, 100, 64)
        assert excinfo.value.module_name == "hog"

    def test_invalid_depth_rejected(self):
        module = make_module("m", 1, 1, 0, [5], 2)
        with pytest.raises(ConfigurationError):
            min_width_for_depth(module, 0, 4)

    def test_invalid_max_width_rejected(self):
        module = make_module("m", 1, 1, 0, [5], 2)
        with pytest.raises(ConfigurationError):
            min_width_for_depth(module, 100, 0)

    def test_huge_depth_gives_width_one(self):
        module = make_module("m", 4, 4, 0, [30, 30], 10)
        assert min_width_for_depth(module, 10**9, 16) == 1
