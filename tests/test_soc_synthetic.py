"""Unit tests for repro.soc.synthetic."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.soc.synthetic import (
    LogicModuleProfile,
    MemoryModuleProfile,
    make_synthetic_soc,
    total_min_area,
)


class TestGeneration:
    def test_module_counts(self):
        soc = make_synthetic_soc("syn", num_logic=5, num_memory=3, seed=1)
        assert len(soc.logic_modules) == 5
        assert len(soc.memory_modules) == 3

    def test_determinism_same_seed(self):
        a = make_synthetic_soc("syn", 6, 4, seed=99)
        b = make_synthetic_soc("syn", 6, 4, seed=99)
        assert a == b

    def test_different_seed_differs(self):
        a = make_synthetic_soc("syn", 6, 4, seed=1)
        b = make_synthetic_soc("syn", 6, 4, seed=2)
        assert a != b

    def test_memory_modules_have_no_scan(self):
        soc = make_synthetic_soc("syn", 2, 5, seed=3)
        assert all(module.num_scan_chains == 0 for module in soc.memory_modules)

    def test_logic_modules_have_scan(self):
        soc = make_synthetic_soc("syn", 5, 0, seed=3)
        assert all(module.num_scan_chains >= 1 for module in soc.logic_modules)

    def test_functional_pins_recorded(self):
        soc = make_synthetic_soc("syn", 2, 2, seed=1, functional_pins=321)
        assert soc.functional_pins == 321

    def test_unique_module_names(self):
        soc = make_synthetic_soc("syn", 20, 20, seed=5)
        names = soc.module_names
        assert len(names) == len(set(names))

    def test_logic_profile_respected(self):
        profile = LogicModuleProfile(min_flipflops=100, max_flipflops=200,
                                     median_flipflops=150, sigma_flipflops=0.5)
        soc = make_synthetic_soc("syn", 10, 0, seed=7, logic_profile=profile)
        for module in soc.logic_modules:
            assert 100 <= module.total_scan_flipflops <= 200

    def test_memory_profile_respected(self):
        profile = MemoryModuleProfile(min_patterns=50, max_patterns=60,
                                      median_patterns=55)
        soc = make_synthetic_soc("syn", 0, 10, seed=7, memory_profile=profile)
        for module in soc.memory_modules:
            assert 50 <= module.patterns <= 60


class TestCalibration:
    def test_target_min_area_hit_within_tolerance(self):
        target = 5_000_000
        soc = make_synthetic_soc("syn", 8, 4, seed=11, target_min_area=target)
        area = total_min_area(soc)
        assert abs(area - target) / target < 0.05

    def test_total_min_area_positive(self):
        soc = make_synthetic_soc("syn", 3, 3, seed=1)
        assert total_min_area(soc) > 0

    def test_calibration_scales_patterns_not_structure(self):
        uncalibrated = make_synthetic_soc("syn", 4, 2, seed=13)
        calibrated = make_synthetic_soc("syn", 4, 2, seed=13,
                                        target_min_area=2 * total_min_area(uncalibrated))
        for before, after in zip(uncalibrated.modules, calibrated.modules):
            assert before.scan_lengths == after.scan_lengths
            assert before.inputs == after.inputs
            assert after.patterns >= before.patterns


class TestValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            make_synthetic_soc("syn", -1, 0, seed=1)

    def test_zero_modules_rejected(self):
        with pytest.raises(ConfigurationError):
            make_synthetic_soc("syn", 0, 0, seed=1)

    def test_nonpositive_target_area_rejected(self):
        with pytest.raises(ConfigurationError):
            make_synthetic_soc("syn", 1, 1, seed=1, target_min_area=0)
