"""Property-based tests of the solver backends (hypothesis).

Every registered backend must return *feasible* designs -- channel budget
and vector-memory limits respected at every evaluated site count -- for
arbitrary small SOCs, and the greedy default must match the exhaustive
oracle's optimum on tiny instances or trail it by a bounded, reported gap
(never beat it: the oracle covers the greedy's search space).
"""

from hypothesis import assume, given, settings, strategies as st

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.soc.builder import SocBuilder
from repro.solvers.problem import TestInfraProblem
from repro.solvers.registry import solver_names, solve
from repro.ate.spec import AteSpec


@st.composite
def small_socs(draw):
    """Random SOCs with 1..5 modest modules (exhaustive-friendly sizes)."""
    num_modules = draw(st.integers(min_value=1, max_value=5))
    builder = SocBuilder("prop_soc")
    for index in range(num_modules):
        chains = draw(
            st.lists(st.integers(min_value=1, max_value=200), min_size=0, max_size=5)
        )
        inputs = draw(st.integers(min_value=0, max_value=30))
        outputs = draw(st.integers(min_value=0, max_value=30))
        bidirs = draw(st.integers(min_value=0, max_value=6))
        patterns = draw(st.integers(min_value=1, max_value=150))
        assume(inputs + outputs + bidirs + len(chains) > 0)
        builder.add_module(f"m{index}", inputs, outputs, bidirs, chains, patterns)
    return builder.build()


ate_channels = st.sampled_from([16, 32, 64])
ate_depths = st.sampled_from([20_000, 60_000, 200_000])


def _assert_feasible(result, ate):
    assert result.step1.channels_per_site <= ate.channels
    for point in result.points:
        assert point.channels_per_site <= ate.channels
        assert all(group.fill <= ate.depth for group in point.architecture.groups)
        assigned = sorted(
            name for group in point.architecture.groups for name in group.module_names
        )
        assert assigned == sorted(point.architecture.soc.module_names)


class TestSolverProperties:
    @given(soc=small_socs(), channels=ate_channels, depth=ate_depths)
    @settings(max_examples=25, deadline=None)
    def test_every_registered_solver_returns_feasible_designs(self, soc, channels, depth):
        ate = AteSpec(channels=channels, depth=depth)
        problem = TestInfraProblem(soc=soc, ate=ate)
        for name in solver_names():
            try:
                solution = solve(name, problem)
            except (InfeasibleDesignError, ConfigurationError):
                continue  # infeasible instances are legitimate outcomes
            assert solution.solver == name
            _assert_feasible(solution.result, ate)

    @given(soc=small_socs(), channels=ate_channels, depth=ate_depths)
    @settings(max_examples=15, deadline=None)
    def test_goel05_matches_or_trails_the_exhaustive_optimum(self, soc, channels, depth):
        ate = AteSpec(channels=channels, depth=depth)
        problem = TestInfraProblem(soc=soc, ate=ate)
        try:
            greedy = solve("goel05", problem).result
            exact = solve("exhaustive", problem).result
        except (InfeasibleDesignError, ConfigurationError):
            return
        # The oracle enumerates every partition, including the greedy's
        # choice, so it can never do worse; the greedy's gap is bounded.
        assert exact.optimal_throughput >= greedy.optimal_throughput * (1 - 1e-12)
        gap = 1.0 - greedy.optimal_throughput / exact.optimal_throughput
        assert 0.0 <= gap + 1e-12 < 1.0

    @given(soc=small_socs(), channels=ate_channels, depth=ate_depths)
    @settings(max_examples=15, deadline=None)
    def test_restart_never_trails_goel05(self, soc, channels, depth):
        ate = AteSpec(channels=channels, depth=depth)
        problem = TestInfraProblem(soc=soc, ate=ate)
        try:
            greedy = solve("goel05", problem).result
            multi = solve("restart", problem).result
        except (InfeasibleDesignError, ConfigurationError):
            return
        assert multi.optimal_throughput >= greedy.optimal_throughput * (1 - 1e-12)
