"""Unit tests for the synthetic PNX8550 model."""

from repro.soc.pnx8550 import (
    PNX8550_NUM_LOGIC,
    PNX8550_NUM_MEMORY,
    PNX8550_TARGET_MIN_AREA,
    make_pnx8550,
)
from repro.soc.synthetic import total_min_area
from repro.soc.validation import Severity, validate_soc


class TestPnx8550Model:
    def test_module_counts_match_paper(self):
        soc = make_pnx8550()
        assert len(soc.logic_modules) == PNX8550_NUM_LOGIC == 62
        assert len(soc.memory_modules) == PNX8550_NUM_MEMORY == 212

    def test_total_module_count(self):
        assert len(make_pnx8550()) == 274

    def test_caching_returns_same_object(self):
        assert make_pnx8550() is make_pnx8550()

    def test_calibrated_area(self):
        area = total_min_area(make_pnx8550())
        assert abs(area - PNX8550_TARGET_MIN_AREA) / PNX8550_TARGET_MIN_AREA < 0.02

    def test_name(self):
        assert make_pnx8550().name == "pnx8550"

    def test_no_validation_errors(self):
        issues = validate_soc(make_pnx8550())
        assert not any(issue.severity is Severity.ERROR for issue in issues)

    def test_functional_pins_recorded(self):
        assert make_pnx8550().functional_pins == 1600

    def test_memory_modules_are_flagged(self):
        soc = make_pnx8550()
        assert all(module.is_memory for module in soc.memory_modules)
        assert not any(module.is_memory for module in soc.logic_modules)
