"""Unit tests for the wafer map and touchdown plan."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.sim.wafer import TouchdownPlan, WaferMap


class TestWaferMap:
    def test_die_count_reasonable_for_300mm(self):
        wafer = WaferMap(diameter_mm=300, die_width_mm=10, die_height_mm=10)
        # A 300 mm wafer holds on the order of (pi * 147^2) / 100 ~ 670 dies.
        assert 500 <= wafer.dies_per_wafer <= 700

    def test_smaller_dies_mean_more_dies(self):
        big = WaferMap(die_width_mm=20, die_height_mm=20).dies_per_wafer
        small = WaferMap(die_width_mm=10, die_height_mm=10).dies_per_wafer
        assert small > 3 * big

    def test_dies_within_usable_radius(self):
        wafer = WaferMap(diameter_mm=100, die_width_mm=10, die_height_mm=10)
        radius = wafer.usable_radius_mm
        for column, row in wafer.die_positions():
            x = (column + 0.5) * wafer.die_width_mm
            y = (row + 0.5) * wafer.die_height_mm
            assert (x ** 2 + y ** 2) ** 0.5 <= radius + max(
                wafer.die_width_mm, wafer.die_height_mm
            )

    def test_edge_exclusion_reduces_dies(self):
        tight = WaferMap(edge_exclusion_mm=0.0).dies_per_wafer
        loose = WaferMap(edge_exclusion_mm=20.0).dies_per_wafer
        assert loose < tight

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            WaferMap(diameter_mm=0)
        with pytest.raises(ConfigurationError):
            WaferMap(die_width_mm=-1)
        with pytest.raises(ConfigurationError):
            WaferMap(edge_exclusion_mm=200, diameter_mm=300)


class TestTouchdownPlan:
    @pytest.fixture
    def wafer(self):
        return WaferMap(diameter_mm=200, die_width_mm=10, die_height_mm=10)

    def test_every_die_probed_exactly_once(self, wafer):
        plan = TouchdownPlan(wafer=wafer, sites=4)
        probed = [die for block in plan.touchdowns() for die in block]
        assert sorted(probed) == sorted(wafer.die_positions())

    def test_no_touchdown_exceeds_sites(self, wafer):
        plan = TouchdownPlan(wafer=wafer, sites=4)
        assert all(len(block) <= 4 for block in plan.touchdowns())

    def test_more_sites_fewer_touchdowns(self, wafer):
        single = TouchdownPlan(wafer=wafer, sites=1).num_touchdowns
        multi = TouchdownPlan(wafer=wafer, sites=8).num_touchdowns
        assert multi < single
        assert single == wafer.dies_per_wafer

    def test_utilisation_bounds(self, wafer):
        plan = TouchdownPlan(wafer=wafer, sites=6)
        assert 0.0 < plan.site_utilisation <= 1.0

    def test_single_site_full_utilisation(self, wafer):
        assert TouchdownPlan(wafer=wafer, sites=1).site_utilisation == 1.0

    def test_wafer_test_time(self, wafer):
        plan = TouchdownPlan(wafer=wafer, sites=4)
        assert plan.wafer_test_time_s(0.5, 1.5) == pytest.approx(plan.num_touchdowns * 2.0)

    def test_invalid_sites(self, wafer):
        with pytest.raises(ConfigurationError):
            TouchdownPlan(wafer=wafer, sites=0)

    def test_negative_times_rejected(self, wafer):
        with pytest.raises(ConfigurationError):
            TouchdownPlan(wafer=wafer, sites=2).wafer_test_time_s(-1, 1)
