"""Unit tests for the Section-4 cost-model primitives (Eqs. 4.1-4.3)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.multisite.cost_model import (
    TestTiming,
    contact_pass_probability,
    manufacturing_pass_probability,
    site_contact_pass_probability,
)


class TestSiteContactPass:
    def test_perfect_yield(self):
        assert site_contact_pass_probability(1.0, 100) == 1.0

    def test_zero_terminals(self):
        assert site_contact_pass_probability(0.9, 0) == 1.0

    def test_formula(self):
        assert site_contact_pass_probability(0.999, 50) == pytest.approx(0.999 ** 50)

    def test_invalid_yield(self):
        with pytest.raises(ConfigurationError):
            site_contact_pass_probability(1.1, 10)

    def test_negative_terminals(self):
        with pytest.raises(ConfigurationError):
            site_contact_pass_probability(0.9, -1)


class TestContactPassProbability:
    def test_single_site_equals_site_probability(self):
        assert contact_pass_probability(0.999, 64, 1) == pytest.approx(0.999 ** 64)

    def test_eq42_formula(self):
        p_site = 0.998 ** 32
        expected = 1 - (1 - p_site) ** 4
        assert contact_pass_probability(0.998, 32, 4) == pytest.approx(expected)

    def test_increases_with_sites(self):
        values = [contact_pass_probability(0.99, 64, sites) for sites in (1, 2, 4, 8)]
        assert all(earlier < later for earlier, later in zip(values, values[1:]))

    def test_bounded_by_one(self):
        assert contact_pass_probability(0.5, 10, 100) <= 1.0

    def test_zero_yield_many_terminals(self):
        assert contact_pass_probability(0.0, 10, 5) == 0.0

    def test_invalid_sites(self):
        with pytest.raises(ConfigurationError):
            contact_pass_probability(0.99, 10, 0)


class TestManufacturingPassProbability:
    def test_eq43_formula(self):
        assert manufacturing_pass_probability(0.7, 4) == pytest.approx(1 - 0.3 ** 4)

    def test_perfect_yield(self):
        assert manufacturing_pass_probability(1.0, 3) == 1.0

    def test_zero_yield(self):
        assert manufacturing_pass_probability(0.0, 3) == 0.0

    def test_increases_with_sites(self):
        values = [manufacturing_pass_probability(0.7, sites) for sites in (1, 2, 4, 8)]
        assert all(earlier < later for earlier, later in zip(values, values[1:]))

    def test_invalid_yield(self):
        with pytest.raises(ConfigurationError):
            manufacturing_pass_probability(-0.1, 2)

    def test_invalid_sites(self):
        with pytest.raises(ConfigurationError):
            manufacturing_pass_probability(0.9, 0)


class TestTestTiming:
    def test_eq41_total(self):
        timing = TestTiming(0.5, 0.010, 1.5)
        assert timing.test_time_s == pytest.approx(1.51)
        assert timing.total_time_s == pytest.approx(2.01)

    def test_with_manufacturing_time(self):
        timing = TestTiming(0.5, 0.010, 1.5).with_manufacturing_time(3.0)
        assert timing.manufacturing_test_time_s == 3.0
        assert timing.index_time_s == 0.5

    def test_zero_times_allowed(self):
        assert TestTiming(0, 0, 0).total_time_s == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            TestTiming(-0.1, 0, 0)
        with pytest.raises(ConfigurationError):
            TestTiming(0, -0.1, 0)
        with pytest.raises(ConfigurationError):
            TestTiming(0, 0, -0.1)
