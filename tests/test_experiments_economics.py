"""Tests for the ATE upgrade economics experiment (on a small SOC)."""

import pytest

from repro.ate.pricing import AtePricing
from repro.ate.probe_station import reference_probe_station
from repro.ate.spec import AteSpec
from repro.core.exceptions import ConfigurationError
from repro.core.units import kilo_vectors
from repro.experiments.economics import run_economics, summarize_economics
from repro.soc.synthetic import make_synthetic_soc


@pytest.fixture(scope="module")
def result():
    soc = make_synthetic_soc("econ", num_logic=8, num_memory=4, seed=77,
                             target_min_area=2_500_000)
    base = AteSpec(channels=128, depth=kilo_vectors(128), frequency_hz=10e6)
    pricing = AtePricing(
        memory_upgrade_from=kilo_vectors(128),
        memory_upgrade_to=kilo_vectors(256),
    )
    return run_economics(
        soc=soc,
        base_ate=base,
        probe_station=reference_probe_station(),
        pricing=pricing,
    )


class TestEconomics:
    def test_baseline_has_zero_cost(self, result):
        assert result.baseline.cost_usd == 0.0

    def test_memory_upgrade_doubles_depth(self, result):
        assert result.memory_upgrade.ate.depth == 2 * result.baseline.ate.depth

    def test_channel_upgrade_adds_channels(self, result):
        assert result.channel_upgrade.ate.channels > result.baseline.ate.channels

    def test_channel_budget_close_to_memory_budget(self, result):
        assert result.channel_upgrade.cost_usd <= result.memory_upgrade.cost_usd + 1e-6

    def test_both_upgrades_improve_throughput(self, result):
        assert result.memory_gain >= -1e-9
        assert result.channel_gain >= -1e-9

    def test_gains_consistent_with_options(self, result):
        assert result.memory_gain == pytest.approx(
            result.memory_upgrade.throughput / result.baseline.throughput - 1.0
        )

    def test_table_rendering(self, result):
        text = result.to_table().render()
        assert "baseline" in text and "channels" in text

    def test_summary(self, result):
        assert "memory" in summarize_economics(result)

    def test_invalid_depth_factor(self):
        with pytest.raises(ConfigurationError):
            run_economics(depth_factor=1.0,
                          soc=make_synthetic_soc("x", 2, 1, seed=1))
