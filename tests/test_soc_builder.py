"""Unit tests for repro.soc.builder."""

import pytest

from repro.core.exceptions import InvalidSocError
from repro.soc.builder import SocBuilder
from repro.soc.module import make_module


class TestBuilder:
    def test_build_simple(self):
        soc = (
            SocBuilder("s")
            .add_module("a", 1, 1, 0, [10], 5)
            .add_module("b", 2, 2, 0, [], 7)
            .build()
        )
        assert soc.module_names == ("a", "b")

    def test_fluent_returns_self(self):
        builder = SocBuilder("s")
        assert builder.add_module("a", 1, 1, 0, [10], 5) is builder

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidSocError):
            SocBuilder("")

    def test_build_without_modules_rejected(self):
        with pytest.raises(InvalidSocError):
            SocBuilder("s").build()

    def test_duplicate_module_rejected(self):
        builder = SocBuilder("s").add_module("a", 1, 1, 0, [10], 5)
        with pytest.raises(InvalidSocError):
            builder.add_module("a", 1, 1, 0, [10], 5)

    def test_duplicate_via_add_rejected(self):
        builder = SocBuilder("s").add_module("a", 1, 1, 0, [10], 5)
        with pytest.raises(InvalidSocError):
            builder.add(make_module("a", 1, 1, 0, [5], 2))

    def test_add_prebuilt_module(self):
        module = make_module("core", 3, 3, 0, [7, 7], 11)
        soc = SocBuilder("s").add(module).build()
        assert soc.module("core") is module

    def test_functional_pins_via_constructor(self):
        soc = SocBuilder("s", functional_pins=123).add_module("a", 1, 1, 0, [5], 2).build()
        assert soc.functional_pins == 123

    def test_functional_pins_via_setter(self):
        soc = (
            SocBuilder("s").with_functional_pins(55).add_module("a", 1, 1, 0, [5], 2).build()
        )
        assert soc.functional_pins == 55

    def test_negative_functional_pins_rejected(self):
        with pytest.raises(InvalidSocError):
            SocBuilder("s").with_functional_pins(-2)

    def test_num_modules_counter(self):
        builder = SocBuilder("s")
        assert builder.num_modules == 0
        builder.add_module("a", 1, 1, 0, [5], 2)
        assert builder.num_modules == 1

    def test_name_property(self):
        assert SocBuilder("abc").name == "abc"

    def test_invalid_module_parameters_propagate(self):
        with pytest.raises(InvalidSocError):
            SocBuilder("s").add_module("a", -1, 1, 0, [5], 2)
