"""Unit tests for JSON/CSV export of results."""

import csv
import json

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.units import kilo_vectors
from repro.ate.spec import AteSpec
from repro.optimize.two_step import optimize_multisite
from repro.reporting.export import (
    architecture_to_records,
    result_to_records,
    series_to_record,
    table_to_records,
    write_csv,
    write_json,
)
from repro.reporting.series import Series
from repro.reporting.tables import Table
from repro.tam.assignment import design_architecture


@pytest.fixture(scope="module")
def d695_result():
    from repro.itc02.registry import load_benchmark

    soc = load_benchmark("d695")
    ate = AteSpec(channels=128, depth=kilo_vectors(96), frequency_hz=5e6)
    return optimize_multisite(soc, ate)


class TestRecordConversion:
    def test_table_to_records(self):
        table = Table(title="t", columns=["a", "b"], rows=[["1", "2"], ["3", "4"]])
        records = table_to_records(table)
        assert records == [{"a": "1", "b": "2"}, {"a": "3", "b": "4"}]

    def test_series_to_record(self):
        series = Series("s", "x", "y", ((1.0, 2.0), (3.0, 4.0)))
        record = series_to_record(series)
        assert record["name"] == "s"
        assert record["points"] == [[1.0, 2.0], [3.0, 4.0]]

    def test_architecture_records(self, medium_soc):
        architecture = design_architecture(medium_soc, channels=64, depth=250_000)
        records = architecture_to_records(architecture)
        assert len(records) == architecture.num_groups
        assert sum(len(record["modules"]) for record in records) == len(medium_soc)
        assert all(record["fill_cycles"] <= 250_000 for record in records)

    def test_result_records(self, d695_result):
        record = result_to_records(d695_result)
        assert record["soc"] == "d695"
        assert record["optimal"]["sites"] == d695_result.optimal_sites
        assert len(record["points"]) == len(d695_result.points)
        # Must be JSON-serialisable as-is.
        json.dumps(record)


class TestWriters:
    def test_write_json_roundtrip(self, tmp_path, d695_result):
        path = write_json(result_to_records(d695_result), tmp_path / "result.json")
        loaded = json.loads(path.read_text())
        assert loaded["optimal"]["sites"] == d695_result.optimal_sites

    def test_write_csv(self, tmp_path, medium_soc):
        architecture = design_architecture(medium_soc, channels=64, depth=250_000)
        path = write_csv(architecture_to_records(architecture), tmp_path / "arch.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == architecture.num_groups
        assert "modules" in rows[0]

    def test_write_csv_flattens_lists(self, tmp_path):
        path = write_csv([{"name": "g0", "modules": ["a", "b"]}], tmp_path / "x.csv")
        content = path.read_text()
        assert "a;b" in content

    def test_write_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv([], tmp_path / "empty.csv")

    def test_write_csv_mismatched_keys_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv([{"a": 1}, {"b": 2}], tmp_path / "bad.csv")
