"""Tests for the execution planner: chunking invariants and bulk flushing.

The planner's contract is that it *only groups*: plan order is a
permutation of grid order, every chunk shares one structure key, and
chunked execution -- any chunk size, any worker count -- produces results
and digests bit-identical to unchunked execution.  The flushing side of
the same PR is covered here too: ``flush_every`` batches store writes
without losing records on exceptions or abandonment.
"""

import pytest

from repro.api import Engine, Scenario, SweepGrid, TestCell
from repro.api.plan import (
    AUTO_CHUNK,
    AUTO_CHUNKS_PER_WORKER,
    MAX_AUTO_CHUNK_SIZE,
    SweepPlan,
    auto_chunk_size,
    normalize_chunk_size,
    structure_key,
)
from repro.ate.spec import AteSpec
from repro.bench.runner import sweep_digest
from repro.core.exceptions import ConfigurationError
from repro.core.units import kilo_vectors
from repro.soc.builder import SocBuilder
from repro.store.result_store import ResultStore


@pytest.fixture(scope="module")
def tiny_soc():
    return (
        SocBuilder("tiny", functional_pins=64)
        .add_module("alpha", inputs=8, outputs=8, bidirs=0,
                    scan_lengths=[100, 100, 90], patterns=50)
        .add_module("beta", inputs=16, outputs=4, bidirs=2,
                    scan_lengths=[200, 150], patterns=120)
        .build()
    )


@pytest.fixture(scope="module")
def other_soc():
    return (
        SocBuilder("other", functional_pins=64)
        .add_module("delta", inputs=4, outputs=4, bidirs=0,
                    scan_lengths=[80, 60], patterns=40)
        .build()
    )


@pytest.fixture(scope="module")
def tiny_cell():
    return TestCell(
        ate=AteSpec(channels=64, depth=kilo_vectors(32), frequency_hz=10e6, name="ate-small")
    )


@pytest.fixture
def grid(tiny_soc, other_soc, tiny_cell) -> SweepGrid:
    return SweepGrid([tiny_soc, other_soc], tiny_cell, channels=[32, 40, 48, 64])


class TestChunkSizeValidation:
    def test_auto_passes_through(self):
        assert normalize_chunk_size("auto") == AUTO_CHUNK

    @pytest.mark.parametrize("size", [1, 7, 64])
    def test_positive_ints_pass_through(self, size):
        assert normalize_chunk_size(size) == size

    @pytest.mark.parametrize("bad", [0, -3, 2.5, "big", None, True, False])
    def test_invalid_sizes_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="chunk size"):
            normalize_chunk_size(bad)

    def test_engine_rejects_bad_chunk_size(self, grid):
        with pytest.raises(ConfigurationError, match="chunk size"):
            list(Engine().run_iter(grid, workers=2, chunk_size=0))

    def test_engine_rejects_bad_flush_every(self, grid):
        with pytest.raises(ConfigurationError, match="flush_every"):
            list(Engine().run_iter(grid, flush_every=0))


class TestAutoChunkSize:
    def test_targets_chunks_per_worker(self):
        assert auto_chunk_size(1000, 4) == 1000 // (4 * AUTO_CHUNKS_PER_WORKER) + (
            1000 % (4 * AUTO_CHUNKS_PER_WORKER) > 0
        )

    def test_small_grids_degrade_to_one(self):
        assert auto_chunk_size(3, 4) == 1
        assert auto_chunk_size(0, 4) == 1

    def test_capped_at_max(self):
        assert auto_chunk_size(10**6, 1) == MAX_AUTO_CHUNK_SIZE


class TestPlanInvariants:
    def test_plan_order_is_a_permutation_of_grid_order(self, grid):
        plan = SweepPlan.build(list(grid), chunk_size=3, workers=2)
        assert sorted(plan.scenario_order()) == list(range(len(grid)))

    def test_every_scenario_in_exactly_one_chunk(self, grid):
        plan = SweepPlan.build(list(grid), chunk_size=2)
        order = plan.scenario_order()
        assert len(order) == len(set(order)) == len(grid) == plan.total

    def test_chunks_share_one_structure_key(self, grid):
        scenarios = list(grid)
        plan = SweepPlan.build(scenarios, chunk_size=100)
        for chunk in plan:
            keys = {structure_key(s.canonical_key()) for s in chunk.scenarios}
            assert len(keys) == 1
        # Two SOCs in the grid -> at least two structure groups.
        assert plan.groups == 2

    def test_no_chunk_exceeds_chunk_size(self, grid):
        plan = SweepPlan.build(list(grid), chunk_size=3)
        assert plan.chunk_size == 3
        assert all(len(chunk) <= 3 for chunk in plan)

    def test_structure_key_blanks_only_the_test_cell(self, tiny_soc, tiny_cell):
        base = Scenario(soc=tiny_soc, test_cell=tiny_cell)
        assert structure_key(base.canonical_key()) == structure_key(
            base.with_channels(32).canonical_key()
        )
        assert structure_key(base.canonical_key()) != structure_key(
            Scenario(soc=tiny_soc, test_cell=tiny_cell, solver="restart").canonical_key()
        )

    def test_keys_length_mismatch_rejected(self, grid):
        scenarios = list(grid)
        with pytest.raises(ConfigurationError, match="mismatch"):
            SweepPlan.build(scenarios, keys=[scenarios[0].canonical_key()])

    def test_describe_mentions_shape(self, grid):
        plan = SweepPlan.build(list(grid), chunk_size=2)
        text = plan.describe()
        assert str(plan.total) in text and str(len(plan)) in text


class TestChunkedBitIdentity:
    """Chunked vs unchunked runs: identical results and digests."""

    @pytest.mark.parametrize("chunk_size", [1, "auto", 1000])
    def test_run_batch_identical_across_chunk_sizes(self, grid, chunk_size):
        baseline = Engine().run_batch(list(grid), workers=1)
        chunked = Engine().run_batch(list(grid), workers=2, chunk_size=chunk_size)
        assert [r.result for r in chunked] == [r.result for r in baseline]
        assert sweep_digest(chunked) == sweep_digest(baseline)

    def test_run_iter_streams_every_scenario_once(self, grid):
        results = list(Engine().run_iter(grid, workers=2, chunk_size=2))
        assert sorted(r.scenario.key for r in results) == sorted(s.key for s in grid)


class TestChunkBoundaryResume:
    """A campaign killed mid-chunk resumes recomputing only what's missing."""

    def test_interrupt_mid_stream_then_resume(self, grid, tmp_path):
        store = ResultStore(tmp_path / "store")
        engine = Engine(store=store)
        stream = engine.run_iter(grid, workers=2, chunk_size=2)
        seen = [next(stream), next(stream), next(stream)]
        stream.close()  # kill the campaign mid-flight
        on_disk = len(store.scan())
        assert on_disk >= len(seen)  # everything yielded was persisted

        resumed = Engine(store=store)
        results = list(resumed.run_iter(grid, workers=2, chunk_size=2))
        info = resumed.cache_info()
        assert len(results) == len(grid)
        assert info.store_hits == on_disk  # finished scenarios not recomputed
        assert info.misses == len(grid) - on_disk

    def test_resume_digest_matches_uninterrupted(self, grid, tmp_path):
        store = ResultStore(tmp_path / "store")
        stream = Engine(store=store).run_iter(grid, workers=2, chunk_size=3)
        next(stream)
        stream.close()
        resumed = list(Engine(store=store).run_iter(grid, workers=2, chunk_size=3))
        baseline = list(Engine().run_iter(grid))
        assert sweep_digest(resumed) == sweep_digest(baseline)


class TestFlushing:
    def test_flush_every_batches_store_writes(self, grid, tmp_path):
        store = ResultStore(tmp_path / "store")
        engine = Engine(store=store)
        on_disk = []
        for _ in engine.run_iter(grid, flush_every=3):
            on_disk.append(len(store.scan()))
        # 8 scenarios at flush_every=3: writes land at records 3, 6 and exit.
        assert on_disk == [0, 0, 3, 3, 3, 6, 6, 6]
        assert len(store.scan()) == len(grid)

    def test_flush_on_exception_serial(self, tiny_soc, tiny_cell, tmp_path):
        good = [
            Scenario(soc=tiny_soc, test_cell=tiny_cell).with_channels(width)
            for width in (32, 48)
        ]
        bad = Scenario(soc=tiny_soc, test_cell=tiny_cell, solver="no-such-solver")
        store = ResultStore(tmp_path / "store")
        engine = Engine(store=store)
        with pytest.raises(ConfigurationError, match="unknown solver"):
            list(engine.run_iter(good + [bad], flush_every=100))
        # The buffered good records survived the exception.
        assert len(store.scan()) == len(good)

    def test_failing_chunk_persists_its_partial_results(
        self, tiny_soc, tiny_cell, tmp_path
    ):
        good = [
            Scenario(soc=tiny_soc, test_cell=tiny_cell).with_channels(width)
            for width in (32, 40, 48, 64)
        ]
        # channels=1 fails inside the worker task but shares the good
        # scenarios' structure key, so all five land in ONE chunk: the
        # chunk's results computed before the failure must come back and
        # be persisted before the error re-raises.
        bad = Scenario(soc=tiny_soc, test_cell=tiny_cell).with_channels(1)
        store = ResultStore(tmp_path / "store")
        engine = Engine(store=store)
        with pytest.raises(ConfigurationError, match="at least 2 channels"):
            list(engine.run_iter(good + [bad], workers=2, chunk_size=100,
                                 flush_every=100))
        assert len(store.scan()) == len(good)

    def test_abandoned_stream_flushes_buffer(self, grid, tmp_path):
        store = ResultStore(tmp_path / "store")
        engine = Engine(store=store)
        stream = engine.run_iter(grid, flush_every=100)
        next(stream)
        next(stream)
        stream.close()
        assert len(store.scan()) == 2
