"""Unit tests for repro.soc.validation."""

import pytest

from repro.soc.builder import SocBuilder
from repro.soc.module import make_module
from repro.soc.soc import Soc
from repro.soc.validation import (
    Severity,
    ValidationIssue,
    format_issues,
    has_errors,
    validate_soc,
)


class TestValidateSoc:
    def test_healthy_soc_has_no_warnings_or_errors(self, tiny_soc):
        issues = validate_soc(tiny_soc)
        assert not any(issue.severity in (Severity.WARNING, Severity.ERROR) for issue in issues)

    def test_single_pattern_module_flagged_info(self):
        soc = SocBuilder("s").add_module("a", 1, 1, 0, [5], 1).build()
        issues = validate_soc(soc)
        assert any(issue.severity is Severity.INFO for issue in issues)

    def test_huge_scan_chain_warned(self):
        soc = SocBuilder("s").add_module("a", 1, 1, 0, [200_000], 5).build()
        issues = validate_soc(soc)
        assert any(
            issue.severity is Severity.WARNING and "long" in issue.message for issue in issues
        )

    def test_huge_pattern_count_warned(self):
        soc = SocBuilder("s").add_module("a", 1, 1, 0, [5], 20_000_000).build()
        assert any(issue.severity is Severity.WARNING for issue in validate_soc(soc))

    def test_many_scan_chains_warned(self):
        soc = SocBuilder("s").add_module("a", 1, 1, 0, [2] * 2000, 5).build()
        assert any(
            "scan chains" in issue.message and issue.severity is Severity.WARNING
            for issue in validate_soc(soc)
        )

    def test_scanless_module_with_many_terminals_warned(self):
        soc = SocBuilder("s").add_module("pads", 900, 300, 0, [], 10).build()
        assert any("no scan chains" in issue.message for issue in validate_soc(soc))

    def test_issue_carries_module_name(self):
        soc = SocBuilder("s").add_module("weird", 1, 1, 0, [5], 1).build()
        issues = [issue for issue in validate_soc(soc) if issue.module_name == "weird"]
        assert issues


class TestHelpers:
    def test_has_errors_false_for_warnings(self):
        issues = [ValidationIssue(Severity.WARNING, "w")]
        assert not has_errors(issues)

    def test_has_errors_true_for_error(self):
        issues = [ValidationIssue(Severity.ERROR, "e")]
        assert has_errors(issues)

    def test_format_issues_empty(self):
        assert format_issues([]) == ""

    def test_format_issues_includes_severity_and_module(self):
        text = format_issues([ValidationIssue(Severity.WARNING, "odd", module_name="core1")])
        assert "WARNING" in text and "core1" in text and "odd" in text

    def test_str_of_issue_without_module(self):
        assert "INFO" in str(ValidationIssue(Severity.INFO, "note"))
