"""Unit tests for Step-2 channel redistribution."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.tam.assignment import design_architecture
from repro.tam.redistribution import widen_bottleneck, widen_to_channel_budget


@pytest.fixture
def architecture(medium_soc):
    return design_architecture(medium_soc, channels=64, depth=250_000)


class TestWidenBottleneck:
    def test_zero_wires_is_identity(self, architecture):
        assert widen_bottleneck(architecture, 0) == architecture

    def test_adds_exact_width(self, architecture):
        widened = widen_bottleneck(architecture, 5)
        assert widened.total_width == architecture.total_width + 5

    def test_never_increases_test_time(self, architecture):
        widened = widen_bottleneck(architecture, 5)
        assert widened.test_time_cycles <= architecture.test_time_cycles

    def test_monotone_improvement_with_more_wires(self, architecture):
        times = [
            widen_bottleneck(architecture, wires).test_time_cycles
            for wires in (0, 2, 4, 8, 16)
        ]
        assert all(earlier >= later for earlier, later in zip(times, times[1:]))

    def test_first_wire_goes_to_bottleneck(self, architecture):
        fills = architecture.fills
        bottleneck = max(range(len(fills)), key=lambda position: fills[position])
        widened = widen_bottleneck(architecture, 1)
        assert widened.groups[bottleneck].width == architecture.groups[bottleneck].width + 1

    def test_negative_wires_rejected(self, architecture):
        with pytest.raises(ConfigurationError):
            widen_bottleneck(architecture, -1)

    def test_module_assignment_unchanged(self, architecture):
        widened = widen_bottleneck(architecture, 7)
        for before, after in zip(architecture.groups, widened.groups):
            assert before.module_names == after.module_names


class TestWidenToChannelBudget:
    def test_budget_below_current_returns_same(self, architecture):
        assert widen_to_channel_budget(architecture, architecture.ate_channels - 2) == architecture

    def test_budget_equal_returns_same(self, architecture):
        assert widen_to_channel_budget(architecture, architecture.ate_channels) == architecture

    def test_budget_used_up_to_pairs(self, architecture):
        budget = architecture.ate_channels + 7  # only 3 whole wires fit
        widened = widen_to_channel_budget(architecture, budget)
        assert widened.total_width == architecture.total_width + 3
        assert widened.ate_channels <= budget

    def test_invalid_budget_rejected(self, architecture):
        with pytest.raises(ConfigurationError):
            widen_to_channel_budget(architecture, 0)
