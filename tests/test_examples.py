"""Smoke tests that execute the shipped examples end-to-end.

The heavier examples (the PNX8550 study and the full Table-1 comparison)
are exercised by the benchmark harness instead; here we run the two fast
ones in-process and check they produce the expected sections of output.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys, argv=None) -> str:
    """Execute an example script as ``__main__`` and return its stdout."""
    script = EXAMPLES_DIR / name
    assert script.exists(), f"example {name} is missing"
    old_argv = sys.argv
    sys.argv = [str(script)] + list(argv or [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_examples_directory_contents(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "pnx8550_throughput_study.py",
            "itc02_multisite_comparison.py",
            "custom_soc_flow.py",
        } <= names

    def test_quickstart_runs(self, capsys):
        out = _run_example("quickstart.py", capsys)
        assert "two-step result for d695" in out
        assert "E-RPCT(d695)" in out
        assert "<== optimal" in out

    def test_custom_soc_flow_runs(self, capsys):
        out = _run_example("custom_soc_flow.py", capsys)
        assert "round-tripped the SOC description" in out
        assert "analytic SOC test time" in out
        assert "Monte-Carlo throughput" in out
        assert "wafer test time" in out

    @pytest.mark.parametrize(
        "name",
        ["pnx8550_throughput_study.py", "itc02_multisite_comparison.py"],
    )
    def test_heavy_examples_are_importable(self, name):
        # Compile-only check: the heavy examples are executed by the
        # benchmark harness; here we just guarantee they stay syntactically
        # valid and importable.
        source = (EXAMPLES_DIR / name).read_text(encoding="utf-8")
        compile(source, name, "exec")
