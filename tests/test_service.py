"""Campaign service tests: protocol, lease lifecycle, HTTP loop, E2E.

Four layers, from fastest to slowest:

* ``TestGridSpecWire`` / ``TestScenarioWire`` -- pure protocol encode/
  decode and validation, no server at all;
* ``TestLeaseLifecycle`` / ``TestIngest`` -- the transport-free
  :class:`CampaignServer` core driven directly with an injected clock,
  covering expiry, re-lease, and the dedupe/verification gates;
* ``TestServiceHTTP`` -- a real in-thread HTTP server and
  :class:`ServiceClient` + :func:`run_worker`, proving the distributed
  digest equals the single-process sweep digest with zero duplicate work;
* ``TestDistributedE2E`` -- the full subprocess flow the README
  documents: ``repro serve``, a campaign submitted via ``repro sweep
  --server``, a worker killed mid-campaign, and a second worker that
  picks up the expired shard, with digest parity at the end.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.api import Engine
from repro.bench.runner import sweep_digest
from repro.core.exceptions import ConfigurationError, ReproError, ServiceError
from repro.core.units import mega_vectors
from repro.service import (
    PROTOCOL_VERSION,
    CampaignServer,
    GridSpec,
    ServiceClient,
    run_worker,
    scenario_from_wire,
    scenario_to_wire,
    start_server,
)
from repro.store import ResultStore, make_record

#: The small synthetic operating point every service test sweeps: two tiny
#: catalog SOCs at two channel widths, one depth -- four scenarios that
#: solve in milliseconds but still exercise every code path.
SMALL_SPEC = GridSpec(
    socs=("synthetic:7:4", "synthetic:8:4"),
    channels=(48, 64),
    depths=(mega_vectors(1),),
    shards=2,
)


# ----------------------------------------------------------------------
# Protocol layer
# ----------------------------------------------------------------------
class TestGridSpecWire:
    def test_wire_round_trip(self):
        assert GridSpec.from_wire(SMALL_SPEC.to_wire()) == SMALL_SPEC

    def test_wire_defaults(self):
        spec = GridSpec.from_wire({"socs": ["d695"]})
        assert spec == GridSpec(socs=("d695",))
        assert spec.shards == 1

    def test_unknown_field_rejected(self):
        payload = SMALL_SPEC.to_wire()
        payload["depht"] = [1]
        with pytest.raises(ConfigurationError, match="unknown fields: depht"):
            GridSpec.from_wire(payload)

    def test_protocol_mismatch_rejected(self):
        payload = SMALL_SPEC.to_wire()
        payload["protocol"] = PROTOCOL_VERSION + 1
        with pytest.raises(ConfigurationError, match="protocol"):
            GridSpec.from_wire(payload)

    @pytest.mark.parametrize(
        "payload",
        [
            "not an object",
            {"socs": []},
            {"socs": ["d695"], "channels": [0]},
            {"socs": ["d695"], "depths": [True]},
            {"socs": ["d695"], "broadcast": "sometimes"},
            {"socs": ["d695"], "shards": 0},
            {"socs": ["d695"], "frequency_mhz": -1},
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ConfigurationError):
            GridSpec.from_wire(payload)

    def test_shards_partition_the_grid(self):
        """Shard slices are disjoint and together cover the whole grid."""
        full = {scenario.digest for scenario in SMALL_SPEC.build_grid()}
        shards = [
            [scenario.digest for scenario in SMALL_SPEC.shard_grid(index)]
            for index in range(SMALL_SPEC.shards)
        ]
        flat = [digest for shard in shards for digest in shard]
        assert len(flat) == len(set(flat)) == len(full)
        assert set(flat) == full

    def test_both_ends_build_identical_grids(self):
        """The wire round trip preserves every scenario digest in order."""
        rebuilt = GridSpec.from_wire(json.loads(json.dumps(SMALL_SPEC.to_wire())))
        assert [scenario.digest for scenario in rebuilt.build_grid()] == [
            scenario.digest for scenario in SMALL_SPEC.build_grid()
        ]


class TestScenarioWire:
    def test_round_trip_digest(self):
        wire = scenario_to_wire(
            "synthetic:7:4", channels=48, depth=mega_vectors(1), broadcast=True
        )
        scenario = scenario_from_wire(wire)
        assert scenario.soc == "synthetic:7:4"
        assert scenario.test_cell.ate.channels == 48
        assert scenario.config.broadcast is True
        # Decoding the same wire payload twice is digest-stable.
        assert scenario_from_wire(wire).digest == scenario.digest

    def test_matches_grid_scenarios(self):
        """A wire scenario lands on the same digest as the grid's version."""
        grid_scenario = next(iter(SMALL_SPEC.build_grid()))
        wire = scenario_to_wire(
            grid_scenario.soc,
            channels=grid_scenario.test_cell.ate.channels,
            depth=grid_scenario.test_cell.ate.depth,
        )
        assert scenario_from_wire(wire).digest == grid_scenario.digest

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            {},
            {"soc": ""},
            {"soc": "d695", "channels": -4},
            {"soc": "d695", "depth": True},
            {"soc": "d695", "max_sites": 0},
            {"soc": "d695", "solver": 7},
        ],
    )
    def test_malformed_scenarios_rejected(self, payload):
        with pytest.raises(ConfigurationError):
            scenario_from_wire(payload)


# ----------------------------------------------------------------------
# Transport-free server core
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def clocked_server(tmp_path):
    clock = FakeClock()
    server = CampaignServer(tmp_path / "store", lease_ttl=10.0, clock=clock)
    return server, clock


class TestLeaseLifecycle:
    def _submit(self, server):
        return server.submit_campaign({"grid": SMALL_SPEC.to_wire()})["campaign"]

    def test_grant_wait_idle(self, clocked_server):
        server, _ = clocked_server
        campaign = self._submit(server)
        first = server.lease({"worker": "w1"})
        second = server.lease({"worker": "w1"})
        assert (first["status"], second["status"]) == ("granted", "granted")
        assert {first["shard"], second["shard"]} == {0, 1}
        assert first["grid"] == SMALL_SPEC.to_wire()
        # Everything is leased out: a second worker waits, not idles.
        assert server.lease({"worker": "w2"})["status"] == "wait"
        for lease in (first, second):
            assert server.complete(lease["lease"])["status"] == "done"
        assert server.lease({"worker": "w2"})["status"] == "idle"
        assert server.progress(campaign)["shard_states"] == {
            "pending": 0, "leased": 0, "done": 2,
        }

    def test_heartbeat_extends_expiry_repends(self, clocked_server):
        server, clock = clocked_server
        self._submit(server)
        lease = server.lease({"worker": "doomed"})
        assert lease["status"] == "granted"
        clock.now = 5.0
        assert server.heartbeat(lease["lease"])["status"] == "ok"
        # The heartbeat pushed the deadline to t=15: still held at t=14.9.
        clock.now = 14.9
        other = server.lease({"worker": "w2"})
        assert other["status"] == "granted"
        assert other["shard"] != lease["shard"]
        server.complete(other["lease"])
        assert server.lease({"worker": "w2"})["status"] == "wait"
        # Past the deadline the shard is re-offered to the live worker...
        clock.now = 15.1
        release = server.lease({"worker": "w2"})
        assert release["status"] == "granted"
        assert release["shard"] == lease["shard"]
        # ...and the dead worker's lease handle is gone, not resurrectable.
        assert server.heartbeat(lease["lease"])["status"] == "gone"
        assert server.complete(lease["lease"])["status"] == "gone"
        assert server.complete(release["lease"])["status"] == "done"
        assert server.lease({"worker": "w2"})["status"] == "idle"
        assert server.counters["leases_expired"] == 1
        assert server.counters["leases_granted"] == 3
        assert server.counters["leases_completed"] == 2

    def test_unknown_campaign_and_lease(self, clocked_server):
        server, _ = clocked_server
        with pytest.raises(ReproError, match="no campaign"):
            server.progress("c99")
        with pytest.raises(ReproError, match="no campaign"):
            server.lease({"worker": "w", "campaign": "c99"})
        assert server.heartbeat("l99")["status"] == "gone"
        assert server.complete(lease_id="l99")["status"] == "gone"

    def test_campaign_scoped_lease(self, clocked_server):
        server, _ = clocked_server
        first = self._submit(server)
        second = self._submit(server)
        scoped = server.lease({"worker": "w", "campaign": second})
        assert scoped["status"] == "granted"
        assert scoped["campaign"] == second == "c2"
        assert first == "c1"


class TestIngest:
    def _record(self, server, index=0):
        scenario = list(SMALL_SPEC.build_grid())[index]
        outcome = Engine().run(scenario)
        return make_record(scenario, outcome.result)

    def test_dedupe(self, clocked_server):
        server, _ = clocked_server
        record = self._record(server)
        assert server.ingest({"record": record}) == {"stored": 1, "duplicates": 0}
        assert server.ingest({"record": record}) == {"stored": 0, "duplicates": 1}
        assert server.counters["records_stored"] == 1
        assert server.counters["records_duplicate"] == 1

    def test_corrupt_record_rejected_atomically(self, clocked_server):
        """One bad record rejects the whole batch; nothing is written."""
        server, _ = clocked_server
        good = self._record(server)
        bad = dict(good, result="not a result payload")
        with pytest.raises(ReproError):
            server.ingest({"records": [good, bad]})
        assert server.store.info().size == 0
        assert server.counters["records_stored"] == 0

    def test_packed_ingest_writes_analysis_sidecars(self, tmp_path):
        """Batch ingest over a packed store produces sidecars in the same
        flush, and the sidecar scan matches full decode bit for bit."""
        from repro.analysis.records import records_from_store
        from repro.store import columns
        from repro.store.packed import PackedResultStore

        packed = PackedResultStore(tmp_path / "packed")
        server = CampaignServer(packed, lease_ttl=10.0)
        grid = list(SMALL_SPEC.build_grid())[:3]
        engine = Engine()
        records = [make_record(s, engine.run(s).result) for s in grid]
        assert server.ingest({"records": records}) == {"stored": 3, "duplicates": 0}
        sidecars = list(packed.root.rglob(f"*{columns.SIDECAR_SUFFIX}"))
        assert sidecars
        fast = records_from_store(packed)
        assert len(fast) == 3
        assert fast == records_from_store(packed, columns=False)

    def test_query_missing_counts_presence(self, clocked_server):
        server, _ = clocked_server
        record = self._record(server)
        server.ingest({"record": record})
        keys = [record["key"], "0" * 64]
        answer = server.query_missing({"keys": keys})
        assert answer == {"missing": ["0" * 64], "present": 1}
        assert server.counters["presence_hits"] == 1


# ----------------------------------------------------------------------
# HTTP loop: in-thread server + client + workers
# ----------------------------------------------------------------------
@pytest.fixture()
def http_service(tmp_path):
    server = start_server(tmp_path / "store", port=0, lease_ttl=30.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}", timeout=30.0)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestServiceHTTP:
    def test_health(self, http_service):
        health = http_service.health()
        assert health["status"] == "ok"
        assert health["protocol"] == PROTOCOL_VERSION
        assert health["store"]["records"] == 0
        assert health["campaigns"] == 0

    def test_unknown_campaign_is_404(self, http_service):
        with pytest.raises(ServiceError, match="no campaign") as excinfo:
            http_service.progress("c99")
        assert excinfo.value.status == 404

    def test_malformed_submit_is_400(self, http_service):
        with pytest.raises(ServiceError) as excinfo:
            http_service._call("/campaigns", {"grid": {"socs": []}})
        assert excinfo.value.status == 400

    def test_connection_refused_is_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()

    def test_two_workers_match_local_sweep_digest(self, http_service):
        """The distributed-equivalence check, in-process.

        Two workers drain a two-shard campaign; the campaign digest must
        equal a single-process sweep over the same grid, and no scenario
        may be computed or stored twice.
        """
        submitted = http_service.submit_campaign(SMALL_SPEC)
        campaign = submitted["campaign"]
        assert submitted["total"] == 4
        stats = [
            run_worker(http_service.base_url, worker=f"w{index}", max_shards=1)
            for index in (1, 2)
        ]
        assert [s.shards for s in stats] == [1, 1]
        assert sum(s.computed for s in stats) == 4
        assert sum(s.stored for s in stats) == 4
        assert sum(s.duplicates for s in stats) == 0

        answer = http_service.digest(campaign)
        assert answer["complete"] is True
        assert answer["solved"] == 4
        local = sweep_digest(Engine().run_batch(list(SMALL_SPEC.build_grid())))
        assert answer["digest"] == local

        health = http_service.health()
        assert health["counters"]["records_duplicate"] == 0
        assert health["counters"]["leases_completed"] == 2

        records = list(http_service.results(campaign))
        assert len(records) == 4
        assert [r["scenario_key"] for r in records] == [
            s.key for s in SMALL_SPEC.build_grid()
        ]

    def test_resubmitted_campaign_is_all_store_hits(self, http_service):
        """A second identical campaign computes nothing: presence skips all."""
        http_service.submit_campaign(SMALL_SPEC)
        run_worker(http_service.base_url, worker="w1", until_idle=True, poll=0.05)
        second = http_service.submit_campaign(SMALL_SPEC)
        assert second["solved"] == 4  # solved-at-submit, straight from the store
        stats = run_worker(
            http_service.base_url, worker="w2", until_idle=True, poll=0.05
        )
        assert stats.computed == 0
        assert stats.skipped == 4
        assert http_service.digest(second["campaign"])["complete"] is True
        assert http_service.health()["counters"]["records_duplicate"] == 0

    def test_batch_upload_endpoint_stores_and_dedupes(self, http_service):
        grid = list(SMALL_SPEC.build_grid())[:3]
        engine = Engine()
        records = [make_record(s, engine.run(s).result) for s in grid]
        assert http_service.put_records_batch(records) == {"stored": 3, "duplicates": 0}
        assert http_service.put_records_batch(records) == {"stored": 0, "duplicates": 3}
        assert http_service.health()["store"]["records"] == 3

    def test_batch_upload_digest_rejection_parity(self, http_service):
        """The NDJSON path rejects a bad record exactly like ``/records``."""
        grid = list(SMALL_SPEC.build_grid())[:2]
        engine = Engine()
        good, other = (make_record(s, engine.run(s).result) for s in grid)
        bad = dict(other, result="not a result payload")
        with pytest.raises(ServiceError) as batch_error:
            http_service.put_records_batch([good, bad])
        assert batch_error.value.status == 400
        with pytest.raises(ServiceError) as single_error:
            http_service.put_record(bad)
        assert single_error.value.status == 400
        # All-or-nothing on both paths: the good record was not written.
        assert http_service.health()["store"]["records"] == 0

    def test_batch_upload_malformed_ndjson_is_400(self, http_service):
        with pytest.raises(ServiceError, match="line 1") as excinfo:
            http_service._call(
                "/records/batch", raw=b"{broken\n", content_type="application/x-ndjson"
            )
        assert excinfo.value.status == 400

    def test_chunked_worker_digest_parity(self, http_service):
        """``--chunk`` changes upload cadence only, never the digest."""
        submitted = http_service.submit_campaign(SMALL_SPEC)
        lines: list[str] = []
        stats = run_worker(
            http_service.base_url,
            worker="w1",
            until_idle=True,
            poll=0.05,
            chunk_size=2,
            log=lines.append,
        )
        assert stats.computed == 4
        assert stats.stored == 4
        assert stats.duplicates == 0
        assert any("chunk 1/" in line and "uploaded" in line for line in lines)
        answer = http_service.digest(submitted["campaign"])
        assert answer["complete"] is True
        local = sweep_digest(Engine().run_batch(list(SMALL_SPEC.build_grid())))
        assert answer["digest"] == local

    def test_worker_falls_back_on_missing_batch_endpoint(
        self, http_service, monkeypatch
    ):
        """Against a pre-batch server (404) the worker ships per record."""

        def gone(self, records):
            raise ServiceError("/records/batch: no such endpoint", status=404)

        monkeypatch.setattr(ServiceClient, "put_records_batch", gone)
        submitted = http_service.submit_campaign(SMALL_SPEC)
        stats = run_worker(
            http_service.base_url, worker="w1", until_idle=True, poll=0.05, chunk_size=2
        )
        assert stats.computed == 4
        assert stats.stored == 4
        answer = http_service.digest(submitted["campaign"])
        assert answer["complete"] is True
        local = sweep_digest(Engine().run_batch(list(SMALL_SPEC.build_grid())))
        assert answer["digest"] == local

    def test_run_scenario_endpoint(self, http_service):
        wire = scenario_to_wire(
            "synthetic:7:4", channels=48, depth=mega_vectors(1)
        )
        first = http_service.run_scenario(wire)
        assert first["source"] == "computed"
        second = http_service.run_scenario(wire)
        assert second["source"] == "store"
        assert second["record"] == first["record"]


# ----------------------------------------------------------------------
# Full subprocess E2E: serve, submit, kill a worker, recover, compare
# ----------------------------------------------------------------------
E2E_SWEEP = (
    "d695", "--channels", "32", "48", "64", "--depth-m", "1", "--shards", "3",
)
E2E_SPEC = GridSpec(
    socs=("d695",), channels=(32, 48, 64), depths=(mega_vectors(1),), shards=3
)


def _repro(*args: str, **kwargs) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[1] / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        **kwargs,
    )


def _get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


class TestDistributedE2E:
    def test_kill_worker_mid_campaign_digest_parity(self, tmp_path):
        """serve + sweep --server + two workers, one killed, digest parity.

        One shard is leased by a 'doomed' worker that dies without
        completing it (the lease must expire and re-offer the shard); a
        real worker subprocess is additionally SIGKILLed while running.
        The surviving worker must finish everything, and the campaign
        digest must equal an uninterrupted in-process sweep.
        """
        store = tmp_path / "store"
        serve = _repro(
            "serve", "--store", str(store), "--port", "0",
            "--lease-ttl", "2", "--quiet",
        )
        try:
            line = serve.stdout.readline()
            match = re.search(r"listening on (http://\S+)", line)
            assert match, f"no listen line: {line!r}"
            url = match.group(1)

            submit = _repro("sweep", *E2E_SWEEP, "--server", url)
            out, err = submit.communicate(timeout=60)
            assert submit.returncode == 0, err
            match = re.search(r"campaign (c\d+) submitted", out)
            assert match, out
            campaign = match.group(1)

            # A worker leases shard 0 and dies on the spot: no heartbeat,
            # no completion.  Its shard must come back after the 2s TTL.
            doomed = json.loads(
                urllib.request.urlopen(
                    urllib.request.Request(
                        f"{url}/lease",
                        data=json.dumps({"worker": "doomed"}).encode(),
                        headers={"Content-Type": "application/json"},
                    ),
                    timeout=10,
                ).read()
            )
            assert doomed["status"] == "granted"

            # A real worker subprocess gets SIGKILLed mid-run as well.
            killed = _repro("work", "--server", url, "--poll", "0.1")
            time.sleep(0.3)
            killed.kill()
            killed.wait(timeout=10)

            # The survivor drains the campaign, waiting out expired leases.
            survivor = _repro(
                "work", "--server", url, "--until-idle", "--poll", "0.2",
            )
            out, err = survivor.communicate(timeout=60)
            assert survivor.returncode == 0, err

            answer = _get_json(f"{url}/campaigns/{campaign}/digest")
            assert answer["complete"] is True, answer
            assert answer["solved"] == 3
            local = sweep_digest(Engine().run_batch(list(E2E_SPEC.build_grid())))
            assert answer["digest"] == local

            health = _get_json(f"{url}/health")
            assert health["counters"]["leases_expired"] >= 1
            assert health["store"]["records"] == 3
        finally:
            serve.send_signal(signal.SIGINT)
            try:
                serve.wait(timeout=10)
            except subprocess.TimeoutExpired:
                serve.kill()
                serve.wait(timeout=10)
        assert serve.returncode == 0

        # The store the service filled is a plain result store: a local
        # engine over the same grid is all store hits, zero computes.
        engine = Engine(store=ResultStore(store))
        engine.run_batch(list(E2E_SPEC.build_grid()))
        info = engine.cache_info()
        assert (info.misses, info.store_hits) == (0, 3)
