"""Tests for the persistent result store and its Engine integration."""

import json
import threading

import pytest

from repro.api import Engine, Scenario, TestCell
from repro.ate.spec import AteSpec
from repro.core.exceptions import ConfigurationError
from repro.core.units import kilo_vectors
from repro.experiments.registry import get_experiment, render_experiment
from repro.store import STORE_FORMAT, ResultStore
from repro.store.result_store import RECORD_SUFFIX


@pytest.fixture(scope="module")
def tiny_soc():
    from repro.soc.builder import SocBuilder

    return (
        SocBuilder("tiny", functional_pins=64)
        .add_module("alpha", inputs=8, outputs=8, bidirs=0,
                    scan_lengths=[100, 100, 90], patterns=50)
        .add_module("beta", inputs=16, outputs=4, bidirs=2,
                    scan_lengths=[200, 150], patterns=120)
        .add_module("gamma", inputs=5, outputs=7, bidirs=0,
                    scan_lengths=[], patterns=30)
        .build()
    )


@pytest.fixture(scope="module")
def tiny_cell():
    return TestCell(
        ate=AteSpec(channels=64, depth=kilo_vectors(32), frequency_hz=10e6, name="ate-small")
    )


@pytest.fixture
def scenario(tiny_soc, tiny_cell) -> Scenario:
    return Scenario(soc=tiny_soc, test_cell=tiny_cell)


class TestResultStoreBasics:
    def test_round_trip(self, tmp_path, scenario):
        store = ResultStore(tmp_path)
        computed = Engine().run(scenario).result
        path = store.put(scenario, computed)
        assert path == store.path_for(scenario)
        assert scenario in store
        assert store.get(scenario) == computed

    def test_get_on_empty_store_is_miss(self, tmp_path, scenario):
        store = ResultStore(tmp_path)
        assert store.get(scenario) is None
        info = store.info()
        assert (info.hits, info.misses, info.corrupt) == (0, 1, 0)

    def test_record_carries_format_and_version(self, tmp_path, scenario):
        from repro import __version__

        store = ResultStore(tmp_path)
        store.put(scenario, Engine().run(scenario).result)
        record = json.loads(store.path_for(scenario).read_text())
        assert record["format"] == STORE_FORMAT
        assert record["package_version"] == __version__
        assert record["key"] == scenario.digest
        assert record["scenario"]["soc"] == "tiny"
        assert record["scenario"]["solver"] == "goel05"

    def test_store_root_created_and_validated(self, tmp_path):
        root = tmp_path / "deep" / "store"
        assert ResultStore(root).root == root
        assert root.is_dir()
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        with pytest.raises(ConfigurationError):
            ResultStore(not_a_dir)

    def test_uncreatable_root_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            ResultStore("/proc/no-such-dir/store")

    def test_evict_never_leaves_the_store_directory(self, tmp_path, scenario):
        victim = tmp_path / "victim.json"
        victim.write_text("{}")
        store = ResultStore(tmp_path / "store")
        store.put(scenario, Engine().run(scenario).result)
        assert store.evict(["../victim", "a/b", ".."]) == 0
        assert victim.exists()
        assert len(store) == 1

    def test_scan_and_evict(self, tmp_path, scenario):
        store = ResultStore(tmp_path)
        result = Engine().run(scenario).result
        store.put(scenario, result)
        store.put(scenario.with_solver("restart"),
                  Engine().run(scenario.with_solver("restart")).result)
        entries = store.scan()
        assert len(entries) == len(store) == 2
        assert {entry.solver for entry in entries} == {"goel05", "restart"}
        assert all(entry.size_bytes > 0 for entry in entries)
        # Evict one specific key, then everything.
        assert store.evict([scenario.digest]) == 1
        assert store.get(scenario) is None
        assert store.evict() == 1
        assert len(store) == 0
        assert store.evict(["no-such-key"]) == 0


class TestCorruptionTolerance:
    def _seed(self, tmp_path, scenario):
        store = ResultStore(tmp_path)
        store.put(scenario, Engine().run(scenario).result)
        return store

    def test_truncated_record_is_miss(self, tmp_path, scenario):
        store = self._seed(tmp_path, scenario)
        path = store.path_for(scenario)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(scenario) is None
        assert store.info().corrupt == 1

    def test_non_json_record_is_miss(self, tmp_path, scenario):
        store = self._seed(tmp_path, scenario)
        store.path_for(scenario).write_text("not json at all")
        assert store.get(scenario) is None

    def test_key_mismatch_is_miss(self, tmp_path, scenario):
        """A record moved to another scenario's file name must not hit."""
        store = self._seed(tmp_path, scenario)
        other = scenario.with_solver("restart")
        store.path_for(scenario).rename(store.path_for(other))
        assert store.get(other) is None
        assert store.info().corrupt == 1

    def test_tampered_key_field_is_miss(self, tmp_path, scenario):
        store = self._seed(tmp_path, scenario)
        path = store.path_for(scenario)
        record = json.loads(path.read_text())
        record["key"] = "0" * 64
        path.write_text(json.dumps(record))
        assert store.get(scenario) is None

    def test_future_format_is_miss(self, tmp_path, scenario):
        store = self._seed(tmp_path, scenario)
        path = store.path_for(scenario)
        record = json.loads(path.read_text())
        record["format"] = STORE_FORMAT + 1
        path.write_text(json.dumps(record))
        assert store.get(scenario) is None

    def test_tampered_payload_is_miss(self, tmp_path, scenario):
        store = self._seed(tmp_path, scenario)
        path = store.path_for(scenario)
        record = json.loads(path.read_text())
        record["result"]["fields"]["points"] = {"__tuple__": [{"__ref__": 999}]}
        path.write_text(json.dumps(record))
        assert store.get(scenario) is None

    def test_wrong_payload_type_is_miss(self, tmp_path, scenario):
        """A record whose payload is not a TwoStepResult must not hit."""
        store = self._seed(tmp_path, scenario)
        path = store.path_for(scenario)
        record = json.loads(path.read_text())
        from repro.store import encode_result

        record["result"] = encode_result(scenario.test_cell.ate)
        path.write_text(json.dumps(record))
        assert store.get(scenario) is None
        assert store.info().corrupt == 1

    def test_scan_skips_corrupt_files(self, tmp_path, scenario):
        store = self._seed(tmp_path, scenario)
        (tmp_path / f"garbage{RECORD_SUFFIX}").write_text("{broken")
        entries = store.scan()
        assert len(entries) == 1
        assert store.info().corrupt == 1


class TestEngineStoreTier:
    def test_second_engine_hits_store(self, tmp_path, scenario):
        first = Engine(store=ResultStore(tmp_path))
        outcome = first.run(scenario)
        assert first.cache_info().misses == 1
        assert first.cache_info().store_hits == 0

        second = Engine(store=ResultStore(tmp_path))
        replayed = second.run(scenario)
        info = second.cache_info()
        assert (info.hits, info.misses, info.store_hits) == (0, 0, 1)
        assert replayed.result == outcome.result
        # The store hit populated the in-memory tier.
        third = second.run(scenario)
        assert second.cache_info().hits == 1
        assert third.result == outcome.result

    def test_engine_accepts_path_as_store(self, tmp_path, scenario):
        engine = Engine(store=tmp_path / "store")
        engine.run(scenario)
        assert engine.store is not None
        assert len(engine.store) == 1

    def test_memory_only_engine_unchanged(self, scenario):
        engine = Engine()
        engine.run(scenario)
        engine.run(scenario)
        info = engine.cache_info()
        assert engine.store is None
        assert (info.hits, info.misses, info.store_hits) == (1, 1, 0)

    def test_store_serves_across_solver_axis(self, tmp_path, scenario):
        engine = Engine(store=ResultStore(tmp_path))
        engine.run(scenario)
        engine.run(scenario.with_solver("restart"))
        # Two solver-distinct records, no false sharing.
        assert len(engine.store) == 2
        warm = Engine(store=ResultStore(tmp_path))
        a = warm.run(scenario)
        b = warm.run(scenario.with_solver("restart"))
        assert warm.cache_info().store_hits == 2
        assert a.scenario.solver == "goel05" and b.scenario.solver == "restart"

    def test_run_batch_uses_and_fills_store(self, tmp_path, scenario, tiny_cell, tiny_soc):
        grid = Scenario.sweep(tiny_soc, tiny_cell, channels=[32, 48, 64])
        cold = Engine(store=ResultStore(tmp_path))
        cold_results = cold.run_batch(grid, workers=2)
        assert len(cold.store) == len(grid)
        assert cold.cache_info().store_hits == 0

        warm = Engine(store=ResultStore(tmp_path))
        warm_results = warm.run_batch(grid, workers=2)
        info = warm.cache_info()
        assert info.store_hits == len(grid)
        assert info.misses == 0
        assert [a.result for a in cold_results] == [b.result for b in warm_results]

    def test_batch_results_identical_with_and_without_store(self, tmp_path, tiny_soc, tiny_cell):
        grid = Scenario.sweep(tiny_soc, tiny_cell, channels=[32, 64])
        plain = Engine().run_batch(grid)
        stored = Engine(store=ResultStore(tmp_path)).run_batch(grid)
        rewarmed = Engine(store=ResultStore(tmp_path)).run_batch(grid)
        assert [r.result for r in plain] == [r.result for r in stored]
        assert [r.result for r in plain] == [r.result for r in rewarmed]

    def test_failing_store_write_does_not_lose_the_result(self, tmp_path, scenario, monkeypatch):
        """A dying disk mid-run degrades to memory-only caching, not a crash."""
        store = ResultStore(tmp_path)
        monkeypatch.setattr(
            store, "put", lambda *a, **k: (_ for _ in ()).throw(OSError("disk full"))
        )
        engine = Engine(store=store)
        outcome = engine.run(scenario)
        assert outcome.result.optimal_sites >= 1
        assert engine.cache_info().misses == 1
        assert engine.run(scenario).result == outcome.result  # memory tier still works
        assert len(store) == 0

    def test_cli_reports_bad_store_path_as_error(self, capsys):
        from repro.cli import main

        code = main(["economics", "--store", "/proc/no-such-dir/store"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_clear_cache_keeps_store_records(self, tmp_path, scenario):
        engine = Engine(store=ResultStore(tmp_path))
        engine.run(scenario)
        engine.clear_cache()
        assert engine.cache_info() == type(engine.cache_info())(
            hits=0, misses=0, size=0, evictions=0, max_entries=None, store_hits=0
        )
        assert len(engine.store) == 1
        engine.run(scenario)
        assert engine.cache_info().store_hits == 1


class TestConcurrentWrites:
    def test_parallel_puts_of_same_record_stay_readable(self, tmp_path, scenario):
        """Concurrent writers must never expose a torn record to readers."""
        result = Engine().run(scenario).result
        store = ResultStore(tmp_path)
        errors: list[Exception] = []

        def hammer() -> None:
            try:
                for _ in range(20):
                    store.put(scenario, result)
                    assert store.get(scenario) == result
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.get(scenario) == result
        assert len(store) == 1

    def test_concurrent_batches_share_one_directory(self, tmp_path, tiny_soc, tiny_cell):
        grid = Scenario.sweep(tiny_soc, tiny_cell, channels=[32, 48, 64])
        engines = [Engine(store=ResultStore(tmp_path)) for _ in range(4)]
        outcomes: dict[int, tuple] = {}

        def run(index: int) -> None:
            outcomes[index] = engines[index].run_batch(grid, workers=2)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(len(engines))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reference = [r.result for r in outcomes[0]]
        for index in range(1, len(engines)):
            assert [r.result for r in outcomes[index]] == reference
        assert len(ResultStore(tmp_path)) == len(grid)


class TestReportByteIdentity:
    """The store must never change what an experiment renders."""

    def test_economics_output_identical_with_store(self, tmp_path):
        experiment = get_experiment("economics")
        baseline = render_experiment("economics", experiment.run(Engine()))

        store = ResultStore(tmp_path / "store")
        cold = render_experiment("economics", experiment.run(Engine(store=store)))
        warm_engine = Engine(store=store)
        warm = render_experiment("economics", experiment.run(warm_engine))

        assert cold == baseline
        assert warm == baseline
        assert warm_engine.cache_info().store_hits > 0
