"""Property-based round-trip tests for the .soc parser and writer."""

from hypothesis import given, settings, strategies as st

from repro.itc02.parser import parse_soc_text
from repro.itc02.writer import soc_to_text
from repro.soc.builder import SocBuilder

names = st.from_regex(r"[A-Za-z][A-Za-z0-9_\-\.]{0,15}", fullmatch=True)


@st.composite
def socs(draw):
    soc_name = draw(names)
    num_modules = draw(st.integers(min_value=1, max_value=8))
    functional_pins = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=5000)))
    builder = SocBuilder(soc_name, functional_pins=functional_pins)
    used = set()
    for index in range(num_modules):
        module_name = f"{draw(names)}_{index}"
        if module_name in used:
            continue
        used.add(module_name)
        chains = draw(st.lists(st.integers(min_value=1, max_value=10_000),
                               min_size=0, max_size=10))
        inputs = draw(st.integers(min_value=0, max_value=500))
        outputs = draw(st.integers(min_value=0, max_value=500))
        bidirs = draw(st.integers(min_value=0, max_value=100))
        if inputs + outputs + bidirs + len(chains) == 0:
            inputs = 1
        builder.add_module(
            module_name,
            inputs,
            outputs,
            bidirs,
            chains,
            draw(st.integers(min_value=1, max_value=100_000)),
            is_memory=draw(st.booleans()),
        )
    return builder.build()


class TestRoundTrip:
    @given(soc=socs())
    @settings(max_examples=80, deadline=None)
    def test_write_then_parse_is_identity(self, soc):
        assert parse_soc_text(soc_to_text(soc)) == soc

    @given(soc=socs())
    @settings(max_examples=40, deadline=None)
    def test_serialisation_is_deterministic(self, soc):
        assert soc_to_text(soc) == soc_to_text(soc)
