"""Unit tests for the scenario-first API (TestCell / Scenario / Engine)."""

import pytest

from repro.api import (
    Engine,
    Scenario,
    TestCell,
    batch_throughput_series,
    reference_test_cell,
    resolve_soc,
)
from repro.api.engine import optimize_scenario
from repro.ate.spec import AteSpec
from repro.cli import build_parser, experiment_commands
from repro.core.exceptions import ConfigurationError
from repro.core.units import kilo_vectors
from repro.experiments.registry import experiment_names, get_experiment
from repro.itc02.registry import load_benchmark
from repro.optimize.config import OptimizationConfig
from repro.optimize.two_step import optimize_multisite


@pytest.fixture(scope="module")
def cell() -> TestCell:
    """A small, fast test cell: 256 channels x 64 K vectors."""
    return reference_test_cell(channels=256, depth_m=0.0625)


class TestTestCell:
    def test_reference_cell_matches_paper(self):
        cell = reference_test_cell()
        assert cell.ate.channels == 512
        assert cell.probe_station.index_time_s == pytest.approx(0.5)
        assert cell.pricing is None

    def test_with_channels_and_depth(self, cell):
        assert cell.with_channels(128).ate.channels == 128
        assert cell.with_depth(1000).ate.depth == 1000
        # The original is unchanged (immutability).
        assert cell.ate.channels == 256

    def test_describe_mentions_both_components(self, cell):
        text = cell.describe()
        assert "channels" in text and "index" in text


class TestScenarioIdentity:
    def test_name_and_object_references_equal(self, cell):
        by_name = Scenario(soc="d695", test_cell=cell)
        by_object = Scenario(soc=load_benchmark("d695"), test_cell=cell)
        assert by_name == by_object
        assert hash(by_name) == hash(by_object)
        assert by_name.key == by_object.key

    def test_cosmetic_ate_label_ignored(self, cell):
        renamed = TestCell(
            ate=AteSpec(
                channels=cell.ate.channels,
                depth=cell.ate.depth,
                frequency_hz=cell.ate.frequency_hz,
                name="some-other-label",
            ),
            probe_station=cell.probe_station,
        )
        assert Scenario(soc="d695", test_cell=cell) == Scenario(soc="d695", test_cell=renamed)

    def test_config_distinguishes_scenarios(self, cell):
        plain = Scenario(soc="d695", test_cell=cell)
        shared = Scenario(
            soc="d695", test_cell=cell, config=OptimizationConfig(broadcast=True)
        )
        assert plain != shared
        assert plain.key != shared.key

    def test_soc_name_does_not_resolve(self, cell):
        assert Scenario(soc="no-such-benchmark", test_cell=cell).soc_name == "no-such-benchmark"

    def test_unknown_benchmark_rejected_on_resolve(self, cell):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            Scenario(soc="no-such-benchmark", test_cell=cell).resolve()

    def test_invalid_soc_reference_rejected(self, cell):
        with pytest.raises(ConfigurationError):
            Scenario(soc=42, test_cell=cell)
        with pytest.raises(ConfigurationError):
            Scenario(soc="", test_cell=cell)

    def test_resolve_soc_pnx8550(self):
        assert resolve_soc("pnx8550").name == "pnx8550"


class TestScenarioDerivation:
    def test_with_sites(self, cell):
        base = Scenario(soc="d695", test_cell=cell)
        limited = base.with_sites(4)
        assert limited.config.max_sites == 4
        assert base.config.max_sites is None  # immutability
        assert limited.with_sites(None).config.max_sites is None

    def test_with_soc(self, cell):
        base = Scenario(soc="d695", test_cell=cell)
        moved = base.with_soc("p22810")
        assert moved.soc_name == "p22810"
        assert moved.test_cell == base.test_cell
        assert base.soc_name == "d695"

    def test_with_soc_accepts_objects(self, cell):
        soc = load_benchmark("d695")
        assert Scenario(soc="p22810", test_cell=cell).with_soc(soc).soc is soc

    def test_with_helpers_compose(self, cell):
        scenario = (
            Scenario(soc="d695", test_cell=cell)
            .with_soc("p22810")
            .with_channels(128)
            .with_sites(6)
            .with_solver("restart")
        )
        assert scenario.soc_name == "p22810"
        assert scenario.test_cell.ate.channels == 128
        assert scenario.config.max_sites == 6
        assert scenario.solver == "restart"


class TestScenarioSweep:
    def test_cartesian_expansion_count(self, cell):
        grid = Scenario.sweep(
            ["d695", "p22810"],
            cell,
            channels=[128, 256],
            depths=[kilo_vectors(48), kilo_vectors(64), kilo_vectors(96)],
            broadcast=[False, True],
        )
        assert len(grid) == 2 * 2 * 3 * 2

    def test_omitted_axes_keep_base_values(self, cell):
        (only,) = Scenario.sweep("d695", cell)
        assert only.test_cell == cell
        assert only.config == OptimizationConfig()

    def test_scalar_axes_accepted(self, cell):
        grid = Scenario.sweep("d695", cell, broadcast=True)
        assert len(grid) == 1
        assert grid[0].config.broadcast

    def test_max_sites_axis(self, cell):
        grid = Scenario.sweep("d695", cell, max_sites=[None, 4, 8])
        assert [scenario.config.max_sites for scenario in grid] == [None, 4, 8]

    def test_deterministic_order(self, cell):
        first = Scenario.sweep("d695", cell, channels=[128, 256], broadcast=[False, True])
        second = Scenario.sweep("d695", cell, channels=[128, 256], broadcast=[False, True])
        assert first == second

    def test_empty_axes_rejected(self, cell):
        with pytest.raises(ConfigurationError):
            Scenario.sweep([], cell)
        with pytest.raises(ConfigurationError):
            Scenario.sweep("d695", cell, channels=[])
        with pytest.raises(ConfigurationError):
            Scenario.sweep("d695", cell, broadcast=[])


class TestEngine:
    def test_run_matches_legacy_function(self, cell):
        outcome = Engine().run(Scenario(soc="d695", test_cell=cell))
        legacy = optimize_multisite(
            load_benchmark("d695"), cell.ate, cell.probe_station, OptimizationConfig()
        )
        assert outcome.result == legacy

    def test_repeated_run_is_cache_hit(self, cell):
        engine = Engine()
        scenario = Scenario(soc="d695", test_cell=cell)
        first = engine.run(scenario)
        second = engine.run(scenario)
        assert first is second
        info = engine.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.size == 1

    def test_cache_hit_keeps_requested_scenario(self, cell):
        # Canonically-equal scenarios with different cosmetic fields share
        # the expensive result, but each caller sees its own scenario back.
        engine = Engine()
        by_name = engine.run(Scenario(soc="d695", test_cell=cell))
        relabeled_cell = cell.with_ate(
            AteSpec(
                channels=cell.ate.channels,
                depth=cell.ate.depth,
                frequency_hz=cell.ate.frequency_hz,
                name="my-label",
            )
        )
        relabeled = engine.run(Scenario(soc="d695", test_cell=relabeled_cell))
        assert engine.cache_info().hits == 1
        assert relabeled.result is by_name.result
        assert relabeled.scenario.test_cell.ate.name == "my-label"

    def test_cache_disabled(self, cell):
        engine = Engine(cache=False)
        scenario = Scenario(soc="d695", test_cell=cell)
        assert engine.run(scenario) is not engine.run(scenario)
        assert engine.cache_info().size == 0

    def test_clear_cache(self, cell):
        engine = Engine()
        engine.run(Scenario(soc="d695", test_cell=cell))
        engine.clear_cache()
        assert engine.cache_info() == type(engine.cache_info())(hits=0, misses=0, size=0)

    def test_batch_equals_serial(self, cell):
        grid = Scenario.sweep(
            "d695",
            cell,
            channels=[128, 256],
            depths=[kilo_vectors(48), kilo_vectors(64)],
            broadcast=[False, True],
        )
        serial = [Engine(cache=False).run(scenario) for scenario in grid]
        batch = Engine().run_batch(grid, workers=4)
        assert len(batch) == len(serial)
        for serial_item, batch_item in zip(serial, batch):
            assert serial_item.scenario == batch_item.scenario
            assert serial_item.result == batch_item.result

    def test_batch_preserves_order_and_dedupes(self, cell):
        scenario = Scenario(soc="d695", test_cell=cell)
        other = scenario.with_channels(128)
        results = Engine().run_batch([scenario, other, scenario])
        assert results[0] is results[2]
        assert results[0].scenario == scenario
        assert results[1].scenario == other

    def test_batch_uses_cache_across_calls(self, cell):
        engine = Engine()
        grid = Scenario.sweep("d695", cell, channels=[128, 256])
        engine.run_batch(grid)
        engine.run_batch(grid)
        info = engine.cache_info()
        assert info.misses == 2 and info.hits == 2

    def test_invalid_worker_counts_rejected(self, cell):
        with pytest.raises(ConfigurationError):
            Engine(workers=0)
        with pytest.raises(ConfigurationError):
            Engine().run_batch([], workers=-1)

    def test_empty_batch(self):
        assert Engine().run_batch([]) == ()


class TestScenarioResult:
    def test_record_plugs_into_export(self, cell):
        outcome = Engine().run(Scenario(soc="d695", test_cell=cell))
        record = outcome.to_record()
        assert record["soc"] == "d695"
        assert record["scenario_key"] == outcome.scenario.key
        assert record["optimal"]["sites"] == outcome.optimal_sites

    def test_batch_series(self, cell):
        results = Engine().run_batch(Scenario.sweep("d695", cell, channels=[128, 256]))
        series = batch_throughput_series(
            results,
            x_axis=lambda item: item.scenario.test_cell.ate.channels,
            name="d695 throughput",
            x_label="ATE channels",
        )
        assert series.xs == (128.0, 256.0)
        assert series.is_nondecreasing()

    def test_optimize_scenario_without_engine(self, cell):
        soc = load_benchmark("d695")
        direct = optimize_scenario(None, soc, cell.ate, cell.probe_station, OptimizationConfig())
        assert direct == optimize_multisite(soc, cell.ate, cell.probe_station)


class TestExperimentRegistry:
    def test_every_cli_experiment_resolves(self):
        names = experiment_commands()
        assert set(names) == set(experiment_names())
        parser = build_parser()
        for name in names:
            experiment = get_experiment(name)
            assert experiment.name == name
            assert callable(experiment.runner) and callable(experiment.render)
            # The generated sub-command parses (registry drives the CLI).
            assert parser.parse_args([name]).command == name

    def test_report_experiments_registered(self):
        from repro.experiments.runner import REPORT_EXPERIMENTS

        assert set(REPORT_EXPERIMENTS) <= set(experiment_names())

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("figure42")

    def test_duplicate_registration_rejected(self):
        from repro.experiments.registry import register_experiment

        with pytest.raises(ConfigurationError, match="already registered"):
            register_experiment("figure5", title="dup", render=str)(lambda engine: None)
