"""Unit tests for wrapper design result types and the test-time formula."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.soc.module import make_module
from repro.wrapper.design import WrapperChain, WrapperDesign, scan_test_time


class TestScanTestTime:
    def test_doc_example(self):
        assert scan_test_time(10, 6, 3) == 39

    def test_symmetric(self):
        # Formula uses max/min, so swapping si and so changes nothing.
        assert scan_test_time(10, 6, 3) == scan_test_time(6, 10, 3)

    def test_single_pattern(self):
        assert scan_test_time(100, 80, 1) == 101 + 80

    def test_zero_scan_lengths(self):
        # Purely combinational test: one cycle per pattern.
        assert scan_test_time(0, 0, 5) == 5

    def test_monotone_in_patterns(self):
        assert scan_test_time(50, 50, 10) < scan_test_time(50, 50, 11)

    def test_monotone_in_scan_length(self):
        assert scan_test_time(50, 50, 10) < scan_test_time(51, 50, 10)

    def test_zero_patterns_rejected(self):
        with pytest.raises(ConfigurationError):
            scan_test_time(1, 1, 0)

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            scan_test_time(-1, 1, 1)


class TestWrapperChain:
    def test_lengths(self):
        chain = WrapperChain(index=0, scan_chain_indices=(0, 1), scan_flipflops=120,
                             input_cells=4, output_cells=7)
        assert chain.scan_in_length == 124
        assert chain.scan_out_length == 127
        assert not chain.is_empty

    def test_empty_chain(self):
        chain = WrapperChain(index=2, scan_chain_indices=(), scan_flipflops=0,
                             input_cells=0, output_cells=0)
        assert chain.is_empty


class TestWrapperDesign:
    def _design(self):
        module = make_module("m", 4, 2, 0, [30, 20], 10)
        chains = (
            WrapperChain(0, (0,), 30, 2, 1),
            WrapperChain(1, (1,), 20, 2, 1),
        )
        return WrapperDesign(module=module, width=2, chains=chains)

    def test_max_scan_in_out(self):
        design = self._design()
        assert design.max_scan_in == 32
        assert design.max_scan_out == 31

    def test_test_time_uses_formula(self):
        design = self._design()
        assert design.test_time_cycles == scan_test_time(32, 31, 10)

    def test_used_width(self):
        assert self._design().used_width == 2

    def test_describe(self):
        assert "m" in self._design().describe()

    def test_zero_width_rejected(self):
        module = make_module("m", 1, 1, 0, [5], 2)
        with pytest.raises(ConfigurationError):
            WrapperDesign(module=module, width=0, chains=())

    def test_more_chains_than_width_rejected(self):
        module = make_module("m", 1, 1, 0, [5], 2)
        chains = (
            WrapperChain(0, (0,), 5, 1, 1),
            WrapperChain(1, (), 0, 0, 1),
        )
        with pytest.raises(ConfigurationError):
            WrapperDesign(module=module, width=1, chains=chains)
