"""Tests for the streaming engine path: run_iter, resumability, fallbacks.

Covers the campaign contract -- results stream out (and hit the store) as
they complete, an interrupted sweep resumes without recomputing finished
scenarios -- plus the ``_map_chunks`` degradation paths: pool
construction failure, a pool broken mid-batch, and task exceptions
propagating unchanged.
"""

import concurrent.futures
from concurrent.futures import BrokenExecutor

import pytest

import repro.api.engine as engine_module
from repro.api import Engine, Scenario, SweepGrid, TestCell
from repro.ate.spec import AteSpec
from repro.bench.runner import sweep_digest
from repro.core.exceptions import ConfigurationError
from repro.core.units import kilo_vectors
from repro.soc.builder import SocBuilder


@pytest.fixture(scope="module")
def tiny_soc():
    return (
        SocBuilder("tiny", functional_pins=64)
        .add_module("alpha", inputs=8, outputs=8, bidirs=0,
                    scan_lengths=[100, 100, 90], patterns=50)
        .add_module("beta", inputs=16, outputs=4, bidirs=2,
                    scan_lengths=[200, 150], patterns=120)
        .add_module("gamma", inputs=5, outputs=7, bidirs=0,
                    scan_lengths=[], patterns=30)
        .build()
    )


@pytest.fixture(scope="module")
def tiny_cell():
    return TestCell(
        ate=AteSpec(channels=64, depth=kilo_vectors(32), frequency_hz=10e6, name="ate-small")
    )


@pytest.fixture
def grid(tiny_soc, tiny_cell) -> SweepGrid:
    return SweepGrid(tiny_soc, tiny_cell, channels=[32, 40, 48, 64])


class TestRunIter:
    def test_matches_run_batch(self, grid):
        streamed = {r.scenario.key: r.result for r in Engine().run_iter(grid)}
        batch = Engine().run_batch(list(grid))
        assert streamed == {r.scenario.key: r.result for r in batch}

    def test_is_a_generator(self, grid):
        stream = Engine().run_iter(grid)
        first = next(stream)
        assert first.scenario == grid[0]
        stream.close()

    def test_cache_hits_yield_without_compute(self, grid):
        engine = Engine()
        list(engine.run_iter(grid))
        again = list(engine.run_iter(grid))
        info = engine.cache_info()
        assert len(again) == len(grid)
        assert info.misses == len(grid)
        assert info.hits == len(grid)

    def test_duplicates_collapse_onto_one_computation(self, tiny_soc, tiny_cell):
        scenario = Scenario(soc=tiny_soc, test_cell=tiny_cell)
        other = scenario.with_channels(32)
        engine = Engine()
        results = list(engine.run_iter([scenario, other, scenario]))
        assert len(results) == 3
        assert engine.cache_info().misses == 2
        assert len({record.scenario.key for record in results}) == 2

    def test_duplicate_of_warm_hit_redelivered_without_extra_count(
        self, tiny_soc, tiny_cell
    ):
        scenario = Scenario(soc=tiny_soc, test_cell=tiny_cell)
        engine = Engine()
        engine.run(scenario)  # miss -> cached
        results = list(engine.run_iter([scenario, scenario]))
        info = engine.cache_info()
        assert len(results) == 2
        assert results[0].result is results[1].result
        # One lookup for the pair: batch semantics, no double-counted hit.
        assert info.misses == 1 and info.hits == 1

    def test_duplicate_after_mid_stream_eviction_refetched_from_store(
        self, tmp_path, tiny_soc, tiny_cell
    ):
        # A bounded engine does not retain results for the yielded set:
        # when a duplicate arrives after its record was evicted, it is
        # re-fetched from the store, not recomputed.
        first = Scenario(soc=tiny_soc, test_cell=tiny_cell)
        second = first.with_channels(32)
        Engine(store=tmp_path).run_batch([first, second])  # seed the store
        engine = Engine(store=tmp_path, max_entries=1)
        results = list(engine.run_iter([first, second, first]))
        info = engine.cache_info()
        assert len(results) == 3
        assert info.misses == 0  # nothing recomputed
        assert info.store_hits == 2
        assert results[0].result == results[2].result

    def test_invalid_worker_count_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            list(Engine().run_iter(grid, workers=0))

    def test_empty_input(self):
        assert list(Engine().run_iter([])) == []


class TestResume:
    def test_interrupted_sweep_resumes_from_store(self, tmp_path, grid):
        # Consume only half the stream, like a killed process: every
        # yielded result is already persisted at that point.
        interrupted = Engine(store=tmp_path)
        consumed = []
        for record in interrupted.run_iter(grid):
            consumed.append(record)
            if len(consumed) == 2:
                break
        assert len(list(tmp_path.glob("*.json"))) == 2

        # The rerun serves the finished half from the store and computes
        # only the rest.
        resumed_engine = Engine(store=tmp_path)
        resumed = list(resumed_engine.run_iter(grid))
        info = resumed_engine.cache_info()
        assert len(resumed) == len(grid)
        assert info.store_hits == 2
        assert info.misses == len(grid) - 2

        # And the resumed sweep is bit-identical to an uninterrupted one.
        reference = list(Engine().run_iter(grid))
        assert sweep_digest(resumed) == sweep_digest(reference)

    def test_results_persist_at_completion_time_not_batch_end(self, tmp_path, grid):
        engine = Engine(store=tmp_path)
        on_disk = []
        for record in engine.run_iter(grid):
            on_disk.append(len(list(tmp_path.glob("*.json"))))
        assert on_disk == [1, 2, 3, 4]

    def test_store_hits_yield_before_any_compute(self, tmp_path, grid):
        # Seed only the *last* grid scenario into the store: the fresh
        # stream must yield it first (warm tiers drain before the fan-out
        # computes anything).
        last = grid[len(grid) - 1]
        seeded = Engine(store=tmp_path).run(last)
        fresh = Engine(store=tmp_path)
        stream = fresh.run_iter(grid)
        first = next(stream)
        stream.close()
        assert first.scenario == last
        assert first.result == seeded.result
        info = fresh.cache_info()
        assert info.store_hits == 1 and info.misses == 0


class TestMapParallelFallbacks:
    def test_pool_construction_failure_falls_back_to_serial(self, monkeypatch, grid):
        def broken_pool(*args, **kwargs):
            raise OSError("no multiprocessing primitives on this platform")

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", broken_pool)
        engine = Engine()
        results = engine.run_batch(list(grid), workers=4)
        assert len(results) == len(grid)
        assert engine.cache_info().misses == len(grid)

    def test_broken_pool_mid_batch_recomputes_remainder(self, monkeypatch, grid):
        reference = Engine().run_batch(list(grid))

        class HalfBrokenPool:
            """Completes the first submissions, then breaks the pool."""

            def __init__(self, max_workers):
                self.submissions = 0

            def submit(self, function, scenario):
                future = concurrent.futures.Future()
                if self.submissions < 2:
                    future.set_result(function(scenario))
                else:
                    future.set_exception(BrokenExecutor("workers died"))
                self.submissions += 1
                return future

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", HalfBrokenPool)
        engine = Engine()
        results = engine.run_batch(list(grid), workers=4)
        assert engine.cache_info().misses == len(grid)
        assert [r.result for r in results] == [r.result for r in reference]

    def test_task_exceptions_propagate_serial(self, tiny_soc, tiny_cell):
        bad = Scenario(soc=tiny_soc, test_cell=tiny_cell, solver="no-such-solver")
        with pytest.raises(ConfigurationError, match="unknown solver"):
            list(Engine().run_iter([bad]))

    def test_task_exceptions_propagate_through_pool(self, tiny_soc, tiny_cell):
        bad = Scenario(soc=tiny_soc, test_cell=tiny_cell, solver="no-such-solver")
        good = Scenario(soc=tiny_soc, test_cell=tiny_cell)
        with pytest.raises(ConfigurationError, match="unknown solver"):
            list(Engine().run_iter([bad, good], workers=2))

    def test_task_exception_type_preserved_by_broken_pool_fallback(
        self, monkeypatch, tiny_soc, tiny_cell
    ):
        # The serial fallback must not swallow task errors either.
        def broken_pool(*args, **kwargs):
            raise OSError("sandbox")

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", broken_pool)
        bad = Scenario(soc=tiny_soc, test_cell=tiny_cell, solver="no-such-solver")
        good = Scenario(soc=tiny_soc, test_cell=tiny_cell)
        with pytest.raises(ConfigurationError, match="unknown solver"):
            Engine().run_batch([good, bad], workers=2)
