"""Tests for the pluggable objective layer (registry, backends, threading).

Covers the registry contract, the four built-in backends, the objective's
path through the evaluation kernel / Step 2 / every solver backend, the
scenario axis (canonical keys, digests, engine caching, store records) and
the digest-stability guarantee: the default objective leaves every
pre-existing key, digest and store record untouched.
"""

import pytest

from repro.api.engine import Engine
from repro.api.grid import SweepGrid
from repro.api.scenario import Scenario
from repro.api.testcell import reference_test_cell
from repro.ate.pricing import AtePricing
from repro.core.exceptions import ConfigurationError
from repro.objectives import (
    DEFAULT_OBJECTIVE,
    ObjectiveSpec,
    get_objective,
    list_objectives,
    objective_names,
    register_objective,
)
from repro.objectives.backends import DEPRECIATION_HOURS
from repro.objectives.registry import _REGISTRY
from repro.optimize.step2 import run_step2
from repro.solvers import evaluate as evaluate_kernel
from repro.solvers.problem import TestInfraProblem, make_problem
from repro.solvers.registry import solve
from repro.store.result_store import ResultStore

BUILTIN_OBJECTIVES = ("channel_budget", "cost_per_good_die", "test_time", "throughput")


@pytest.fixture(scope="module")
def cell():
    return reference_test_cell(channels=256, depth_m=0.0625)


@pytest.fixture(scope="module")
def outcomes(cell):
    """One d695 run per built-in objective, through one engine."""
    engine = Engine()
    return {
        name: engine.run(Scenario(soc="d695", test_cell=cell, objective=name))
        for name in objective_names()
    }


class TestRegistry:
    def test_builtin_objectives_registered(self):
        assert objective_names() == BUILTIN_OBJECTIVES

    def test_default_objective_is_throughput(self):
        assert DEFAULT_OBJECTIVE == "throughput"
        assert get_objective(DEFAULT_OBJECTIVE).sense == "max"

    def test_list_objectives_sorted_specs(self):
        specs = list_objectives()
        assert [spec.name for spec in specs] == list(objective_names())
        assert all(isinstance(spec, ObjectiveSpec) for spec in specs)

    def test_unknown_objective_raises(self):
        with pytest.raises(ConfigurationError, match="unknown objective"):
            get_objective("no-such-objective")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_objective("throughput", title="dup")(lambda s, c, a: 0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            register_objective("", title="anon")

    def test_bad_sense_rejected(self):
        with pytest.raises(ConfigurationError, match="sense"):
            ObjectiveSpec(name="x", title="x", backend=lambda s, c, a: 0.0, sense="best")

    def test_signed_maps_min_to_negation(self):
        assert get_objective("throughput").signed(7.0) == 7.0
        assert get_objective("test_time").signed(7.0) == -7.0

    def test_custom_registration_roundtrip(self):
        @register_objective("tmp_index_time", title="Index time", sense="min", units="s")
        def _index_time(scenario, config, ate):
            return scenario.timing.index_time_s

        try:
            spec = get_objective("tmp_index_time")
            assert not spec.maximize
            assert "tmp_index_time" in objective_names()
        finally:
            _REGISTRY.pop("tmp_index_time")

    def test_senses_of_builtins(self):
        assert get_objective("test_time").sense == "min"
        assert get_objective("cost_per_good_die").sense == "min"
        assert get_objective("channel_budget").sense == "max"


class TestBackendsOnD695:
    """Pinned optima of every objective on d695 at 256ch x 64K vectors."""

    def test_throughput_matches_paper_point(self, outcomes):
        result = outcomes["throughput"].result
        assert (result.optimal_sites, result.best.channels_per_site) == (11, 22)

    def test_test_time_widens_one_site(self, outcomes):
        result = outcomes["test_time"].result
        assert (result.optimal_sites, result.best.channels_per_site) == (1, 256)
        # The value is the raw test time in seconds of the widest design.
        assert result.optimal_throughput == pytest.approx(0.0119, abs=1e-3)

    def test_cost_per_good_die_consistent_with_capital(self, outcomes):
        result = outcomes["cost_per_good_die"].result
        best = result.best
        capital = AtePricing().capital_cost_usd(
            best.sites * best.channels_per_site, 65536
        )
        expected = capital / (DEPRECIATION_HOURS * best.scenario.throughput())
        assert result.optimal_throughput == pytest.approx(expected, rel=1e-12)

    def test_channel_budget_is_throughput_per_channel(self, outcomes):
        result = outcomes["channel_budget"].result
        best = result.best
        per_channel = best.scenario.throughput() / (best.sites * best.channels_per_site)
        assert result.optimal_throughput == pytest.approx(per_channel, rel=1e-12)

    def test_minimised_objectives_pick_smallest_value(self, outcomes):
        for name in ("test_time", "cost_per_good_die"):
            result = outcomes[name].result
            values = [point.throughput for point in result.points]
            assert result.optimal_throughput == min(values), name

    def test_maximised_objectives_pick_largest_value(self, outcomes):
        for name in ("throughput", "channel_budget"):
            result = outcomes[name].result
            values = [point.throughput for point in result.points]
            assert result.optimal_throughput == max(values), name

    def test_runs_are_deterministic(self, cell, outcomes):
        rerun = Engine().run(
            Scenario(soc="d695", test_cell=cell, objective="cost_per_good_die")
        )
        assert rerun.result == outcomes["cost_per_good_die"].result


class TestKernelAndStep2:
    def test_evaluate_point_carries_signed_score(self, cell, outcomes):
        step1 = outcomes["throughput"].result.step1
        point = evaluate_kernel.evaluate_point(
            step1.architecture, 2, step1.ate, step1.probe_station, step1.config, "test_time"
        )
        assert point.score == -point.objective

    def test_run_step2_unknown_objective_raises(self, outcomes):
        step1 = outcomes["throughput"].result.step1
        with pytest.raises(ConfigurationError, match="unknown objective"):
            run_step2(step1, "no-such-objective")

    def test_default_objective_unchanged_result(self, outcomes):
        step1 = outcomes["throughput"].result.step1
        assert run_step2(step1) == run_step2(step1, DEFAULT_OBJECTIVE)


class TestProblemThreading:
    def test_problem_carries_objective(self, cell):
        soc = Scenario(soc="d695", test_cell=cell).resolve()
        problem = make_problem(soc, cell.ate, objective="test_time")
        assert problem.objective == "test_time"
        assert "optimize=test_time" in problem.describe()
        assert "optimize=" not in make_problem(soc, cell.ate).describe()

    def test_problem_rejects_empty_objective(self, cell):
        soc = Scenario(soc="d695", test_cell=cell).resolve()
        with pytest.raises(ConfigurationError, match="objective"):
            TestInfraProblem(soc=soc, ate=cell.ate, objective="")

    @pytest.mark.parametrize("solver", ["goel05", "restart"])
    def test_every_solver_honours_min_objective(self, cell, solver):
        soc = Scenario(soc="d695", test_cell=cell).resolve()
        problem = make_problem(soc, cell.ate, objective="test_time")
        solution = solve(solver, problem)
        values = [point.throughput for point in solution.result.points]
        assert solution.result.optimal_throughput == min(values)

    def test_exhaustive_honours_min_objective(self, cell):
        from repro.experiments.solver_comparison import derived_small_socs

        (small,) = derived_small_socs([3])
        ate = cell.ate.with_channels(64).with_depth(200_000)
        exhaustive = solve("exhaustive", make_problem(small, ate, objective="test_time"))
        greedy = solve("goel05", make_problem(small, ate, objective="test_time"))
        # The oracle can never be worse than the greedy under the same objective.
        assert exhaustive.result.optimal_throughput <= greedy.result.optimal_throughput


class TestScenarioAxis:
    def test_default_objective_keeps_canonical_key(self, cell):
        plain = Scenario(soc="d695", test_cell=cell)
        explicit = Scenario(soc="d695", test_cell=cell, objective=DEFAULT_OBJECTIVE)
        assert plain.canonical_key() == explicit.canonical_key()
        assert plain.digest == explicit.digest
        # The default key has no objective element at all: its shape (and
        # therefore every persisted digest) predates the objective layer.
        assert len(plain.canonical_key()) == 4

    def test_non_default_objective_changes_digest(self, cell):
        plain = Scenario(soc="d695", test_cell=cell)
        costed = plain.with_objective("cost_per_good_die")
        assert plain.digest != costed.digest
        assert plain != costed
        assert costed == Scenario(
            soc="d695", test_cell=cell, objective="cost_per_good_die"
        )

    def test_with_objective_and_describe(self, cell):
        scenario = Scenario(soc="d695", test_cell=cell).with_objective("test_time")
        assert scenario.objective == "test_time"
        assert "optimize=test_time" in scenario.describe()
        assert "optimize=" not in Scenario(soc="d695", test_cell=cell).describe()

    def test_empty_objective_rejected(self, cell):
        with pytest.raises(ConfigurationError, match="objective"):
            Scenario(soc="d695", test_cell=cell, objective="")

    def test_sweep_objectives_axis(self, cell):
        grid = Scenario.sweep(
            "d695", cell, channels=[128, 256], objectives=["throughput", "test_time"]
        )
        assert len(grid) == 4
        assert [s.objective for s in grid] == [
            "throughput", "test_time", "throughput", "test_time",
        ]

    def test_grid_objectives_axis_varies_fastest(self, cell):
        grid = SweepGrid(
            "d695", cell, solvers=["goel05", "restart"], objectives=["throughput", "test_time"]
        )
        assert len(grid) == 4
        assert [(s.solver, s.objective) for s in grid] == [
            ("goel05", "throughput"),
            ("goel05", "test_time"),
            ("restart", "throughput"),
            ("restart", "test_time"),
        ]
        assert "objectives" in grid.axes

    def test_to_record_carries_objective(self, outcomes):
        record = outcomes["cost_per_good_die"].to_record()
        assert record["objective_name"] == "cost_per_good_die"
        assert record["solver"] == "goel05"


class TestEngineAndStore:
    def test_engine_caches_per_objective(self, cell):
        engine = Engine()
        base = Scenario(soc="d695", test_cell=cell)
        engine.run(base)
        engine.run(base.with_objective("channel_budget"))
        info = engine.cache_info()
        assert (info.hits, info.misses) == (0, 2)
        engine.run(base.with_objective("channel_budget"))
        assert engine.cache_info().hits == 1

    def test_store_roundtrip_per_objective(self, cell, tmp_path, outcomes):
        store = ResultStore(tmp_path)
        scenario = Scenario(soc="d695", test_cell=cell, objective="test_time")
        store.put(scenario, outcomes["test_time"].result)
        assert store.get(scenario) == outcomes["test_time"].result
        # The default-objective scenario addresses a different record.
        assert store.get(Scenario(soc="d695", test_cell=cell)) is None

    def test_store_entry_records_objective(self, cell, tmp_path, outcomes):
        store = ResultStore(tmp_path)
        store.put(
            Scenario(soc="d695", test_cell=cell, objective="test_time"),
            outcomes["test_time"].result,
        )
        (entry,) = store.scan()
        assert entry.objective == "test_time"

    def test_store_entry_defaults_objective_for_old_records(self, cell, tmp_path, outcomes):
        import json

        store = ResultStore(tmp_path)
        path = store.put(
            Scenario(soc="d695", test_cell=cell), outcomes["throughput"].result
        )
        # Strip the objective key, simulating a record written before PR 5.
        record = json.loads(path.read_text(encoding="utf-8"))
        del record["scenario"]["objective"]
        path.write_text(json.dumps(record), encoding="utf-8")
        (entry,) = store.scan()
        assert entry.objective == DEFAULT_OBJECTIVE


class TestBroadcastAndDegenerateAccounting:
    """Employed-channel accounting must be broadcast-aware, never divide by zero."""

    def test_broadcast_shares_stimulus_channels(self, cell):
        from repro.objectives.backends import (
            DEFAULT_PRICING,
            DEPRECIATION_HOURS,
            evaluate_cost_per_good_die,
        )
        from repro.optimize.channels import total_channels_used
        from repro.optimize.config import OptimizationConfig

        outcome = Engine().run(
            Scenario(
                soc="d695",
                test_cell=cell,
                config=OptimizationConfig(broadcast=True),
                objective="cost_per_good_die",
            )
        )
        best = outcome.result.best
        employed = total_channels_used(best.channels_per_site, best.sites, True)
        # Shared stimulus: k/2 + sites*k/2, strictly less than sites*k and
        # never more than the machine provides.
        assert employed == best.channels_per_site // 2 * (best.sites + 1)
        assert employed <= cell.ate.channels
        expected = DEFAULT_PRICING.capital_cost_usd(employed, cell.ate.depth) / (
            DEPRECIATION_HOURS * best.scenario.throughput()
        )
        assert outcome.optimal_throughput == pytest.approx(expected, rel=1e-12)

    def test_channel_budget_broadcast_aware(self, cell):
        from repro.optimize.channels import total_channels_used
        from repro.optimize.config import OptimizationConfig

        outcome = Engine().run(
            Scenario(
                soc="d695",
                test_cell=cell,
                config=OptimizationConfig(broadcast=True),
                objective="channel_budget",
            )
        )
        best = outcome.result.best
        employed = total_channels_used(best.channels_per_site, best.sites, True)
        assert outcome.optimal_throughput == pytest.approx(
            best.scenario.throughput() / employed, rel=1e-12
        )

    def test_zero_yield_costs_infinity_not_crash(self, cell):
        import math

        from repro.optimize.config import OptimizationConfig

        outcome = Engine().run(
            Scenario(
                soc="d695",
                test_cell=cell,
                config=OptimizationConfig(manufacturing_yield=0.0),
                objective="cost_per_good_die",
            )
        )
        assert math.isinf(outcome.optimal_throughput)

    def test_analysis_employed_channels_broadcast_aware(self, cell):
        import dataclasses

        from repro.analysis.records import records_from_results
        from repro.optimize.channels import total_channels_used
        from repro.optimize.config import OptimizationConfig

        outcome = Engine().run(
            Scenario(
                soc="d695", test_cell=cell, config=OptimizationConfig(broadcast=True)
            )
        )
        (record,) = records_from_results([outcome])
        assert record.broadcast
        assert record.employed_channels == total_channels_used(
            record.channels_per_site, record.optimal_sites, True
        )
        off = dataclasses.replace(record, broadcast=False)
        assert off.employed_channels == record.optimal_sites * record.channels_per_site
