"""Tests of the top-level public API surface (``import repro``)."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.9.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_headline_entry_points_exposed(self):
        for name in (
            "optimize_multisite",
            "design_step1_only",
            "load_benchmark",
            "make_pnx8550",
            "design_architecture",
            "design_wrapper",
            "build_schedule",
            "AteSpec",
            "ProbeStation",
            "OptimizationConfig",
            "SweepGrid",
            "synthetic_family",
            "register_catalog_soc",
        ):
            assert name in repro.__all__

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.soc",
            "repro.itc02",
            "repro.wrapper",
            "repro.tam",
            "repro.rpct",
            "repro.ate",
            "repro.multisite",
            "repro.optimize",
            "repro.solvers",
            "repro.baselines",
            "repro.sim",
            "repro.schedule",
            "repro.experiments",
            "repro.reporting",
            "repro.cli",
        ],
    )
    def test_subpackages_importable_and_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} needs a module docstring"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.soc",
            "repro.wrapper",
            "repro.tam",
            "repro.multisite",
            "repro.optimize",
            "repro.solvers",
            "repro.baselines",
            "repro.sim",
            "repro.itc02",
            "repro.reporting",
        ],
    )
    def test_subpackage_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_end_to_end_via_public_names_only(self):
        soc = repro.load_benchmark("d695")
        ate = repro.AteSpec(channels=64, depth=200_000)
        result = repro.optimize_multisite(soc, ate)
        schedule = repro.build_schedule(result.best.architecture)
        assert schedule.makespan == result.best.test_time_cycles
