"""Unit tests for repro.core.exceptions."""

import pytest

from repro.core.exceptions import (
    ConfigurationError,
    InfeasibleDesignError,
    InvalidSocError,
    ParseError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [InvalidSocError, InfeasibleDesignError, ParseError, ConfigurationError],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catching_base_catches_specific(self):
        with pytest.raises(ReproError):
            raise InfeasibleDesignError("nope")


class TestInfeasibleDesignError:
    def test_carries_module_name(self):
        error = InfeasibleDesignError("too big", module_name="cpu")
        assert error.module_name == "cpu"

    def test_module_name_defaults_to_none(self):
        assert InfeasibleDesignError("x").module_name is None

    def test_message_preserved(self):
        assert "too big" in str(InfeasibleDesignError("too big"))


class TestParseError:
    def test_location_in_message(self):
        error = ParseError("bad token", filename="chip.soc", line=12)
        assert "chip.soc:12" in str(error)

    def test_filename_only(self):
        error = ParseError("bad token", filename="chip.soc")
        assert "chip.soc" in str(error)
        assert error.line is None

    def test_no_location(self):
        error = ParseError("bad token")
        assert str(error) == "bad token"

    def test_attributes(self):
        error = ParseError("x", filename="f", line=3)
        assert error.filename == "f"
        assert error.line == 3
