"""Unit tests for repro.soc.soc."""

import pytest

from repro.core.exceptions import InvalidSocError
from repro.soc.module import make_module
from repro.soc.soc import Soc, flatten


def _module(name: str, patterns: int = 10):
    return make_module(name, 4, 4, 0, [16, 16], patterns)


class TestConstruction:
    def test_basic_construction(self):
        soc = Soc(name="x", modules=(_module("a"), _module("b")))
        assert len(soc) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidSocError):
            Soc(name="", modules=(_module("a"),))

    def test_no_modules_rejected(self):
        with pytest.raises(InvalidSocError):
            Soc(name="x", modules=())

    def test_duplicate_module_names_rejected(self):
        with pytest.raises(InvalidSocError):
            Soc(name="x", modules=(_module("a"), _module("a")))

    def test_negative_functional_pins_rejected(self):
        with pytest.raises(InvalidSocError):
            Soc(name="x", modules=(_module("a"),), functional_pins=-1)

    def test_modules_normalised_to_tuple(self):
        soc = Soc(name="x", modules=[_module("a")])  # type: ignore[arg-type]
        assert isinstance(soc.modules, tuple)


class TestContainerProtocol:
    @pytest.fixture
    def soc(self):
        return Soc(name="x", modules=(_module("a"), _module("b"), _module("c")))

    def test_iteration_order(self, soc):
        assert [module.name for module in soc] == ["a", "b", "c"]

    def test_len(self, soc):
        assert len(soc) == 3

    def test_contains_by_name(self, soc):
        assert "b" in soc
        assert "z" not in soc

    def test_contains_by_module(self, soc):
        assert soc.modules[0] in soc

    def test_module_lookup(self, soc):
        assert soc.module("b").name == "b"

    def test_module_lookup_missing_raises(self, soc):
        with pytest.raises(KeyError):
            soc.module("zzz")

    def test_module_names(self, soc):
        assert soc.module_names == ("a", "b", "c")


class TestDerivedQuantities:
    def test_is_flat(self):
        assert Soc(name="x", modules=(_module("a"),)).is_flat
        assert not Soc(name="x", modules=(_module("a"), _module("b"))).is_flat

    def test_logic_and_memory_split(self):
        memory = make_module("ram", 4, 4, 0, [], 10, is_memory=True)
        soc = Soc(name="x", modules=(_module("a"), memory))
        assert [m.name for m in soc.logic_modules] == ["a"]
        assert [m.name for m in soc.memory_modules] == ["ram"]

    def test_total_scan_flipflops(self):
        soc = Soc(name="x", modules=(_module("a"), _module("b")))
        assert soc.total_scan_flipflops == 2 * 32

    def test_total_patterns(self):
        soc = Soc(name="x", modules=(_module("a", 10), _module("b", 20)))
        assert soc.total_patterns == 30

    def test_test_data_volume_is_sum(self):
        a, b = _module("a"), _module("b")
        soc = Soc(name="x", modules=(a, b))
        assert soc.test_data_volume_bits == a.test_data_volume_bits + b.test_data_volume_bits

    def test_estimated_functional_pins_explicit(self):
        soc = Soc(name="x", modules=(_module("a"),), functional_pins=99)
        assert soc.estimated_functional_pins == 99

    def test_estimated_functional_pins_fallback(self):
        soc = Soc(name="x", modules=(_module("a"), _module("b")))
        assert soc.estimated_functional_pins == 2 * 8

    def test_describe_contains_counts(self):
        soc = Soc(name="chipx", modules=(_module("a"),))
        assert "chipx" in soc.describe()


class TestFlatten:
    def test_flatten_merges_everything(self, tiny_soc):
        flat = flatten(tiny_soc)
        assert flat.is_flat
        merged = flat.modules[0]
        assert merged.total_scan_flipflops == tiny_soc.total_scan_flipflops
        assert merged.patterns == tiny_soc.total_patterns
        assert merged.inputs == sum(m.inputs for m in tiny_soc.modules)
        assert merged.outputs == sum(m.outputs for m in tiny_soc.modules)

    def test_flatten_custom_name(self, tiny_soc):
        assert flatten(tiny_soc, name="flat_chip").name == "flat_chip"

    def test_flatten_preserves_functional_pins(self, tiny_soc):
        assert flatten(tiny_soc).functional_pins == tiny_soc.functional_pins
