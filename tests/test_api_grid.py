"""Unit tests for the lazy grid layer (SweepGrid, shard, union, filter)."""

import itertools

import pytest

from repro.api import Engine, Scenario, SweepGrid, TestCell, reference_test_cell
from repro.api.grid import FilteredGrid, GridShard, GridUnion
from repro.core.exceptions import ConfigurationError
from repro.core.units import kilo_vectors
from repro.optimize.config import OptimizationConfig
from repro.soc.catalog import synthetic_family


@pytest.fixture(scope="module")
def cell() -> TestCell:
    return reference_test_cell(channels=256, depth_m=0.0625)


@pytest.fixture(scope="module")
def grid(cell) -> SweepGrid:
    return SweepGrid(
        "d695",
        cell,
        channels=[128, 256],
        depths=[kilo_vectors(48), kilo_vectors(64)],
        broadcast=[False, True],
    )


class TestSweepGrid:
    def test_matches_scenario_sweep(self, cell, grid):
        eager = Scenario.sweep(
            "d695",
            cell,
            channels=[128, 256],
            depths=[kilo_vectors(48), kilo_vectors(64)],
            broadcast=[False, True],
        )
        assert list(grid) == eager

    def test_sweep_shim_returns_list(self, cell):
        shim = Scenario.sweep("d695", cell, channels=[128, 256])
        assert isinstance(shim, list)
        assert shim == list(SweepGrid("d695", cell, channels=[128, 256]))

    def test_len_is_axis_product(self, grid):
        assert len(grid) == 2 * 2 * 2

    def test_iteration_is_lazy(self, cell):
        # A grid over an unknown SOC name can be built, sized and sharded;
        # only expanding scenarios would touch the name, and even then
        # resolution only happens at run time.
        grid = SweepGrid("no-such-benchmark", cell, channels=range(1, 1001))
        assert len(grid) == 1000
        first = next(iter(grid))
        assert first.soc_name == "no-such-benchmark"

    def test_equal_arguments_compare_equal(self, cell):
        first = SweepGrid("d695", cell, channels=[128, 256])
        second = SweepGrid("d695", cell, channels=(128, 256))
        assert first == second

    def test_scalar_axes_promoted(self, cell):
        grid = SweepGrid("d695", cell, broadcast=True, solvers="restart")
        (only,) = list(grid)
        assert only.config.broadcast
        assert only.solver == "restart"

    def test_omitted_axes_keep_base_values(self, cell):
        (only,) = list(SweepGrid("d695", cell))
        assert only.test_cell == cell
        assert only.config == OptimizationConfig()

    def test_scenario_at_matches_iteration(self, grid):
        expanded = list(grid)
        for index in range(len(grid)):
            assert grid.scenario_at(index) == expanded[index]
            assert grid[index] == expanded[index]

    def test_scenario_at_out_of_range(self, grid):
        with pytest.raises(ConfigurationError, match="grid index"):
            grid.scenario_at(len(grid))
        with pytest.raises(ConfigurationError, match="grid index"):
            grid.scenario_at(-1)

    def test_scenario_at_far_out_of_range(self, grid):
        # Indices far beyond the grid (and extreme negatives) fail with the
        # same error, never wrap around via divmod.
        for index in (len(grid) + 1, 10 * len(grid), -len(grid), -(10 ** 9), 10 ** 9):
            with pytest.raises(ConfigurationError, match="grid index"):
                grid.scenario_at(index)

    def test_empty_axes_rejected(self, cell):
        with pytest.raises(ConfigurationError):
            SweepGrid([], cell)
        for axis in ("channels", "depths", "broadcast", "max_sites", "solvers",
                     "objectives"):
            with pytest.raises(ConfigurationError, match=axis):
                SweepGrid("d695", cell, **{axis: []})

    def test_describe_mentions_shape(self, grid):
        text = grid.describe()
        assert "d695" in text and str(len(grid)) in text

    def test_frozen(self, grid):
        with pytest.raises(AttributeError):
            grid.channels = (512,)


class TestShard:
    def test_disjoint_complete_partition_over_catalog(self, cell):
        # The acceptance grid: ITC'02 benchmarks + pnx8550 + a synthetic
        # family -- 11 catalog SOCs, addressed purely by name.
        names = ("d695", "p22810", "p34392", "p93791", "pnx8550") + synthetic_family(
            7, count=6, modules=8
        )
        assert len(names) >= 10
        grid = SweepGrid(names, cell, channels=[64, 128])
        shards = [grid.shard(index, 4) for index in range(4)]
        assert sum(len(shard) for shard in shards) == len(grid)
        labels = [
            [(s.soc_name, s.test_cell.ate.channels) for s in shard] for shard in shards
        ]
        flat = list(itertools.chain.from_iterable(labels))
        assert len(flat) == len(grid)
        assert len(set(flat)) == len(grid), "shards overlap"
        assert set(flat) == {(s.soc_name, s.test_cell.ate.channels) for s in grid}

    def test_shard_lengths_balanced(self, grid):
        shards = [grid.shard(index, 3) for index in range(3)]
        assert [len(shard) for shard in shards] == [3, 3, 2]

    def test_single_shard_is_whole_grid(self, grid):
        assert list(grid.shard(0, 1)) == list(grid)

    def test_invalid_shards_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            grid.shard(0, 0)
        with pytest.raises(ConfigurationError):
            grid.shard(2, 2)
        with pytest.raises(ConfigurationError):
            grid.shard(-1, 2)

    def test_shard_of_union(self, cell):
        union = SweepGrid("d695", cell, channels=[64, 128]) | SweepGrid(
            "p22810", cell, channels=[64]
        )
        shards = [union.shard(index, 2) for index in range(2)]
        assert isinstance(shards[0], GridShard)
        merged = list(shards[0]) + list(shards[1])
        assert len(merged) == len(union) == 3


class TestUnionAndFilter:
    def test_union_concatenates_in_order(self, cell):
        first = SweepGrid("d695", cell, channels=[64])
        second = SweepGrid("p22810", cell, channels=[128])
        union = first | second
        assert isinstance(union, GridUnion)
        assert [s.soc_name for s in union] == ["d695", "p22810"]
        assert len(union) == 2

    def test_union_flattens(self, cell):
        grids = [SweepGrid(name, cell) for name in ("d695", "p22810", "p34392")]
        union = grids[0] | grids[1] | grids[2]
        assert len(union.parts) == 3
        assert [s.soc_name for s in union] == ["d695", "p22810", "p34392"]

    def test_union_with_non_grid_rejected(self, cell):
        with pytest.raises(TypeError):
            SweepGrid("d695", cell) | ["not a grid"]

    def test_filter_keeps_matching_scenarios(self, grid):
        narrow = grid.filter(lambda s: s.test_cell.ate.channels == 128)
        assert isinstance(narrow, FilteredGrid)
        picked = narrow.scenarios()
        assert len(picked) == 4
        assert all(s.test_cell.ate.channels == 128 for s in picked)

    def test_filtered_grid_has_no_len(self, grid):
        with pytest.raises(TypeError):
            len(grid.filter(lambda s: True))

    def test_scenarios_materialises(self, grid):
        assert grid.scenarios() == list(grid)


class TestGridExecution:
    def test_engine_accepts_grid_directly(self, cell):
        grid = SweepGrid("d695", cell, channels=[128, 256])
        streamed = sorted(
            Engine().run_iter(grid), key=lambda r: r.scenario.test_cell.ate.channels
        )
        batch = Engine().run_batch(list(grid))
        assert [r.result for r in streamed] == [r.result for r in batch]


class TestComposition:
    """The disjoint/complete shard invariant must survive filter and union."""

    def _labels(self, scenarios):
        return [
            (
                s.soc_name,
                s.test_cell.ate.channels,
                s.test_cell.ate.depth,
                s.config.broadcast,
            )
            for s in scenarios
        ]

    def test_filter_then_shard_is_disjoint_and_complete(self, grid):
        narrow = grid.filter(lambda s: s.test_cell.ate.channels == 128)
        shards = [narrow.shard(index, 3) for index in range(3)]
        merged = list(itertools.chain.from_iterable(shards))
        assert len(merged) == len(narrow.scenarios()) == 4
        assert len(set(self._labels(merged))) == 4, "shards of a filtered grid overlap"
        assert set(self._labels(merged)) == set(self._labels(narrow.scenarios()))

    def test_shard_then_filter_matches_filter_then_shard_union(self, grid):
        # Filtering each shard keeps exactly the filtered grid's scenarios,
        # split disjointly -- the two composition orders agree as sets.
        predicate = lambda s: s.config.broadcast  # noqa: E731
        per_shard = [
            list(grid.shard(index, 2).filter(predicate)) for index in range(2)
        ]
        merged = list(itertools.chain.from_iterable(per_shard))
        assert sorted(self._labels(merged)) == sorted(
            self._labels(grid.filter(predicate).scenarios())
        )
        assert len(set(self._labels(merged))) == len(merged)

    def test_union_of_filtered_shards_rebuilds_the_grid(self, grid):
        # shard | shard is a Grid union; together with a pass-all filter it
        # must reproduce the whole grid exactly once.
        union = grid.shard(0, 2) | grid.shard(1, 2)
        everything = union.filter(lambda s: True).scenarios()
        assert sorted(self._labels(everything)) == sorted(self._labels(grid))
        assert len(everything) == len(grid)

    def test_shard_of_union_of_filters_is_disjoint_complete(self, cell):
        base = SweepGrid(
            "d695", cell, channels=[64, 128, 256], broadcast=[False, True]
        )
        union = base.filter(lambda s: not s.config.broadcast) | base.filter(
            lambda s: s.config.broadcast
        )
        shards = [union.shard(index, 4) for index in range(4)]
        merged = list(itertools.chain.from_iterable(shards))
        assert len(merged) == len(base)
        assert len(set(self._labels(merged))) == len(base)
        assert set(self._labels(merged)) == set(self._labels(base))

    def test_filtered_shard_lengths_unknowable(self, grid):
        # A shard of a filtered grid has no len either: its source is lazy.
        with pytest.raises(TypeError):
            len(grid.filter(lambda s: True).shard(0, 2))

    def test_objectives_axis_survives_composition(self, cell):
        grid = SweepGrid(
            "d695", cell, channels=[64, 128], objectives=["throughput", "test_time"]
        )
        costed = grid.filter(lambda s: s.objective == "test_time")
        shards = [costed.shard(index, 2) for index in range(2)]
        merged = list(itertools.chain.from_iterable(shards))
        assert len(merged) == 2
        assert all(s.objective == "test_time" for s in merged)
