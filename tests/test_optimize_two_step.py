"""Unit tests for the combined two-step driver (the headline API)."""

import pytest

from repro.ate.spec import AteSpec
from repro.core.exceptions import InfeasibleDesignError
from repro.core.units import kilo_vectors
from repro.optimize.config import OptimizationConfig
from repro.optimize.two_step import design_step1_only, optimize_multisite
from repro.soc.builder import SocBuilder
from repro.soc.soc import flatten


class TestOptimizeMultisite:
    def test_returns_feasible_design(self, medium_soc, medium_ate, probe):
        result = optimize_multisite(medium_soc, medium_ate, probe)
        assert result.best.architecture.test_time_cycles <= medium_ate.depth
        assert result.best.channels_per_site * result.optimal_sites <= medium_ate.channels

    def test_optimal_between_one_and_max(self, medium_soc, medium_ate, probe):
        result = optimize_multisite(medium_soc, medium_ate, probe)
        assert 1 <= result.optimal_sites <= result.max_sites

    def test_default_probe_station_and_config(self, medium_soc, medium_ate):
        result = optimize_multisite(medium_soc, medium_ate)
        assert result.step1.probe_station.index_time_s == pytest.approx(0.5)
        assert not result.step1.config.broadcast

    def test_broadcast_never_hurts_throughput(self, medium_soc, medium_ate, probe):
        plain = optimize_multisite(medium_soc, medium_ate, probe,
                                   OptimizationConfig(broadcast=False))
        shared = optimize_multisite(medium_soc, medium_ate, probe,
                                    OptimizationConfig(broadcast=True))
        assert shared.optimal_throughput >= plain.optimal_throughput - 1e-9

    def test_more_channels_never_hurt(self, medium_soc, probe):
        small = optimize_multisite(
            medium_soc, AteSpec(channels=128, depth=kilo_vectors(256)), probe
        )
        large = optimize_multisite(
            medium_soc, AteSpec(channels=256, depth=kilo_vectors(256)), probe
        )
        assert large.optimal_throughput >= small.optimal_throughput - 1e-9

    def test_flattened_soc_is_degenerate_case(self, medium_soc, probe):
        # Flattening merges all pattern sets, so the single top-level test is
        # long and needs a deeper vector memory than the modular test.
        flat = flatten(medium_soc)
        ate = AteSpec(channels=256, depth=kilo_vectors(1024), frequency_hz=5e6)
        result = optimize_multisite(flat, ate, probe)
        assert result.step1.architecture.num_groups == 1

    def test_single_module_soc(self, flat_soc, probe):
        ate = AteSpec(channels=64, depth=kilo_vectors(512))
        result = optimize_multisite(flat_soc, ate, probe)
        assert result.optimal_sites >= 1

    def test_abort_on_fail_never_reduces_throughput(self, medium_soc, medium_ate, probe):
        base = optimize_multisite(
            medium_soc, medium_ate, probe,
            OptimizationConfig(manufacturing_yield=0.8),
        )
        abort = optimize_multisite(
            medium_soc, medium_ate, probe,
            OptimizationConfig(abort_on_fail=True, manufacturing_yield=0.8),
        )
        assert abort.optimal_throughput >= base.optimal_throughput - 1e-9

    def test_infeasible_raises(self, probe):
        soc = SocBuilder("fat").add_module("m", 0, 0, 0, [4000] * 8, 4000).build()
        with pytest.raises(InfeasibleDesignError):
            optimize_multisite(soc, AteSpec(channels=16, depth=10_000), probe)

    def test_d695_paper_reference(self, d695, probe):
        # The paper's Table 1, 96 K row: our algorithm uses 14 channels and
        # reaches 35 sites with broadcast on a 256-channel ATE.
        ate = AteSpec(channels=256, depth=kilo_vectors(96), frequency_hz=5e6)
        result = optimize_multisite(d695, ate, probe, OptimizationConfig(broadcast=True))
        assert result.step1.channels_per_site == 14
        assert result.step1.max_sites == 35

    def test_describe(self, medium_soc, medium_ate, probe):
        assert "two-step result" in optimize_multisite(medium_soc, medium_ate, probe).describe()


class TestDesignStep1Only:
    def test_matches_two_step_step1(self, medium_soc, medium_ate, probe):
        alone = design_step1_only(medium_soc, medium_ate, probe)
        combined = optimize_multisite(medium_soc, medium_ate, probe)
        assert alone.channels_per_site == combined.step1.channels_per_site
        assert alone.max_sites == combined.step1.max_sites

    def test_defaults(self, medium_soc, medium_ate):
        result = design_step1_only(medium_soc, medium_ate)
        assert result.probe_station.contact_yield == 1.0
