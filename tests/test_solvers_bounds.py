"""Tests of the lower-bound certificate layer (:mod:`repro.solvers.bounds`).

The load-bearing property is *soundness*: on every SOC small enough for the
exhaustive oracle, the certificate must never be beaten by the true optimum
-- for any registered objective.  An unsound certificate would silently
report negative "optimality gaps" all over the analysis layer.
"""

import pytest

from repro.ate.spec import AteSpec
from repro.core.units import kilo_vectors
from repro.itc02.registry import load_benchmark
from repro.objectives.registry import get_objective, objective_names
from repro.optimize.config import OptimizationConfig
from repro.soc.soc import Soc
from repro.solvers.bounds import (
    certificate,
    problem_certificate,
    problem_lower_bound,
    relative_gap,
    scenario_lower_bound,
)
from repro.solvers.problem import make_problem
from repro.solvers.registry import solve


def _oracle_socs(d695):
    """Every exhaustively tractable SOC family of the suite."""
    return (
        Soc(name="d695-3", modules=d695.modules[:3]),
        Soc(name="d695-5", modules=d695.modules[:5]),
    )


def pytest_generate_tests(metafunc):
    if "objective" in metafunc.fixturenames:
        metafunc.parametrize("objective", objective_names())


class TestSoundness:
    """No exhaustive optimum may beat the certificate (per objective)."""

    def _assert_sound(self, soc, ate, objective):
        problem = make_problem(soc, ate, objective=objective)
        cert = problem_certificate(problem)
        assert cert is not None
        oracle = solve("exhaustive", problem)
        spec = get_objective(objective)
        tolerance = 1e-9 * max(1.0, abs(cert.signed_value))
        assert oracle.score <= cert.signed_value + tolerance
        gap = relative_gap(oracle.optimal_throughput, cert.value, objective)
        assert gap is not None and gap >= 0.0
        assert cert.objective == spec.name
        assert cert.sense == spec.sense

    def test_certificate_dominates_oracle_on_tiny_soc(
        self, tiny_soc, small_ate, objective
    ):
        self._assert_sound(tiny_soc, small_ate, objective)

    def test_certificate_dominates_oracle_on_medium_soc(
        self, medium_soc, small_ate, objective
    ):
        self._assert_sound(medium_soc, small_ate.with_depth(kilo_vectors(128)), objective)

    def test_certificate_dominates_oracle_on_flat_soc(
        self, flat_soc, medium_ate, objective
    ):
        self._assert_sound(flat_soc, medium_ate.with_depth(kilo_vectors(256)), objective)

    def test_certificate_dominates_oracle_on_d695_instances(self, d695, objective):
        ate = AteSpec(channels=64, depth=200_000, name="ate-oracle")
        for soc in _oracle_socs(d695):
            self._assert_sound(soc, ate, objective)

    def test_certificate_dominates_oracle_with_lossy_contact(
        self, tiny_soc, small_ate, lossy_probe, objective
    ):
        # Abort-on-fail timing depends on the contact yield; the bound's
        # full width scan must stay sound there too.
        problem = make_problem(
            tiny_soc, small_ate, probe_station=lossy_probe, objective=objective
        )
        cert = problem_certificate(problem)
        assert cert is not None
        oracle = solve("exhaustive", problem)
        assert oracle.score <= cert.signed_value + 1e-9 * max(1.0, abs(cert.signed_value))


class TestCertificate:
    def test_describes_the_attaining_configuration(self, tiny_soc, small_ate):
        cert = problem_certificate(make_problem(tiny_soc, small_ate))
        text = cert.describe()
        assert "throughput" in text
        assert f"n={cert.sites}" in text
        assert cert.channels_per_site % 2 == 0
        assert cert.channels_per_site <= small_ate.channels
        assert cert.test_time_cycles <= small_ate.depth

    def test_signed_value_follows_the_sense(self, tiny_soc, small_ate):
        maximised = problem_certificate(
            make_problem(tiny_soc, small_ate, objective="throughput")
        )
        minimised = problem_certificate(
            make_problem(tiny_soc, small_ate, objective="test_time")
        )
        assert maximised.signed_value == maximised.value
        assert minimised.signed_value == -minimised.value

    def test_unknown_objective_yields_no_certificate(self, tiny_soc, small_ate, probe):
        assert certificate(
            tiny_soc, small_ate, probe, OptimizationConfig(), "no-such-objective"
        ) is None

    def test_infeasible_relaxation_yields_no_certificate(self, flat_soc, small_ate, probe):
        cramped = small_ate.with_depth(100)
        assert certificate(
            flat_soc, cramped, probe, OptimizationConfig(), "throughput"
        ) is None

    def test_test_cell_names_do_not_matter(self, tiny_soc, small_ate, probe):
        from dataclasses import replace

        config = OptimizationConfig()
        renamed = replace(small_ate, name="some-other-label")
        first = certificate(tiny_soc, small_ate, probe, config, "throughput")
        second = certificate(tiny_soc, renamed, probe, config, "throughput")
        assert first == second

    def test_respects_site_clamps(self, tiny_soc, small_ate, probe):
        clamped = certificate(
            tiny_soc, small_ate, probe, OptimizationConfig(max_sites=1), "throughput"
        )
        assert clamped.sites == 1

    def test_problem_lower_bound_matches_certificate(self, tiny_problem):
        cert = problem_certificate(tiny_problem)
        assert problem_lower_bound(tiny_problem) == cert.value

    def test_scenario_lower_bound_matches_problem(self, small_ate):
        from repro.api.scenario import Scenario
        from repro.api.testcell import TestCell

        scenario = Scenario(soc="d695", test_cell=TestCell(ate=small_ate))
        bound = scenario_lower_bound(scenario)
        problem = make_problem(scenario.resolve(), small_ate)
        assert bound == problem_lower_bound(problem)

    def test_unresolvable_scenario_yields_none(self, small_ate):
        from repro.api.scenario import Scenario
        from repro.api.testcell import TestCell

        scenario = Scenario(soc="no-such-benchmark", test_cell=TestCell(ate=small_ate))
        assert scenario_lower_bound(scenario) is None


class TestRelativeGap:
    def test_attaining_the_bound_gives_zero(self):
        assert relative_gap(100.0, 100.0, "throughput") == 0.0

    def test_shortfall_is_relative_to_the_bound(self):
        assert relative_gap(90.0, 100.0, "throughput") == pytest.approx(0.10)
        # Minimised objective: exceeding the bound is the shortfall.
        assert relative_gap(110.0, 100.0, "test_time") == pytest.approx(0.10)

    def test_rounding_residue_clamps_to_zero(self):
        assert relative_gap(100.0 + 1e-12, 100.0, "throughput") == 0.0

    def test_degenerate_inputs_give_none(self):
        assert relative_gap(90.0, None, "throughput") is None
        assert relative_gap(90.0, 0.0, "throughput") is None
        assert relative_gap(90.0, float("inf"), "throughput") is None
        assert relative_gap(float("nan"), 100.0, "throughput") is None
        assert relative_gap(90.0, 100.0, "no-such-objective") is None


class TestSolutionWiring:
    def test_solver_solutions_report_bound_and_gap(self, tiny_problem):
        solution = solve("goel05", tiny_problem)
        assert solution.lower_bound == problem_lower_bound(tiny_problem)
        gap = solution.gap
        assert gap is not None
        assert 0.0 <= gap < 1.0

    def test_exhaustive_gap_is_small_on_d695(self, d695):
        # The certificate is useful, not just sound: at d695's Table-1
        # point the relaxation is within a percent of what goel05 achieves.
        ate = AteSpec(channels=256, depth=kilo_vectors(88), name="ate-table1")
        solution = solve("goel05", make_problem(d695, ate))
        assert solution.gap < 0.01
