"""Tests for the columnar analysis sidecars (``repro.store.columns``).

The invariant under test everywhere: the sidecar fast path is an
**optimisation, never a semantic**.  Whatever the sidecar's state --
fresh, missing, stale, truncated, garbage, rebuilt, compacted away --
``records_from_store`` returns bit-identical :class:`AnalysisRecord`
tuples (and therefore byte-identical rendered tables) to the full-record
decode path, and parallel segment scans merge to exactly the serial
order.
"""

import json

import pytest

from repro.analysis.analyze import records_table
from repro.analysis.records import records_from_store
from repro.api.engine import Engine
from repro.api.scenario import Scenario
from repro.api.testcell import reference_test_cell
from repro.core.exceptions import ConfigurationError
from repro.store import columns
from repro.store.factory import migrate_store, open_store
from repro.store.packed import PackedResultStore
from repro.store.result_store import ResultStore, make_record, record_lower_bound


@pytest.fixture(scope="module")
def solved():
    """The pinned d695 workload: 2 channel counts x 2 objectives."""
    cell = reference_test_cell(channels=256, depth_m=0.0625)
    scenarios = Scenario.sweep(
        "d695", cell, channels=[128, 256], objectives=["throughput", "test_time"]
    )
    return Engine().run_batch(scenarios)


@pytest.fixture(scope="module")
def records(solved):
    return [make_record(r.scenario, r.result) for r in solved]


def _packed(tmp_path, records):
    store = PackedResultStore(tmp_path / "packed")
    store.put_records(records)
    return store


def _sidecars(store):
    return sorted(store.root.rglob(f"*{columns.SIDECAR_SUFFIX}"))


def _assert_paths_identical(store):
    """The core parity check: sidecar scan == full decode, bit for bit."""
    fast = records_from_store(store)
    slow = records_from_store(store, columns=False)
    assert fast == slow
    assert records_table(fast).render() == records_table(slow).render()
    return fast


class TestWritePath:
    def test_put_records_writes_sidecar(self, tmp_path, records):
        store = _packed(tmp_path, records)
        (sidecar,) = _sidecars(store)
        lines = sidecar.read_bytes().decode("utf-8").splitlines()
        header = json.loads(lines[0])
        assert header["format"] == columns.COLUMNS_FORMAT
        assert header["columns"] == list(columns.ANALYSIS_COLUMNS)
        # One full row per record, tiling the segment byte range.
        rows = [json.loads(line) for line in lines[1:]]
        assert len(rows) == len(records)
        assert all(len(row) == 2 + len(columns.ANALYSIS_COLUMNS) for row in rows)
        assert rows[0][0] == 0

    def test_sidecar_scan_matches_full_decode(self, tmp_path, records):
        store = _packed(tmp_path, records)
        loaded = _assert_paths_identical(store)
        assert len(loaded) == len(records)
        # And the scan really did use the sidecar, not the fallback.
        (name,) = store._segment_names()
        scan = columns.scan_segment(
            store._segment_path(name), store.record_locations()[name]
        )
        assert scan.used_sidecar
        assert scan.corrupt == 0

    def test_record_without_analysis_block_gets_short_row(self, tmp_path, records):
        legacy = dict(records[0])
        legacy.pop("analysis")
        store = _packed(tmp_path, [legacy] + records[1:])
        (sidecar,) = _sidecars(store)
        rows = [json.loads(line) for line in
                sidecar.read_bytes().decode("utf-8").splitlines()[1:]]
        assert sorted(len(row) for row in rows)[0] == 2  # the short row
        # The short row decodes at read time; output is unchanged.
        _assert_paths_identical(store)

    def test_supersede_and_evict_resolve_identically(self, tmp_path, records):
        store = _packed(tmp_path, records)
        store.put_records([records[0]])  # supersedes: same key, new segment line
        evicted_key = records[1]["key"]
        assert store.evict([evicted_key]) == 1
        loaded = _assert_paths_identical(store)
        assert len(loaded) == len(records) - 1
        assert evicted_key[:16] not in {r.key for r in loaded}


class TestFallback:
    @pytest.mark.parametrize(
        "corruption",
        ["missing", "truncated", "garbage", "stale_header", "appended"],
    )
    def test_damaged_sidecar_falls_back_bit_identically(
        self, tmp_path, records, corruption
    ):
        store = _packed(tmp_path, records)
        reference = records_from_store(store, columns=False)
        (sidecar,) = _sidecars(store)
        raw = sidecar.read_bytes()
        if corruption == "missing":
            sidecar.unlink()
        elif corruption == "truncated":
            sidecar.write_bytes(raw[: len(raw) // 2])
        elif corruption == "garbage":
            sidecar.write_bytes(b"not json at all\n" + raw)
        elif corruption == "stale_header":
            sidecar.write_bytes(raw.replace(b'"format":1', b'"format":99', 1))
        else:  # rows no longer tile the segment: extra trailing row
            sidecar.write_bytes(raw + b"[999999,10]\n")
        assert records_from_store(store) == reference
        (name,) = store._segment_names()
        scan = columns.scan_segment(
            store._segment_path(name), store.record_locations()[name]
        )
        assert not scan.used_sidecar

    def test_segment_grown_past_sidecar_is_stale(self, tmp_path, records):
        """Sidecar rows must cover the segment bytes exactly (contiguity rule)."""
        store = _packed(tmp_path, records[:2])
        (name,) = store._segment_names()
        segment = store._segment_path(name)
        assert columns.read_segment_sidecar(segment) is not None
        with open(segment, "ab") as handle:
            handle.write(b'{"not": "indexed"}\n')
        assert columns.read_segment_sidecar(segment) is None
        # The index never points into the appended junk, so output holds.
        _assert_paths_identical(store)

    def test_tampered_row_values_are_ignored(self, tmp_path, records):
        """A well-formed but wrong-typed row decays to decode, not bad data."""
        store = _packed(tmp_path, records)
        reference = records_from_store(store, columns=False)
        (sidecar,) = _sidecars(store)
        lines = sidecar.read_bytes().decode("utf-8").splitlines()
        row = json.loads(lines[1])
        row[2 + columns.ANALYSIS_COLUMNS.index("channels")] = "128"  # str, not int
        lines[1] = json.dumps(row, separators=(",", ":"))
        sidecar.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert records_from_store(store) == reference


class TestReindexAndCompact:
    def test_reindex_columns_rebuilds_deleted_sidecars(self, tmp_path, records):
        store = _packed(tmp_path, records)
        reference = records_from_store(store)
        for sidecar in _sidecars(store):
            sidecar.unlink()
        assert store.reindex_columns() == len(records)
        assert _sidecars(store)
        (name,) = store._segment_names()
        scan = columns.scan_segment(
            store._segment_path(name), store.record_locations()[name]
        )
        assert scan.used_sidecar
        assert records_from_store(store) == reference

    def test_reindex_columns_upgrades_short_rows(self, tmp_path, records):
        legacy = dict(records[0])
        legacy.pop("analysis")
        store = _packed(tmp_path, [legacy])
        (sidecar,) = _sidecars(store)
        (short,) = [json.loads(line) for line in
                    sidecar.read_bytes().decode("utf-8").splitlines()[1:]]
        assert len(short) == 2
        store.reindex_columns()
        (full,) = [json.loads(line) for line in
                   sidecar.read_bytes().decode("utf-8").splitlines()[1:]]
        assert len(full) == 2 + len(columns.ANALYSIS_COLUMNS)
        _assert_paths_identical(store)

    def test_compact_drops_old_sidecars_and_stays_identical(self, tmp_path, records):
        store = _packed(tmp_path, records)
        store.put_records([records[0]])  # dead bytes to reclaim
        store.evict([records[1]["key"]])
        reference = records_from_store(store)
        old_sidecars = set(_sidecars(store))
        stats = store.compact()
        assert stats.bytes_reclaimed > 0
        assert not (old_sidecars & set(_sidecars(store)))
        assert _sidecars(store)  # the compacted segment got a fresh sidecar
        assert records_from_store(store) == reference
        _assert_paths_identical(store)

    def test_migrated_store_has_sidecars_and_parity(self, tmp_path, records):
        legacy_dir = tmp_path / "legacy"
        legacy = ResultStore(legacy_dir)
        legacy.put_records(records)
        reference = records_from_store(legacy, columns=False)
        report = migrate_store(legacy_dir)
        assert report.migrated == len(records)
        packed = open_store(legacy_dir)
        assert isinstance(packed, PackedResultStore)
        assert _sidecars(packed)
        assert records_from_store(packed) == reference
        _assert_paths_identical(packed)


class TestDirectoryBackend:
    def test_reindex_builds_snapshot_used_by_analysis(self, tmp_path, records):
        store = ResultStore(tmp_path / "plain")
        store.put_records(records)
        assert columns.read_dir_sidecar(store) is None  # no snapshot yet
        reference = records_from_store(store, columns=False)
        assert store.reindex_columns() == len(records)
        rows = columns.read_dir_sidecar(store)
        assert rows is not None and len(rows) == len(records)
        assert records_from_store(store) == reference

    def test_any_file_change_invalidates_snapshot(self, tmp_path, records):
        store = ResultStore(tmp_path / "plain")
        store.put_records(records[:3])
        store.reindex_columns()
        assert columns.read_dir_sidecar(store) is not None
        store.put_records([records[3]])  # snapshot no longer matches the glob
        assert columns.read_dir_sidecar(store) is None
        loaded = records_from_store(store)  # falls back, sees all 4
        assert loaded == records_from_store(store, columns=False)
        assert len(loaded) == 4


class TestParallelScan:
    def _two_segment_store(self, tmp_path, records):
        root = tmp_path / "packed"
        first = PackedResultStore(root)
        first.put_records(records[:2])
        first.close()
        second = PackedResultStore(root)  # fresh writer: new segment file
        second.put_records(records[2:])
        return second

    def test_parallel_equals_serial_equals_decode(self, tmp_path, records):
        store = self._two_segment_store(tmp_path, records)
        assert len(store._segment_names()) == 2
        serial = records_from_store(store)
        parallel = records_from_store(store, workers=2)
        decoded = records_from_store(store, columns=False)
        assert parallel == serial == decoded
        assert records_table(parallel).render() == records_table(decoded).render()

    def test_progress_lines_name_each_segment(self, tmp_path, records):
        store = self._two_segment_store(tmp_path, records)
        lines = []
        records_from_store(store, progress=lines.append)
        assert len(lines) == 2
        assert all("[columns]" in line for line in lines)
        assert {line.split()[1].rstrip(":") for line in lines} == {
            name for name in store._segment_names()
        }


class TestLowerBoundPersistence:
    def test_make_record_embeds_analysis_block(self, solved, records):
        block = records[0]["analysis"]
        assert set(block) == {
            "channels", "depth", "broadcast", "optimal_sites",
            "channels_per_site", "test_time_cycles", "value", "lower_bound",
        }
        has_bound, bound = record_lower_bound(records[0])
        assert has_bound
        assert bound == solved[0].lower_bound

    def test_store_scan_never_recomputes_certificate(
        self, tmp_path, records, monkeypatch
    ):
        store = _packed(tmp_path, records)
        import repro.solvers.bounds as bounds

        def _fail(*args, **kwargs):  # pragma: no cover - failure is the assert
            raise AssertionError("certificate recomputed during store scan")

        monkeypatch.setattr(bounds, "certificate", _fail)
        fast = records_from_store(store)
        slow = records_from_store(store, columns=False)
        assert fast == slow
        assert all(r.lower_bound is not None for r in fast)


class TestCli:
    def test_store_reindex_columns_both_backends(self, tmp_path, records, capsys):
        from repro.cli import main

        plain = ResultStore(tmp_path / "plain")
        plain.put_records(records)
        assert main(["store", "reindex", "--store", str(plain.root), "--columns"]) == 0
        assert f"rebuilt columnar sidecars: {len(records)} row(s)" in capsys.readouterr().out
        packed = _packed(tmp_path, records)
        assert main(["store", "reindex", "--store", str(packed.root), "--columns"]) == 0
        assert "rebuilt columnar sidecars" in capsys.readouterr().out

    def test_store_reindex_without_columns_needs_packed(self, tmp_path, records, capsys):
        from repro.cli import main

        plain = ResultStore(tmp_path / "plain")
        plain.put_records(records)
        assert main(["store", "reindex", "--store", str(plain.root)]) != 0
        assert "packed" in capsys.readouterr().err
        packed = _packed(tmp_path, records)
        assert main(["store", "reindex", "--store", str(packed.root)]) == 0
        assert f"reindexed: {len(records)} record(s)" in capsys.readouterr().out

    def test_analyze_progress_goes_to_stderr(self, tmp_path, records, capsys):
        from repro.cli import main

        store = _packed(tmp_path, records)
        assert main(["analyze", "--store", str(store.root), "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[columns]" in captured.err
        assert "[columns]" not in captured.out

    def test_analyze_is_quiet_by_default(self, tmp_path, records, capsys):
        from repro.cli import main

        store = _packed(tmp_path, records)
        assert main(["analyze", "--store", str(store.root)]) == 0
        assert capsys.readouterr().err == ""
