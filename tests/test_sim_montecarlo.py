"""Unit tests for the Monte-Carlo multi-site flow simulator."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.multisite.cost_model import TestTiming
from repro.multisite.retest import unique_throughput
from repro.multisite.throughput import throughput_per_hour
from repro.sim.montecarlo import FlowParameters, FlowResult, simulate_flow


def _params(**overrides):
    defaults = dict(
        sites=4,
        timing=TestTiming(0.5, 0.010, 1.5),
        terminals_per_site=40,
        contact_yield=1.0,
        manufacturing_yield=1.0,
        abort_on_fail=False,
        retest_contact_failures=True,
    )
    defaults.update(overrides)
    return FlowParameters(**defaults)


class TestSimulateFlow:
    def test_ideal_flow_matches_analytic_throughput(self):
        params = _params()
        result = simulate_flow(params, devices=4000, seed=7)
        analytic = throughput_per_hour(4, 0.5, 1.51)
        assert result.throughput_per_hour == pytest.approx(analytic, rel=0.01)

    def test_ideal_flow_no_retests(self):
        result = simulate_flow(_params(), devices=1000, seed=1)
        assert result.retests == 0
        assert result.unique_devices == 1000

    def test_all_unique_devices_processed(self):
        result = simulate_flow(_params(contact_yield=0.995), devices=2000, seed=3)
        assert result.unique_devices == 2000
        assert result.devices_tested >= 2000

    def test_retests_increase_with_worse_contact_yield(self):
        good = simulate_flow(_params(contact_yield=0.9999), devices=3000, seed=5)
        bad = simulate_flow(_params(contact_yield=0.995), devices=3000, seed=5)
        assert bad.retests > good.retests

    def test_unique_throughput_close_to_exact_model(self):
        params = _params(contact_yield=0.998)
        result = simulate_flow(params, devices=20_000, seed=11)
        analytic_slots = throughput_per_hour(4, 0.5, 1.51)
        analytic_unique = unique_throughput(
            analytic_slots, 0.998, 40, approximate=False
        )
        assert result.unique_throughput_per_hour == pytest.approx(analytic_unique, rel=0.05)

    def test_abort_on_fail_reduces_total_time_at_low_yield_single_site(self):
        base = simulate_flow(
            _params(sites=1, manufacturing_yield=0.5, abort_on_fail=False),
            devices=3000, seed=13,
        )
        abort = simulate_flow(
            _params(sites=1, manufacturing_yield=0.5, abort_on_fail=True),
            devices=3000, seed=13,
        )
        assert abort.total_time_s < base.total_time_s

    def test_abort_on_fail_effect_vanishes_with_many_sites(self):
        base = simulate_flow(
            _params(sites=8, manufacturing_yield=0.7, abort_on_fail=False),
            devices=4000, seed=17,
        )
        abort = simulate_flow(
            _params(sites=8, manufacturing_yield=0.7, abort_on_fail=True),
            devices=4000, seed=17,
        )
        saving = 1 - abort.total_time_s / base.total_time_s
        assert saving < 0.02

    def test_deterministic_given_seed(self):
        first = simulate_flow(_params(contact_yield=0.999), devices=1000, seed=42)
        second = simulate_flow(_params(contact_yield=0.999), devices=1000, seed=42)
        assert first == second

    def test_touchdown_count_ideal(self):
        result = simulate_flow(_params(sites=5), devices=1000, seed=1)
        assert result.touchdowns == 200

    def test_invalid_devices(self):
        with pytest.raises(ConfigurationError):
            simulate_flow(_params(), devices=0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            _params(sites=0)
        with pytest.raises(ConfigurationError):
            _params(terminals_per_site=0)
        with pytest.raises(ConfigurationError):
            _params(contact_yield=1.5)


class TestFlowResult:
    def test_zero_time_guards(self):
        result = FlowResult(touchdowns=0, devices_tested=0, unique_devices=0,
                            retests=0, total_time_s=0.0)
        assert result.throughput_per_hour == 0.0
        assert result.unique_throughput_per_hour == 0.0
