"""Concurrency stress tests: multiple processes writing one store.

Both backends claim to be safe under concurrent multi-process writers --
the directory backend through atomic ``os.replace`` renames, the packed
backend through one-segment-per-writer plus SQLite's own locking.  These
tests put that claim under real process concurrency:

* **different digests**: two processes bulk-write disjoint key ranges;
  afterwards every record must be present and readable (no lost updates);
* **same digests**: two processes race over the *same* keys; afterwards
  every key must hold one complete, valid record (no torn or interleaved
  writes), whichever writer won;
* **write/read race**: one process writes while the other continuously
  reads; readers must only ever see misses or complete records, never an
  error or a partial payload.

The writers run as real subprocesses (separate interpreters, separate
store instances), not threads, so file-system and SQLite cross-process
behaviour is actually exercised.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.store import PackedResultStore, ResultStore

#: Records each writer process writes in the stress runs.
RECORDS_PER_WRITER = 300

_WRITER_SCRIPT = textwrap.dedent(
    """
    import json, sys
    from repro.store import PackedResultStore, ResultStore

    backend, root, start, count, salt = sys.argv[1:6]
    store = (PackedResultStore if backend == "packed" else ResultStore)(root)
    for index in range(int(start), int(start) + int(count)):
        record = {
            "format": 1,
            "key": f"{index:064x}",
            "scenario": {"soc": f"soc{index % 5}", "solver": "goel05",
                         "objective": "throughput"},
            "result": {"writer": salt, "index": index, "pad": "x" * 256},
        }
        store.put_record(record)
    print("done")
    """
)

_READER_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.store import PackedResultStore, ResultStore

    backend, root, top, rounds = sys.argv[1:5]
    store = (PackedResultStore if backend == "packed" else ResultStore)(root)
    seen = 0
    for _ in range(int(rounds)):
        for index in range(int(top)):
            if store.contains_key(f"{index:064x}"):
                seen += 1
    print(seen)
    """
)


def _spawn(script: str, *args: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", script, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _run_all(processes: list[subprocess.Popen]) -> None:
    for process in processes:
        out, err = process.communicate(timeout=120)
        assert process.returncode == 0, f"writer failed:\n{err}"


@pytest.mark.parametrize("backend", ["dir", "packed"])
class TestConcurrentWriters:
    def _open(self, backend: str, root: Path):
        return (PackedResultStore if backend == "packed" else ResultStore)(root)

    def test_disjoint_keys_no_lost_updates(self, backend, tmp_path):
        root = tmp_path / "store"
        self._open(backend, root).put_record(
            {"format": 1, "key": "f" * 64, "result": {"seed": True}}
        )  # initialise the layout before the writers race
        writers = [
            _spawn(_WRITER_SCRIPT, backend, str(root),
                   str(index * RECORDS_PER_WRITER), str(RECORDS_PER_WRITER),
                   f"writer{index}")
            for index in range(2)
        ]
        _run_all(writers)
        store = self._open(backend, root)
        expected = {f"{index:064x}" for index in range(2 * RECORDS_PER_WRITER)}
        assert store.missing_keys(sorted(expected)) == ()
        # Every record is complete and parseable, not just present.
        entries = store.scan()
        assert expected <= {entry.key for entry in entries}

    def test_same_keys_one_complete_winner(self, backend, tmp_path):
        root = tmp_path / "store"
        self._open(backend, root).put_record(
            {"format": 1, "key": "f" * 64, "result": {"seed": True}}
        )
        writers = [
            _spawn(_WRITER_SCRIPT, backend, str(root), "0",
                   str(RECORDS_PER_WRITER), f"writer{index}")
            for index in range(2)
        ]
        _run_all(writers)
        store = self._open(backend, root)
        expected = {f"{index:064x}" for index in range(RECORDS_PER_WRITER)}
        assert store.missing_keys(sorted(expected)) == ()
        if backend == "dir":
            # Each record file must be one complete JSON document written
            # by exactly one of the racing writers -- torn writes would
            # fail to parse or mix the two salts.
            for index in range(RECORDS_PER_WRITER):
                record = json.loads((root / f"{index:064x}.json").read_text())
                assert record["result"]["writer"] in ("writer0", "writer1")
                assert record["result"]["index"] == index
        else:
            seen = 0
            for key, segment, offset, length in store._index_rows():
                if key == "f" * 64:
                    continue
                record = store._read_row(key, segment, offset, length)
                assert record["result"]["writer"] in ("writer0", "writer1")
                seen += 1
            assert seen == RECORDS_PER_WRITER

    def test_writer_reader_race_never_errors(self, backend, tmp_path):
        root = tmp_path / "store"
        self._open(backend, root).put_record(
            {"format": 1, "key": "f" * 64, "result": {"seed": True}}
        )
        writer = _spawn(_WRITER_SCRIPT, backend, str(root), "0",
                        str(RECORDS_PER_WRITER), "writer0")
        reader = _spawn(_READER_SCRIPT, backend, str(root),
                        str(RECORDS_PER_WRITER), "10")
        _run_all([writer, reader])
        store = self._open(backend, root)
        assert store.missing_keys(
            [f"{index:064x}" for index in range(RECORDS_PER_WRITER)]
        ) == ()


class TestCrossProcessEngineSharing:
    """Two engine processes sharing one store: second run is all store hits."""

    _ENGINE_SCRIPT = textwrap.dedent(
        """
        import sys
        from repro.api import Engine
        from repro.api.grid import SweepGrid
        from repro.api.testcell import reference_test_cell
        from repro.core.units import mega_vectors

        grid = SweepGrid(
            ["synthetic:7:4"], reference_test_cell(),
            channels=[48, 64], depths=[mega_vectors(1)],
        )
        engine = Engine(store=sys.argv[1])
        engine.run_batch(list(grid))
        info = engine.cache_info()
        print(f"{info.misses},{info.store_hits}")
        """
    )

    def test_second_process_reads_first_processes_results(self, tmp_path):
        root = tmp_path / "store"
        first = _spawn(self._ENGINE_SCRIPT, str(root))
        out, err = first.communicate(timeout=120)
        assert first.returncode == 0, err
        assert out.strip() == "2,0"
        second = _spawn(self._ENGINE_SCRIPT, str(root))
        out, err = second.communicate(timeout=120)
        assert second.returncode == 0, err
        assert out.strip() == "0,2"
