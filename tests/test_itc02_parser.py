"""Unit tests for the ITC'02 .soc parser."""

import pytest

from repro.core.exceptions import ParseError
from repro.itc02.parser import parse_soc_file, parse_soc_text

VALID = """
# demo SOC
SocName demo
FunctionalPins 40

Module 1 core_a
    Inputs 8
    Outputs 4
    Bidirs 2
    ScanChains 2 : 30 28
    Patterns 55

Module 2 ram_b memory
    Inputs 6
    Outputs 6
    Bidirs 0
    ScanChains 0
    Patterns 17
"""


class TestValidParsing:
    def test_soc_name_and_pins(self):
        soc = parse_soc_text(VALID)
        assert soc.name == "demo"
        assert soc.functional_pins == 40

    def test_module_count_and_order(self):
        soc = parse_soc_text(VALID)
        assert soc.module_names == ("core_a", "ram_b")

    def test_module_fields(self):
        module = parse_soc_text(VALID).module("core_a")
        assert module.inputs == 8
        assert module.outputs == 4
        assert module.bidirs == 2
        assert module.scan_lengths == (30, 28)
        assert module.patterns == 55

    def test_memory_flag(self):
        soc = parse_soc_text(VALID)
        assert soc.module("ram_b").is_memory
        assert not soc.module("core_a").is_memory

    def test_scanless_module(self):
        assert parse_soc_text(VALID).module("ram_b").num_scan_chains == 0

    def test_comments_and_blank_lines_ignored(self):
        text = "# hi\n\nSocName s\n# another\nModule 1 a\nInputs 1\nOutputs 1\nBidirs 0\nScanChains 0\nPatterns 1\n"
        assert parse_soc_text(text).name == "s"

    def test_keywords_case_insensitive(self):
        text = "SOCNAME s\nMODULE 1 a\ninputs 1\nOUTPUTS 1\nbidirs 0\nscanchains 1 : 9\npatterns 2\n"
        module = parse_soc_text(text).module("a")
        assert module.scan_lengths == (9,)

    def test_inline_comment_stripped(self):
        text = "SocName s # chip\nModule 1 a\nInputs 1\nOutputs 1\nBidirs 0\nScanChains 0\nPatterns 1\n"
        assert parse_soc_text(text).name == "s"

    def test_functional_pins_optional(self):
        text = "SocName s\nModule 1 a\nInputs 1\nOutputs 1\nBidirs 0\nScanChains 0\nPatterns 1\n"
        assert parse_soc_text(text).functional_pins is None


class TestParseErrors:
    def test_missing_soc_name(self):
        with pytest.raises(ParseError, match="SocName"):
            parse_soc_text("Module 1 a\nInputs 1\nOutputs 1\nBidirs 0\nScanChains 0\nPatterns 1\n")

    def test_duplicate_soc_name(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_soc_text("SocName a\nSocName b\n")

    def test_no_modules(self):
        with pytest.raises(ParseError, match="no modules"):
            parse_soc_text("SocName empty\n")

    def test_unknown_keyword(self):
        with pytest.raises(ParseError, match="unknown keyword"):
            parse_soc_text("SocName s\nBogus 3\n")

    def test_field_before_module(self):
        with pytest.raises(ParseError, match="before any Module"):
            parse_soc_text("SocName s\nInputs 3\n")

    def test_non_integer_value(self):
        with pytest.raises(ParseError, match="integer"):
            parse_soc_text("SocName s\nModule 1 a\nInputs many\n")

    def test_missing_fields_reported(self):
        with pytest.raises(ParseError, match="missing"):
            parse_soc_text("SocName s\nModule 1 a\nInputs 1\n")

    def test_scanchain_count_mismatch(self):
        text = "SocName s\nModule 1 a\nInputs 1\nOutputs 1\nBidirs 0\nScanChains 3 : 5 5\nPatterns 1\n"
        with pytest.raises(ParseError, match="scan-chain lengths"):
            parse_soc_text(text)

    def test_scanchains_zero_with_lengths_rejected(self):
        text = "SocName s\nModule 1 a\nInputs 1\nOutputs 1\nBidirs 0\nScanChains 0 : 5\nPatterns 1\n"
        with pytest.raises(ParseError):
            parse_soc_text(text)

    def test_scanchains_missing_colon(self):
        text = "SocName s\nModule 1 a\nInputs 1\nOutputs 1\nBidirs 0\nScanChains 2 5 5\nPatterns 1\n"
        with pytest.raises(ParseError, match="':'|expects"):
            parse_soc_text(text)

    def test_module_line_too_short(self):
        with pytest.raises(ParseError, match="Module expects"):
            parse_soc_text("SocName s\nModule 1\n")

    def test_unexpected_module_flag(self):
        with pytest.raises(ParseError, match="unexpected token"):
            parse_soc_text("SocName s\nModule 1 a gold\n")

    def test_zero_patterns_maps_to_parse_error(self):
        text = "SocName s\nModule 1 a\nInputs 1\nOutputs 1\nBidirs 0\nScanChains 0\nPatterns 0\n"
        with pytest.raises(ParseError):
            parse_soc_text(text)

    def test_error_carries_line_number(self):
        try:
            parse_soc_text("SocName s\nBogus 1\n", filename="x.soc")
        except ParseError as error:
            assert error.line == 2
            assert error.filename == "x.soc"
        else:  # pragma: no cover - should not happen
            pytest.fail("expected ParseError")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ParseError, match="cannot read"):
            parse_soc_file(tmp_path / "does_not_exist.soc")


class TestParseFile:
    def test_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "demo.soc"
        path.write_text(VALID, encoding="utf-8")
        soc = parse_soc_file(path)
        assert soc.name == "demo"
        assert len(soc) == 2
