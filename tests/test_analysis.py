"""Tests for the campaign analysis layer (records, summaries, Pareto).

The d695 family at 64 K vectors is the pinned workload: the analysis views
over it (record tables, group summaries, best-per-SOC, the time-vs-cost
Pareto front) must be deterministic down to the row order, whatever order
the results arrived in.
"""

import json

import pytest

from repro.analysis import (
    AnalysisRecord,
    best_per_soc,
    best_table,
    get_metric,
    group_summary,
    load_records,
    pareto_front,
    pareto_table,
    records_from_jsonl,
    records_from_results,
    records_from_store,
    records_table,
)
from repro.analysis.analyze import METRICS
from repro.api.engine import Engine
from repro.api.scenario import Scenario
from repro.api.testcell import reference_test_cell
from repro.ate.pricing import AtePricing
from repro.core.exceptions import ConfigurationError
from repro.store.result_store import ResultStore


@pytest.fixture(scope="module")
def cell():
    return reference_test_cell(channels=256, depth_m=0.0625)


@pytest.fixture(scope="module")
def results(cell):
    """The pinned d695 workload: 2 channel counts x 2 objectives."""
    scenarios = Scenario.sweep(
        "d695", cell, channels=[128, 256], objectives=["throughput", "test_time"]
    )
    return Engine().run_batch(scenarios)


@pytest.fixture(scope="module")
def records(results):
    return records_from_results(results)


class TestRecords:
    def test_one_record_per_scenario(self, records):
        assert len(records) == 4
        assert all(isinstance(record, AnalysisRecord) for record in records)

    def test_deterministic_order(self, results, records):
        # Reversed input produces the identical tuple: order is canonical.
        assert records_from_results(reversed(results)) == records

    def test_identity_axes(self, records):
        assert [(r.objective, r.channels) for r in records] == [
            ("test_time", 128),
            ("test_time", 256),
            ("throughput", 128),
            ("throughput", 256),
        ]
        assert all(r.soc == "d695" and r.solver == "goel05" for r in records)

    def test_pinned_optima(self, records):
        by_axis = {(r.objective, r.channels): r for r in records}
        assert (by_axis["throughput", 128].optimal_sites,
                by_axis["throughput", 128].channels_per_site) == (5, 24)
        assert (by_axis["throughput", 256].optimal_sites,
                by_axis["throughput", 256].channels_per_site) == (11, 22)
        assert (by_axis["test_time", 128].optimal_sites,
                by_axis["test_time", 128].channels_per_site) == (1, 128)
        assert (by_axis["test_time", 256].optimal_sites,
                by_axis["test_time", 256].channels_per_site) == (1, 256)

    def test_store_roundtrip_matches(self, results, records, tmp_path):
        store = ResultStore(tmp_path)
        for outcome in results:
            store.put(outcome.scenario, outcome.result)
        assert records_from_store(store) == records
        assert records_from_store(tmp_path) == records

    def test_jsonl_roundtrip_matches(self, results, records, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text(
            "".join(json.dumps(r.to_record(), sort_keys=True) + "\n" for r in results),
            encoding="utf-8",
        )
        assert records_from_jsonl(path) == records

    def test_load_records_merges_and_dedups(self, results, records, tmp_path):
        store = ResultStore(tmp_path / "store")
        for outcome in results:
            store.put(outcome.scenario, outcome.result)
        path = tmp_path / "sweep.jsonl"
        path.write_text(
            "".join(json.dumps(r.to_record()) + "\n" for r in results), encoding="utf-8"
        )
        merged = load_records(store=store, jsonl_paths=[path])
        assert merged == records  # same scenarios from both sources: one row each

    def test_load_records_needs_a_source(self):
        with pytest.raises(ConfigurationError, match="at least one source"):
            load_records()

    def test_malformed_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a sweep record"}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="bad.jsonl:1"):
            records_from_jsonl(path)

    def test_missing_jsonl_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            records_from_jsonl(tmp_path / "nope.jsonl")

    def test_jsonl_error_names_line_number_mid_file(self, results, tmp_path):
        """Streaming kept the ``path:line`` diagnostics intact."""
        good = json.dumps(results[0].to_record(), sort_keys=True)
        path = tmp_path / "bad.jsonl"
        path.write_text(f"{good}\n\nnot json\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="bad.jsonl:3"):
            records_from_jsonl(path)

    def test_jsonl_progress_reports_total(self, results, records, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text(
            "".join(json.dumps(r.to_record()) + "\n" for r in results), encoding="utf-8"
        )
        lines = []
        assert records_from_jsonl(path, progress=lines.append) == records
        assert lines == [f"read {len(results)} sweep row(s) from {path}"]


class TestMetrics:
    def test_unknown_metric_raises(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            get_metric("velocity")

    def test_cost_metric_prices_employed_capacity(self, records):
        record = records[0]
        expected = AtePricing().capital_cost_usd(record.employed_channels, record.depth)
        assert METRICS["cost"].extract(record) == pytest.approx(expected)

    def test_signed_respects_sense(self, records):
        record = records[0]
        assert METRICS["time"].signed(record) == METRICS["time"].extract(record)
        assert METRICS["throughput"].signed(record) == -record.value


class TestViews:
    def test_records_table_shape(self, records):
        table = records_table(records)
        assert table.num_rows == 4
        assert table.column("objective") == [
            "test_time", "test_time", "throughput", "throughput",
        ]

    def test_group_summary_by_objective(self, records):
        table = group_summary(records, "objective", "sites")
        assert table.column("objective") == ["test_time", "throughput"]
        assert table.column("records") == ["2", "2"]
        assert table.column("max") == ["1", "11"]

    def test_group_summary_rejects_unknown_column(self, records):
        with pytest.raises(ConfigurationError, match="cannot group by"):
            group_summary(records, "colour")

    def test_best_per_soc_max_throughput(self, records):
        (best,) = best_per_soc(records, "throughput")
        assert (best.objective, best.channels) == ("throughput", 256)
        assert best_table(records, "throughput").num_rows == 1

    def test_best_per_soc_min_time(self, records):
        (best,) = best_per_soc(records, "time")
        # The 256-channel test_time run has the shortest optimal test time.
        assert (best.objective, best.channels, best.optimal_sites) == (
            "test_time", 256, 1,
        )


class TestPareto:
    def test_pinned_time_cost_front(self, records):
        front = pareto_front(records, "time", "cost")
        assert [
            (r.objective, r.channels, r.optimal_sites, r.channels_per_site)
            for r in front
        ] == [
            ("test_time", 256, 1, 256),
            ("test_time", 128, 1, 128),
            ("throughput", 128, 5, 24),
        ]
        # Pinned metric values of the front, in front order.
        times = [r.test_time_cycles for r in front]
        assert times == [9634, 11139, 62248]
        costs = [round(METRICS["cost"].extract(r), 2) for r in front]
        assert costs == [128214.29, 64107.14, 60100.45]

    def test_dominated_point_excluded(self, records):
        front = pareto_front(records, "time", "cost")
        # throughput@256 (n=11, k=22) employs 242 channels -- more capital
        # than throughput@128 at the same optimal test time class; it is
        # dominated and must not appear.
        assert ("throughput", 256) not in {(r.objective, r.channels) for r in front}

    def test_front_is_input_order_independent(self, results, records):
        shuffled = records_from_results(list(reversed(results)))
        assert pareto_front(shuffled, "time", "cost") == pareto_front(
            records, "time", "cost"
        )

    def test_identical_metric_pairs_all_kept(self, records):
        # Equal metric pairs: duplicate one record under a different key.
        import dataclasses

        clone = dataclasses.replace(records[0], key="f" * 16)
        front = pareto_front(list(records) + [clone], "time", "cost")
        keys = [r.key for r in front]
        assert records[0].key in keys and clone.key in keys

    def test_same_metric_rejected(self, records):
        with pytest.raises(ConfigurationError, match="two different metrics"):
            pareto_front(records, "time", "time")

    def test_pareto_table_renders_front(self, records):
        table = pareto_table(records, "time", "cost")
        assert table.num_rows == 3
        assert table.column("time") == ["9634", "1.114e+04", "6.225e+04"]


class TestVectorisedParity:
    """The numpy aggregation paths must be bit-identical to the scalar ones.

    Every view is rendered twice -- once normally (numpy, when installed)
    and once with the module's numpy handle forced to ``None`` -- over a
    deterministic pool of varied records including duplicates and ties.
    The rendered text must match byte for byte.
    """

    @pytest.fixture(scope="class")
    def pool(self):
        import random

        rng = random.Random(20050307)
        rows = []
        for index in range(120):
            sites = rng.randint(1, 12)
            per_site = rng.choice([16, 22, 24, 32, 64])
            rows.append(
                AnalysisRecord(
                    key=f"{index:016x}",
                    soc=rng.choice(["d695", "p93791", "t512505"]),
                    solver=rng.choice(["goel05", "restart"]),
                    objective=rng.choice(["throughput", "test_time"]),
                    channels=rng.choice([128, 256, 512]),
                    depth=rng.choice([65536, 1048576]),
                    broadcast=rng.random() < 0.5,
                    optimal_sites=sites,
                    channels_per_site=per_site,
                    test_time_cycles=rng.randint(5000, 90000),
                    value=rng.uniform(100.0, 90000.0),
                    lower_bound=rng.choice([None, rng.uniform(100.0, 90000.0)]),
                )
            )
        # Exact metric ties, so argmin/pareto tie-breaking is exercised.
        rows.append(rows[0].__class__(**{**rows[0].__dict__, "key": "e" * 16}))
        return tuple(rows)

    def _scalar(self, monkeypatch):
        import repro.analysis.analyze as analyze

        monkeypatch.setattr(analyze, "_np", None)

    @pytest.mark.parametrize("metric", sorted(METRICS))
    @pytest.mark.parametrize("by", ["soc", "solver", "objective", "broadcast"])
    def test_group_summary_identical(self, pool, metric, by, monkeypatch):
        fast = group_summary(pool, by, metric).render()
        self._scalar(monkeypatch)
        assert group_summary(pool, by, metric).render() == fast

    @pytest.mark.parametrize("metric", sorted(METRICS))
    def test_best_per_soc_identical(self, pool, metric, monkeypatch):
        fast = best_per_soc(pool, metric)
        self._scalar(monkeypatch)
        assert best_per_soc(pool, metric) == fast

    @pytest.mark.parametrize(
        "axes", [("time", "cost"), ("cost", "throughput"), ("sites", "time")]
    )
    def test_pareto_front_identical(self, pool, axes, monkeypatch):
        fast = pareto_front(pool, *axes)
        self._scalar(monkeypatch)
        assert pareto_front(pool, *axes) == fast
