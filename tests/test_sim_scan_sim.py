"""Unit tests for the cycle-level scan-shift simulator."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.soc.module import make_module
from repro.sim.scan_sim import (
    simulate_architecture,
    simulate_module_at_width,
    simulate_module_test,
)
from repro.tam.assignment import design_architecture
from repro.wrapper.combine import design_wrapper, module_test_time


class TestSimulateModuleTest:
    def test_matches_analytic_formula(self):
        module = make_module("m", 6, 4, 1, [80, 60, 50], 25)
        for width in (1, 2, 3, 4, 6):
            trace = simulate_module_at_width(module, width)
            assert trace.total_cycles == module_test_time(module, width)

    def test_matches_formula_no_scan(self):
        module = make_module("comb", 32, 32, 0, [], 12)
        for width in (1, 4, 16):
            trace = simulate_module_at_width(module, width)
            assert trace.total_cycles == module_test_time(module, width)

    def test_all_patterns_applied(self):
        module = make_module("m", 2, 2, 0, [30], 7)
        trace = simulate_module_at_width(module, 1)
        assert trace.patterns_applied == 7
        assert trace.capture_cycles == 7
        assert not trace.aborted

    def test_abort_on_failing_pattern(self):
        module = make_module("m", 2, 2, 0, [30], 10)
        trace = simulate_module_at_width(module, 1, fail_at_pattern=3)
        assert trace.aborted
        assert trace.patterns_applied == 3
        full = simulate_module_at_width(module, 1)
        assert trace.total_cycles < full.total_cycles

    def test_fail_at_last_pattern_is_not_abort(self):
        module = make_module("m", 2, 2, 0, [30], 10)
        trace = simulate_module_at_width(module, 1, fail_at_pattern=10)
        assert not trace.aborted
        assert trace.total_cycles == simulate_module_at_width(module, 1).total_cycles

    def test_fail_beyond_patterns_ignored(self):
        module = make_module("m", 2, 2, 0, [30], 5)
        trace = simulate_module_at_width(module, 1, fail_at_pattern=99)
        assert not trace.aborted
        assert trace.patterns_applied == 5

    def test_invalid_fail_index(self):
        module = make_module("m", 2, 2, 0, [30], 5)
        design = design_wrapper(module, 1)
        with pytest.raises(ConfigurationError):
            simulate_module_test(design, fail_at_pattern=0)

    def test_module_name_recorded(self):
        module = make_module("xyz", 2, 2, 0, [30], 5)
        assert simulate_module_at_width(module, 1).module_name == "xyz"


class TestSimulateArchitecture:
    def test_matches_analytic_architecture_time(self, medium_soc):
        architecture = design_architecture(medium_soc, channels=64, depth=250_000)
        trace = simulate_architecture(architecture)
        assert trace.test_time_cycles == architecture.test_time_cycles

    def test_group_traces_match_fills(self, medium_soc):
        architecture = design_architecture(medium_soc, channels=64, depth=250_000)
        trace = simulate_architecture(architecture)
        for group, group_trace in zip(architecture.groups, trace.group_traces):
            assert group_trace.total_cycles == group.fill
            assert group_trace.width == group.width

    def test_total_channel_cycles(self, tiny_soc):
        architecture = design_architecture(tiny_soc, channels=16, depth=10**7)
        trace = simulate_architecture(architecture)
        expected = sum(
            2 * group.width * group.fill for group in architecture.groups
        )
        assert trace.total_channel_cycles == expected

    def test_d695_architecture_simulation(self, d695):
        from repro.core.units import kilo_vectors

        architecture = design_architecture(d695, channels=256, depth=kilo_vectors(64))
        trace = simulate_architecture(architecture)
        assert trace.test_time_cycles == architecture.test_time_cycles
        assert trace.soc_name == "d695"
