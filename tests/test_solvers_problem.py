"""Tests of the solver problem model (``repro.solvers.problem``)."""

import pytest

from repro.ate.probe_station import reference_probe_station
from repro.core.exceptions import ConfigurationError
from repro.optimize.config import OptimizationConfig
from repro.optimize.two_step import optimize_multisite
from repro.solvers.problem import TestInfraProblem, make_problem
from repro.solvers.registry import solve


class TestTestInfraProblem:
    def test_defaults_match_paper_reference(self, tiny_soc, small_ate):
        problem = TestInfraProblem(soc=tiny_soc, ate=small_ate)
        assert problem.probe_station.index_time_s == 0.5
        assert problem.config == OptimizationConfig()

    def test_is_hashable_and_comparable(self, tiny_soc, small_ate):
        first = make_problem(tiny_soc, small_ate)
        second = make_problem(tiny_soc, small_ate)
        assert first == second
        assert hash(first) == hash(second)

    def test_width_budget_is_half_the_channels(self, tiny_soc, small_ate):
        problem = TestInfraProblem(soc=tiny_soc, ate=small_ate)
        assert problem.width_budget == small_ate.channels // 2

    def test_with_config_replaces_switches(self, tiny_problem):
        broadcast = tiny_problem.with_config(OptimizationConfig(broadcast=True))
        assert broadcast.config.broadcast
        assert broadcast.soc is tiny_problem.soc

    def test_rejects_non_soc(self, small_ate):
        with pytest.raises(ConfigurationError, match="must be a Soc"):
            TestInfraProblem(soc="d695", ate=small_ate)

    def test_rejects_non_ate(self, tiny_soc):
        with pytest.raises(ConfigurationError, match="must be an AteSpec"):
            TestInfraProblem(soc=tiny_soc, ate=512)

    def test_describe_names_the_operating_point(self, tiny_problem):
        text = tiny_problem.describe()
        assert "tiny" in text
        assert "64ch" in text

    def test_make_problem_fills_defaults(self, tiny_soc, small_ate):
        problem = make_problem(tiny_soc, small_ate)
        assert problem.probe_station == reference_probe_station()
        assert problem.config == OptimizationConfig()


class TestSolverSolution:
    def test_goel05_solution_matches_legacy_entry_point(self, tiny_problem):
        solution = solve("goel05", tiny_problem)
        legacy = optimize_multisite(
            tiny_problem.soc,
            tiny_problem.ate,
            tiny_problem.probe_station,
            tiny_problem.config,
        )
        assert solution.result == legacy

    def test_solution_delegates_to_result(self, tiny_problem):
        solution = solve("goel05", tiny_problem)
        assert solution.optimal_sites == solution.result.optimal_sites
        assert solution.optimal_throughput == solution.result.optimal_throughput
        assert solution.channels_per_site == solution.result.step1.channels_per_site
        assert solution.best == solution.result.best

    def test_describe_names_solver_and_soc(self, tiny_problem):
        text = solve("goel05", tiny_problem).describe()
        assert text.startswith("goel05[tiny]")
        assert "n_opt=" in text
