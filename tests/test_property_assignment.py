"""Property-based tests for Step-1 architecture design (hypothesis).

These are the heavyweight invariants of the reproduction: for arbitrary
small SOCs and ATEs, the Step-1 architecture must cover every module exactly
once, respect the depth and channel budgets, never beat the theoretical
lower bound, and the cycle-accurate simulator must agree with the analytic
test time.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.baselines.lower_bound import channel_lower_bound
from repro.core.exceptions import InfeasibleDesignError
from repro.sim.scan_sim import simulate_architecture
from repro.soc.builder import SocBuilder
from repro.tam.assignment import design_architecture
from repro.tam.redistribution import widen_bottleneck


@st.composite
def small_socs(draw):
    """Random SOCs with 1..6 modest modules."""
    num_modules = draw(st.integers(min_value=1, max_value=6))
    builder = SocBuilder("prop_soc")
    for index in range(num_modules):
        chains = draw(
            st.lists(st.integers(min_value=1, max_value=200), min_size=0, max_size=6)
        )
        inputs = draw(st.integers(min_value=0, max_value=40))
        outputs = draw(st.integers(min_value=0, max_value=40))
        bidirs = draw(st.integers(min_value=0, max_value=8))
        patterns = draw(st.integers(min_value=1, max_value=200))
        assume(inputs + outputs + bidirs + len(chains) > 0)
        builder.add_module(f"m{index}", inputs, outputs, bidirs, chains, patterns)
    return builder.build()


ate_channels = st.sampled_from([16, 32, 64, 128])
ate_depths = st.sampled_from([20_000, 60_000, 200_000])


class TestArchitectureProperties:
    @given(soc=small_socs(), channels=ate_channels, depth=ate_depths)
    @settings(max_examples=50, deadline=None)
    def test_step1_invariants(self, soc, channels, depth):
        try:
            architecture = design_architecture(soc, channels, depth)
        except InfeasibleDesignError:
            return  # infeasible combinations are legitimate outcomes
        # Coverage: every module in exactly one group.
        assigned = [name for group in architecture.groups for name in group.module_names]
        assert sorted(assigned) == sorted(soc.module_names)
        # Budgets.
        assert architecture.ate_channels <= channels
        assert all(group.fill <= depth for group in architecture.groups)
        # Never below the theoretical lower bound.
        bound = channel_lower_bound(soc, depth, channels)
        assert architecture.ate_channels >= bound.ate_channels
        # The cycle-accurate simulation agrees with the analytic test time.
        trace = simulate_architecture(architecture)
        assert trace.test_time_cycles == architecture.test_time_cycles

    @given(soc=small_socs(), channels=ate_channels, depth=ate_depths,
           extra=st.integers(min_value=0, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_widening_never_hurts(self, soc, channels, depth, extra):
        try:
            architecture = design_architecture(soc, channels, depth)
        except InfeasibleDesignError:
            return
        widened = widen_bottleneck(architecture, extra)
        assert widened.test_time_cycles <= architecture.test_time_cycles
        assert widened.total_width == architecture.total_width + extra

    @given(soc=small_socs(), channels=ate_channels)
    @settings(max_examples=30, deadline=None)
    def test_deeper_memory_never_needs_more_channels(self, soc, channels):
        shallow_depth, deep_depth = 60_000, 240_000
        try:
            shallow = design_architecture(soc, channels, shallow_depth)
        except InfeasibleDesignError:
            return
        deep = design_architecture(soc, channels, deep_depth)
        assert deep.ate_channels <= shallow.ate_channels
