"""Unit tests for the ATE spec, probe station and pricing models."""

import pytest

from repro.ate.pricing import AtePricing
from repro.ate.probe_station import ProbeStation, reference_probe_station
from repro.ate.spec import AteSpec, reference_ate
from repro.core.exceptions import ConfigurationError
from repro.core.units import MEGA, mega_vectors


class TestAteSpec:
    def test_reference_ate_matches_paper(self):
        ate = reference_ate()
        assert ate.channels == 512
        assert ate.depth == 7 * MEGA
        assert ate.frequency_hz == 5e6

    def test_max_tam_width(self):
        assert AteSpec(channels=100, depth=10).max_tam_width == 50
        assert AteSpec(channels=101, depth=10).max_tam_width == 50

    def test_total_vector_memory(self):
        assert AteSpec(channels=4, depth=1000).total_vector_memory == 4000

    def test_cycles_to_seconds(self):
        ate = AteSpec(channels=2, depth=10, frequency_hz=1e6)
        assert ate.cycles_to_seconds(2_000_000) == pytest.approx(2.0)

    def test_fits(self):
        ate = AteSpec(channels=2, depth=1000)
        assert ate.fits(1000)
        assert not ate.fits(1001)

    def test_with_channels_and_depth(self):
        ate = reference_ate()
        assert ate.with_channels(1024).channels == 1024
        assert ate.with_depth(123).depth == 123
        # originals untouched
        assert ate.channels == 512

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            AteSpec(channels=0, depth=10)
        with pytest.raises(ConfigurationError):
            AteSpec(channels=10, depth=0)
        with pytest.raises(ConfigurationError):
            AteSpec(channels=10, depth=10, frequency_hz=0)

    def test_describe_mentions_channels(self):
        assert "512 channels" in reference_ate().describe()


class TestProbeStation:
    def test_reference_values_match_paper(self):
        probe = reference_probe_station()
        assert probe.index_time_s == pytest.approx(0.5)
        assert probe.contact_test_time_s == pytest.approx(0.010)
        assert probe.contact_yield == 1.0

    def test_site_contact_yield(self):
        probe = ProbeStation(contact_yield=0.999)
        assert probe.site_contact_yield(10) == pytest.approx(0.999 ** 10)

    def test_site_contact_yield_zero_terminals(self):
        assert ProbeStation(contact_yield=0.9).site_contact_yield(0) == 1.0

    def test_with_contact_yield(self):
        probe = reference_probe_station().with_contact_yield(0.99)
        assert probe.contact_yield == 0.99

    def test_with_index_time(self):
        assert reference_probe_station().with_index_time(0.2).index_time_s == 0.2

    def test_invalid_yield_rejected(self):
        with pytest.raises(ConfigurationError):
            ProbeStation(contact_yield=1.5)

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigurationError):
            ProbeStation(index_time_s=-1)
        with pytest.raises(ConfigurationError):
            ProbeStation(contact_test_time_s=-0.1)

    def test_negative_terminal_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ProbeStation().site_contact_yield(-1)


class TestAtePricing:
    def test_paper_default_prices(self):
        pricing = AtePricing()
        assert pricing.price_per_channel() == pytest.approx(500.0)

    def test_memory_upgrade_cost_matches_paper_example(self):
        # Doubling 7 M -> 14 M on all 512 channels costs ~USD 48,000.
        pricing = AtePricing()
        ate = reference_ate(channels=512, depth_m=7)
        cost = pricing.memory_upgrade_cost(ate, mega_vectors(14))
        assert cost == pytest.approx(48_000, rel=1e-6)

    def test_channel_upgrade_cost(self):
        pricing = AtePricing()
        assert pricing.channel_upgrade_cost(reference_ate(), 16) == pytest.approx(8_000)

    def test_channels_for_budget(self):
        pricing = AtePricing()
        assert pricing.channels_for_budget(48_000) == 96

    def test_depth_increase_for_budget(self):
        pricing = AtePricing()
        ate = reference_ate(channels=512, depth_m=7)
        increase = pricing.depth_increase_for_budget(ate, 48_000)
        assert increase == pytest.approx(7 * MEGA, rel=0.01)

    def test_invalid_prices_rejected(self):
        with pytest.raises(ConfigurationError):
            AtePricing(channel_block_size=0)
        with pytest.raises(ConfigurationError):
            AtePricing(channel_block_price_usd=-1)
        with pytest.raises(ConfigurationError):
            AtePricing(memory_upgrade_from=100, memory_upgrade_to=50)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            AtePricing().channels_for_budget(-1)

    def test_memory_downgrade_rejected(self):
        with pytest.raises(ConfigurationError):
            AtePricing().memory_upgrade_cost(reference_ate(), 10)
