"""Tests of the exhaustive and restart solver backends."""

import pytest

from repro.ate.spec import AteSpec
from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.core.units import kilo_vectors
from repro.itc02.registry import load_benchmark
from repro.solvers.exhaustive import MAX_EXHAUSTIVE_MODULES, solve_exhaustive
from repro.solvers.problem import TestInfraProblem, make_problem
from repro.solvers.registry import solve
from repro.solvers.restart import solve_with_restarts
from repro.soc.builder import SocBuilder
from repro.soc.soc import Soc


def _feasible(result, ate):
    """Assert every evaluated site point respects the ATE's limits."""
    assert result.step1.channels_per_site <= ate.channels
    for point in result.points:
        assert point.channels_per_site <= ate.channels
        assert all(group.fill <= ate.depth for group in point.architecture.groups)


class TestExhaustive:
    def test_matches_goel05_on_tiny_soc(self, tiny_problem):
        exact = solve("exhaustive", tiny_problem).result
        greedy = solve("goel05", tiny_problem).result
        assert exact.optimal_throughput >= greedy.optimal_throughput
        _feasible(exact, tiny_problem.ate)

    def test_agrees_with_goel05_on_d695_derived_instances(self, small_ate):
        # The solver-comparison experiment's oracle operating point: at
        # 200 K vectors the greedy heuristic finds the true optimum on the
        # 3- and 4-core d695 sub-SOCs (at shallower depths it can trail).
        ate = small_ate.with_depth(200_000)
        d695 = load_benchmark("d695")
        for size in (3, 4):
            sub = Soc(name=f"d695-{size}", modules=d695.modules[:size])
            problem = make_problem(sub, ate)
            exact = solve("exhaustive", problem).result
            greedy = solve("goel05", problem).result
            assert exact.optimal_throughput == pytest.approx(greedy.optimal_throughput)

    def test_is_never_worse_than_goel05(self, medium_soc, small_ate):
        problem = make_problem(medium_soc, small_ate.with_depth(kilo_vectors(128)))
        exact = solve("exhaustive", problem).result
        greedy = solve("goel05", problem).result
        assert exact.optimal_throughput >= greedy.optimal_throughput

    def test_rejects_large_module_counts(self, small_ate):
        builder = SocBuilder("too-big")
        for index in range(MAX_EXHAUSTIVE_MODULES + 1):
            builder.add_module(f"m{index}", inputs=4, outputs=4, bidirs=0,
                               scan_lengths=[50], patterns=20)
        problem = make_problem(builder.build(), small_ate)
        with pytest.raises(ConfigurationError, match="at most"):
            solve_exhaustive(problem)

    def test_infeasible_soc_raises(self, flat_soc, small_ate):
        cramped = small_ate.with_depth(100)
        with pytest.raises(InfeasibleDesignError):
            solve_exhaustive(make_problem(flat_soc, cramped))

    def test_flat_soc_single_partition(self, flat_soc, medium_ate):
        ate = medium_ate.with_depth(kilo_vectors(256))
        exact = solve("exhaustive", make_problem(flat_soc, ate)).result
        assert exact.step1.architecture.num_groups == 1
        _feasible(exact, ate)


class TestRestart:
    def test_never_worse_than_goel05(self, medium_soc, small_ate):
        ate = small_ate.with_depth(kilo_vectors(128))
        problem = make_problem(medium_soc, ate)
        greedy = solve("goel05", problem).result
        multi = solve("restart", problem).result
        assert multi.optimal_throughput >= greedy.optimal_throughput
        _feasible(multi, ate)

    def test_repeated_runs_are_bit_identical(self, medium_soc, small_ate):
        problem = make_problem(medium_soc, small_ate.with_depth(kilo_vectors(128)))
        first = solve("restart", problem).result
        second = solve("restart", problem).result
        assert first == second

    def test_zero_restarts_degenerates_to_goel05(self, medium_soc, small_ate):
        problem = make_problem(medium_soc, small_ate.with_depth(kilo_vectors(128)))
        greedy = solve("goel05", problem).result
        zero = solve_with_restarts(problem, restarts=0)
        assert zero == greedy

    def test_seed_changes_exploration_not_feasibility(self, medium_soc, small_ate):
        ate = small_ate.with_depth(kilo_vectors(128))
        problem = make_problem(medium_soc, ate)
        for seed in (1, 2, 3):
            result = solve_with_restarts(problem, restarts=4, seed=seed)
            _feasible(result, ate)

    def test_negative_restarts_rejected(self, tiny_problem):
        with pytest.raises(ConfigurationError, match="non-negative"):
            solve_with_restarts(tiny_problem, restarts=-1)

    def test_infeasible_soc_raises(self, flat_soc, small_ate):
        cramped = small_ate.with_depth(100)
        with pytest.raises(InfeasibleDesignError):
            solve_with_restarts(make_problem(flat_soc, cramped), restarts=2)

    def test_beats_goel05_somewhere_on_itc02(self):
        # The multi-start search is only interesting if the paper order is
        # not always optimal; d695 at its Table-1 operating point (256
        # channels, 88 K vectors) is such a case (also visible in the
        # solver-comparison experiment).
        ate = AteSpec(channels=256, depth=kilo_vectors(88), name="ate-table1")
        problem = make_problem(load_benchmark("d695"), ate)
        greedy = solve("goel05", problem).result
        multi = solve("restart", problem).result
        assert multi.optimal_throughput > greedy.optimal_throughput
