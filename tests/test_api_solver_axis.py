"""Tests of the solver dimension of the scenario API and the engine LRU cache."""

import pytest

from repro.api.engine import Engine
from repro.api.scenario import Scenario
from repro.api.testcell import reference_test_cell
from repro.core.exceptions import ConfigurationError
from repro.solvers.registry import DEFAULT_SOLVER


@pytest.fixture
def cell():
    return reference_test_cell(channels=64, depth_m=0.2)


class TestScenarioSolver:
    def test_default_solver_is_goel05(self, cell):
        assert Scenario(soc="d695", test_cell=cell).solver == DEFAULT_SOLVER

    def test_solver_is_part_of_the_canonical_key(self, cell):
        base = Scenario(soc="d695", test_cell=cell)
        other = base.with_solver("restart")
        assert base != other
        assert base.key != other.key

    def test_with_solver_keeps_everything_else(self, cell):
        scenario = Scenario(soc="d695", test_cell=cell).with_solver("exhaustive")
        assert scenario.solver == "exhaustive"
        assert scenario.test_cell == cell

    def test_empty_solver_rejected(self, cell):
        with pytest.raises(ConfigurationError, match="solver"):
            Scenario(soc="d695", test_cell=cell, solver="")

    def test_describe_mentions_only_non_default_solver(self, cell):
        assert "solver" not in Scenario(soc="d695", test_cell=cell).describe()
        text = Scenario(soc="d695", test_cell=cell, solver="restart").describe()
        assert "solver=restart" in text

    def test_sweep_expands_the_solver_axis(self, cell):
        grid = Scenario.sweep(
            "d695", cell, channels=[32, 64], solvers=["goel05", "restart"]
        )
        assert len(grid) == 4
        assert [s.solver for s in grid] == ["goel05", "restart"] * 2

    def test_sweep_accepts_a_single_solver_string(self, cell):
        grid = Scenario.sweep("d695", cell, solvers="restart")
        assert [s.solver for s in grid] == ["restart"]

    def test_sweep_rejects_empty_solver_axis(self, cell):
        with pytest.raises(ConfigurationError, match="solvers"):
            Scenario.sweep("d695", cell, solvers=[])


class TestEngineSolverRouting:
    def test_unknown_solver_fails_at_run_time(self, cell):
        scenario = Scenario(soc="d695", test_cell=cell, solver="annealing")
        with pytest.raises(ConfigurationError, match="unknown solver"):
            Engine().run(scenario)

    def test_solvers_get_distinct_cache_entries(self, cell):
        engine = Engine()
        first = engine.run(Scenario(soc="d695", test_cell=cell))
        second = engine.run(Scenario(soc="d695", test_cell=cell, solver="restart"))
        info = engine.cache_info()
        assert info.misses == 2
        assert info.hits == 0
        # Same operating point, default solver again: now a hit.
        engine.run(Scenario(soc="d695", test_cell=cell))
        assert engine.cache_info().hits == 1
        assert second.optimal_throughput >= first.optimal_throughput

    def test_batch_solver_duel_is_deterministic(self, cell):
        grid = Scenario.sweep("d695", cell, solvers=["goel05", "restart"])
        serial = Engine().run_batch(grid)
        parallel = Engine().run_batch(grid, workers=2)
        assert [r.result for r in serial] == [r.result for r in parallel]


class TestEngineLru:
    def test_max_entries_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="max_entries"):
            Engine(max_entries=0)

    def test_cache_info_reports_bound_and_evictions(self, cell):
        engine = Engine(max_entries=2)
        info = engine.cache_info()
        assert info.max_entries == 2
        assert info.evictions == 0
        for channels in (16, 32, 64):
            engine.run(Scenario(soc="d695", test_cell=cell.with_channels(channels)))
        info = engine.cache_info()
        assert info.size == 2
        assert info.evictions == 1
        assert info.misses == 3

    def test_least_recently_used_entry_is_evicted(self, cell):
        engine = Engine(max_entries=2)
        a = Scenario(soc="d695", test_cell=cell.with_channels(16))
        b = Scenario(soc="d695", test_cell=cell.with_channels(32))
        c = Scenario(soc="d695", test_cell=cell.with_channels(64))
        engine.run(a)
        engine.run(b)
        engine.run(a)  # refresh a: b is now the LRU entry
        engine.run(c)  # evicts b
        hits_before = engine.cache_info().hits
        engine.run(a)
        assert engine.cache_info().hits == hits_before + 1
        misses_before = engine.cache_info().misses
        engine.run(b)
        assert engine.cache_info().misses == misses_before + 1

    def test_clear_cache_resets_eviction_count(self, cell):
        engine = Engine(max_entries=1)
        engine.run(Scenario(soc="d695", test_cell=cell.with_channels(16)))
        engine.run(Scenario(soc="d695", test_cell=cell.with_channels(32)))
        assert engine.cache_info().evictions == 1
        engine.clear_cache()
        info = engine.cache_info()
        assert (info.hits, info.misses, info.size, info.evictions) == (0, 0, 0, 0)
        assert info.max_entries == 1

    def test_unbounded_engine_never_evicts(self, cell):
        engine = Engine()
        for channels in (16, 32, 64):
            engine.run(Scenario(soc="d695", test_cell=cell.with_channels(channels)))
        info = engine.cache_info()
        assert info.size == 3
        assert info.evictions == 0
        assert info.max_entries is None
