"""Unit tests for repro.soc.module."""

import pytest

from repro.core.exceptions import InvalidSocError
from repro.soc.module import Module, ScanChain, make_module


class TestScanChain:
    def test_positive_length_ok(self):
        assert ScanChain(length=10).length == 10

    def test_zero_length_rejected(self):
        with pytest.raises(InvalidSocError):
            ScanChain(length=0)

    def test_negative_length_rejected(self):
        with pytest.raises(InvalidSocError):
            ScanChain(length=-5)

    def test_name_default_empty(self):
        assert ScanChain(length=1).name == ""


class TestModuleConstruction:
    def test_make_module_builds_chains(self):
        module = make_module("m", 4, 4, 0, [10, 20, 30], 7)
        assert module.num_scan_chains == 3
        assert module.scan_lengths == (10, 20, 30)

    def test_chain_names_generated(self):
        module = make_module("core", 1, 1, 0, [5, 5], 3)
        assert module.scan_chains[0].name == "core.sc0"
        assert module.scan_chains[1].name == "core.sc1"

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidSocError):
            make_module("", 1, 1, 0, [5], 3)

    def test_negative_inputs_rejected(self):
        with pytest.raises(InvalidSocError):
            make_module("m", -1, 1, 0, [5], 3)

    def test_negative_outputs_rejected(self):
        with pytest.raises(InvalidSocError):
            make_module("m", 1, -1, 0, [5], 3)

    def test_negative_bidirs_rejected(self):
        with pytest.raises(InvalidSocError):
            make_module("m", 1, 1, -1, [5], 3)

    def test_zero_patterns_rejected(self):
        with pytest.raises(InvalidSocError):
            make_module("m", 1, 1, 0, [5], 0)

    def test_completely_empty_module_rejected(self):
        with pytest.raises(InvalidSocError):
            make_module("m", 0, 0, 0, [], 3)

    def test_module_without_scan_but_with_terminals_ok(self):
        module = make_module("comb", 32, 32, 0, [], 12)
        assert module.total_scan_flipflops == 0

    def test_scan_chains_normalised_to_tuple(self):
        module = Module(
            name="m", inputs=1, outputs=1, bidirs=0,
            scan_chains=[ScanChain(4)], patterns=2,  # type: ignore[arg-type]
        )
        assert isinstance(module.scan_chains, tuple)

    def test_module_is_hashable(self):
        module = make_module("m", 1, 1, 0, [5], 3)
        assert hash(module) == hash(module)


class TestDerivedQuantities:
    @pytest.fixture
    def module(self) -> Module:
        return make_module("m", inputs=10, outputs=6, bidirs=2,
                           scan_lengths=[100, 50, 50], patterns=20)

    def test_total_scan_flipflops(self, module):
        assert module.total_scan_flipflops == 200

    def test_scan_in_bits(self, module):
        assert module.scan_in_bits == 200 + 10 + 2

    def test_scan_out_bits(self, module):
        assert module.scan_out_bits == 200 + 6 + 2

    def test_wrapper_input_cells(self, module):
        assert module.wrapper_input_cells == 12

    def test_wrapper_output_cells(self, module):
        assert module.wrapper_output_cells == 8

    def test_test_data_volume(self, module):
        assert module.test_data_volume_bits == 20 * (212 + 208)

    def test_max_useful_width(self, module):
        # 3 scan chains + 12 input cells = 15 scan-in items (dominant side).
        assert module.max_useful_width == 15

    def test_max_useful_width_no_scan(self):
        module = make_module("comb", 3, 7, 0, [], 5)
        assert module.max_useful_width == 7

    def test_describe_mentions_name_and_kind(self, module):
        text = module.describe()
        assert "m" in text and "logic" in text

    def test_describe_memory(self):
        module = make_module("ram", 4, 4, 0, [], 10, is_memory=True)
        assert "memory" in module.describe()
