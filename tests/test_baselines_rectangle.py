"""Unit tests for the rectangle bin-packing baseline."""

import pytest

from repro.baselines.lower_bound import channel_lower_bound
from repro.baselines.rectangle import pack_rectangles
from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.core.units import kilo_vectors
from repro.soc.builder import SocBuilder
from repro.tam.assignment import design_architecture


class TestPackRectangles:
    def test_all_modules_packed_once(self, medium_soc):
        packing = pack_rectangles(medium_soc, channels=64, depth=250_000)
        packed = [name for column in packing.columns for name in column.module_names]
        assert sorted(packed) == sorted(medium_soc.module_names)

    def test_columns_respect_depth(self, medium_soc):
        packing = pack_rectangles(medium_soc, channels=64, depth=250_000)
        assert all(column.fill <= 250_000 for column in packing.columns)

    def test_channels_within_budget(self, medium_soc):
        packing = pack_rectangles(medium_soc, channels=64, depth=250_000)
        assert packing.ate_channels <= 64

    def test_never_beats_lower_bound(self, medium_soc, d695):
        for soc, channels, depth in [
            (medium_soc, 64, 250_000),
            (d695, 256, kilo_vectors(48)),
            (d695, 256, kilo_vectors(96)),
        ]:
            bound = channel_lower_bound(soc, depth, channels)
            packing = pack_rectangles(soc, channels, depth)
            assert packing.ate_channels >= bound.ate_channels

    def test_step1_usually_at_most_baseline_on_d695(self, d695):
        # Our Step 1 re-wraps modules at the group width, the baseline packs
        # rigid rectangles: over the paper's d695 depth grid our channel
        # count must never exceed the baseline's.
        for depth_k in (48, 64, 80, 96, 112, 128):
            depth = kilo_vectors(depth_k)
            ours = design_architecture(d695, 256, depth).ate_channels
            baseline = pack_rectangles(d695, 256, depth).ate_channels
            assert ours <= baseline

    def test_max_sites_arithmetic(self, d695):
        packing = pack_rectangles(d695, 256, kilo_vectors(64))
        expected_broadcast = (256 - packing.ate_channels // 2) // (packing.ate_channels // 2)
        assert packing.max_sites(256, broadcast=True) == expected_broadcast
        assert packing.max_sites(256, broadcast=False) == 256 // packing.ate_channels

    def test_test_time_is_max_column_fill(self, medium_soc):
        packing = pack_rectangles(medium_soc, channels=64, depth=250_000)
        assert packing.test_time_cycles == max(column.fill for column in packing.columns)

    def test_free_depth(self, medium_soc):
        packing = pack_rectangles(medium_soc, channels=64, depth=250_000)
        column = packing.columns[0]
        assert column.free_depth(250_000) == 250_000 - column.fill

    def test_infeasible_module_raises(self):
        soc = SocBuilder("s").add_module("huge", 0, 0, 0, [5000] * 4, 5000).build()
        with pytest.raises(InfeasibleDesignError):
            pack_rectangles(soc, channels=8, depth=1000)

    def test_budget_overflow_raises(self):
        builder = SocBuilder("s")
        for index in range(8):
            builder.add_module(f"m{index}", 0, 0, 0, [300, 300], 200)
        soc = builder.build()
        from repro.wrapper.combine import module_test_time

        tight = module_test_time(soc.modules[0], 1)
        with pytest.raises(InfeasibleDesignError):
            pack_rectangles(soc, channels=8, depth=tight)

    def test_invalid_parameters(self, tiny_soc):
        with pytest.raises(ConfigurationError):
            pack_rectangles(tiny_soc, channels=1, depth=1000)
        with pytest.raises(ConfigurationError):
            pack_rectangles(tiny_soc, channels=64, depth=0)

    def test_deterministic(self, medium_soc):
        first = pack_rectangles(medium_soc, 64, 250_000)
        second = pack_rectangles(medium_soc, 64, 250_000)
        assert first == second
