"""Unit tests for repro.core.rng."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 1000) for _ in range(20)] == [
            b.randint(0, 1000) for _ in range(20)
        ]

    def test_different_seed_different_sequence(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_spawn_is_deterministic(self):
        a = DeterministicRng(7).spawn(3)
        b = DeterministicRng(7).spawn(3)
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_spawn_independent_of_parent_draws(self):
        parent_a = DeterministicRng(7)
        parent_b = DeterministicRng(7)
        parent_b.randint(0, 100)  # extra draw must not affect the child
        assert parent_a.spawn(1).randint(0, 10**9) == parent_b.spawn(1).randint(0, 10**9)

    def test_seed_property(self):
        assert DeterministicRng(123).seed == 123


class TestDraws:
    def test_randint_in_range(self):
        rng = DeterministicRng(0)
        for _ in range(100):
            assert 3 <= rng.randint(3, 9) <= 9

    def test_uniform_in_range(self):
        rng = DeterministicRng(0)
        for _ in range(100):
            assert 1.5 <= rng.uniform(1.5, 2.5) <= 2.5

    def test_lognormal_clamped(self):
        rng = DeterministicRng(0)
        for _ in range(200):
            assert 10 <= rng.lognormal_int(100, 2.0, 10, 500) <= 500

    def test_choice_returns_member(self):
        rng = DeterministicRng(0)
        options = ["a", "b", "c"]
        for _ in range(20):
            assert rng.choice(options) in options

    def test_shuffled_preserves_elements(self):
        rng = DeterministicRng(0)
        items = list(range(30))
        assert sorted(rng.shuffled(items)) == items

    def test_shuffled_does_not_mutate_input(self):
        rng = DeterministicRng(0)
        items = [3, 1, 2]
        rng.shuffled(items)
        assert items == [3, 1, 2]

    def test_draw_counter(self):
        rng = DeterministicRng(0)
        rng.randint(0, 1)
        rng.uniform(0, 1)
        rng.choice([1, 2])
        assert rng.draws == 3


class TestValidation:
    def test_non_int_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng("seed")  # type: ignore[arg-type]

    def test_reversed_randint_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(0).randint(5, 4)

    def test_reversed_uniform_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(0).uniform(2.0, 1.0)

    def test_empty_choice_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(0).choice([])

    def test_nonpositive_median_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(0).lognormal_int(0, 1.0, 1, 10)

    def test_reversed_lognormal_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicRng(0).lognormal_int(5, 1.0, 10, 1)
