"""Tests for the figure experiments, run on reduced (fast) configurations.

The full-paper parameter sets are exercised by the benchmark harness; here
each experiment runs on a small synthetic SOC and/or a reduced sweep so the
test suite stays quick while still checking the *shape* claims the paper
makes.
"""

import pytest

from repro.ate.probe_station import reference_probe_station
from repro.ate.spec import AteSpec
from repro.core.units import kilo_vectors
from repro.experiments.figure5 import run_figure5, summarize_figure5
from repro.experiments.figure6 import run_figure6, summarize_figure6
from repro.experiments.figure7 import (
    run_figure7a,
    run_figure7b,
    summarize_figure7,
)
from repro.soc.synthetic import make_synthetic_soc


@pytest.fixture(scope="module")
def small_soc():
    """A 12-module synthetic SOC used by all figure smoke tests."""
    return make_synthetic_soc(
        "figtest", num_logic=9, num_memory=3, seed=2024, target_min_area=2_000_000
    )


@pytest.fixture(scope="module")
def small_ate():
    return AteSpec(channels=96, depth=kilo_vectors(96), frequency_hz=10e6, name="fig-ate")


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self, small_soc, small_ate):
        return run_figure5(soc=small_soc, ate=small_ate,
                           probe_station=reference_probe_station())

    def test_broadcast_reaches_more_sites(self, result):
        assert result.broadcast.max_sites >= result.no_broadcast.max_sites

    def test_optimum_not_below_step1_only(self, result):
        step1_line = result.step1_only_broadcast
        assert result.broadcast.optimal_throughput >= max(step1_line.ys) - 1e-9

    def test_series_cover_all_site_counts(self, result):
        assert len(result.throughput_broadcast.points) == result.broadcast.max_sites
        assert len(result.step1_only_broadcast.points) == result.broadcast.max_sites

    def test_step1_only_line_is_linear_in_sites(self, result):
        line = result.step1_only_broadcast
        assert line.linearity_ratio() == pytest.approx(1.0, abs=1e-6)

    def test_step2_gain_at_limit_non_negative(self, result):
        assert result.step2_gain_at_limit >= -1e-9

    def test_summary_mentions_both_modes(self, result):
        text = summarize_figure5(result)
        assert "no broadcast" in text and "broadcast" in text


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self, small_soc):
        return run_figure6(
            soc=small_soc,
            probe_station=reference_probe_station(),
            channel_sweep=(96, 144, 192),
            depth_sweep_m=(0.0625, 0.09375, 0.125),  # 64 K .. 128 K
            base_channels=96,
            base_depth_m=0.09375,
            frequency_hz=10e6,
        )

    def test_throughput_grows_with_channels(self, result):
        assert result.throughput_vs_channels.is_nondecreasing(tolerance=0.02)

    def test_throughput_grows_with_depth(self, result):
        assert result.throughput_vs_depth.is_nondecreasing(tolerance=0.02)

    def test_channel_scaling_close_to_linear(self, result):
        assert result.channel_scaling > 0.6

    def test_depth_scaling_sublinear_vs_channels(self, result):
        # The headline claim of Figure 6: memory depth scales the throughput
        # sub-linearly compared to channel count.
        assert result.depth_scaling < result.channel_scaling

    def test_summary_renders(self, result):
        assert "Figure 6" in summarize_figure6(result)


class TestFigure7a:
    @pytest.fixture(scope="class")
    def result(self, small_soc):
        return run_figure7a(
            soc=small_soc,
            probe_station=reference_probe_station(),
            contact_yields=(1.0, 0.999, 0.99),
            depth_sweep_m=(0.0625, 0.125),
            channels=96,
            frequency_hz=10e6,
        )

    def test_perfect_yield_highest_throughput(self, result):
        perfect = result.series(1.0)
        for contact_yield in result.contact_yields:
            series = result.series(contact_yield)
            for x, y in series.points:
                assert y <= perfect.y_at(x) + 1e-9

    def test_lower_yield_lower_unique_throughput(self, result):
        best = result.series(0.999)
        worst = result.series(0.99)
        for x in best.xs:
            assert worst.y_at(x) <= best.y_at(x) + 1e-9

    def test_retest_penalty_shrinks_with_depth(self, result):
        # Deeper memory -> fewer channels -> smaller relative drop.
        perfect = result.series(1.0)
        worst = result.series(0.99)
        drop_shallow = 1 - worst.ys[0] / perfect.ys[0] if perfect.ys[0] else 0
        drop_deep = 1 - worst.ys[-1] / perfect.ys[-1] if perfect.ys[-1] else 0
        assert drop_deep <= drop_shallow + 1e-9


class TestFigure7b:
    @pytest.fixture(scope="class")
    def result(self, small_soc, small_ate):
        return run_figure7b(
            soc=small_soc,
            ate=small_ate,
            probe_station=reference_probe_station(),
            manufacturing_yields=(1.0, 0.9, 0.7),
            site_sweep=(1, 2, 4, 8),
        )

    def test_test_time_increases_with_sites(self, result):
        for manufacturing_yield in result.manufacturing_yields:
            assert result.series(manufacturing_yield).is_nondecreasing()

    def test_lower_yield_shorter_expected_time(self, result):
        high = result.series(1.0)
        low = result.series(0.7)
        for x in high.xs:
            assert low.y_at(x) <= high.y_at(x) + 1e-9

    def test_abort_benefit_vanishes_by_four_sites(self, result):
        low = result.series(0.7)
        assert low.y_at(4.0) >= 0.98 * result.full_test_time_s

    def test_perfect_yield_flat_at_full_time(self, result):
        perfect = result.series(1.0)
        for _, y in perfect.points:
            assert y == pytest.approx(result.full_test_time_s)

    def test_summary_renders(self, result, small_soc):
        figure7a = run_figure7a(
            soc=small_soc,
            probe_station=reference_probe_station(),
            contact_yields=(1.0, 0.99),
            depth_sweep_m=(0.0625,),
            channels=96,
            frequency_hz=10e6,
        )
        assert "Figure 7" in summarize_figure7(figure7a, result)
