"""Property-based tests for the Section-4 cost model (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.multisite.abort_on_fail import abort_on_fail_test_time
from repro.multisite.cost_model import (
    TestTiming,
    contact_pass_probability,
    manufacturing_pass_probability,
)
from repro.multisite.retest import contact_fail_rate, unique_throughput
from repro.multisite.throughput import throughput_per_hour

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
yields = st.floats(min_value=0.5, max_value=1.0, allow_nan=False)
terminal_counts = st.integers(min_value=1, max_value=512)
site_counts = st.integers(min_value=1, max_value=64)
times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestProbabilityProperties:
    @given(contact_yield=probabilities, terminals=terminal_counts, sites=site_counts)
    def test_contact_pass_is_probability(self, contact_yield, terminals, sites):
        value = contact_pass_probability(contact_yield, terminals, sites)
        assert 0.0 <= value <= 1.0

    @given(contact_yield=probabilities, terminals=terminal_counts, sites=site_counts)
    def test_contact_pass_monotone_in_sites(self, contact_yield, terminals, sites):
        assert contact_pass_probability(contact_yield, terminals, sites + 1) >= (
            contact_pass_probability(contact_yield, terminals, sites) - 1e-12
        )

    @given(manufacturing_yield=probabilities, sites=site_counts)
    def test_manufacturing_pass_monotone_in_sites(self, manufacturing_yield, sites):
        assert manufacturing_pass_probability(manufacturing_yield, sites + 1) >= (
            manufacturing_pass_probability(manufacturing_yield, sites) - 1e-12
        )

    @given(contact_yield=yields, terminals=terminal_counts)
    def test_exact_fail_rate_never_exceeds_linearised(self, contact_yield, terminals):
        exact = contact_fail_rate(contact_yield, terminals, approximate=False)
        approx = contact_fail_rate(contact_yield, terminals, approximate=True)
        assert exact <= approx + 1e-12


class TestTimingProperties:
    @given(index=times, contact=times, manufacturing=times,
           contact_yield=yields, manufacturing_yield=probabilities,
           terminals=terminal_counts, sites=site_counts)
    @settings(max_examples=200)
    def test_abort_on_fail_is_a_lower_bound(self, index, contact, manufacturing,
                                            contact_yield, manufacturing_yield,
                                            terminals, sites):
        timing = TestTiming(index, contact, manufacturing)
        reduced = abort_on_fail_test_time(
            timing, contact_yield, manufacturing_yield, terminals, sites
        )
        assert 0.0 <= reduced <= timing.test_time_s + 1e-12

    @given(index=times, contact=times, manufacturing=times,
           manufacturing_yield=yields, terminals=terminal_counts, sites=site_counts)
    @settings(max_examples=200)
    def test_abort_on_fail_monotone_in_sites(self, index, contact, manufacturing,
                                             manufacturing_yield, terminals, sites):
        timing = TestTiming(index, contact, manufacturing)
        fewer = abort_on_fail_test_time(timing, 1.0, manufacturing_yield, terminals, sites)
        more = abort_on_fail_test_time(timing, 1.0, manufacturing_yield, terminals, sites + 1)
        assert more >= fewer - 1e-12


class TestThroughputProperties:
    @given(sites=site_counts, index=st.floats(min_value=0.01, max_value=10.0),
           test=times)
    def test_throughput_positive_and_linear_in_sites(self, sites, index, test):
        single = throughput_per_hour(1, index, test)
        multi = throughput_per_hour(sites, index, test)
        assert multi > 0
        assert abs(multi - sites * single) < 1e-6 * max(1.0, multi)

    @given(throughput=st.floats(min_value=0.0, max_value=1e6),
           contact_yield=yields, terminals=terminal_counts)
    def test_unique_throughput_bounded(self, throughput, contact_yield, terminals):
        for approximate in (True, False):
            value = unique_throughput(throughput, contact_yield, terminals, approximate)
            assert 0.0 <= value <= throughput + 1e-9

    @given(throughput=st.floats(min_value=1.0, max_value=1e6),
           terminals=terminal_counts)
    def test_unique_equals_throughput_at_perfect_yield(self, throughput, terminals):
        assert unique_throughput(throughput, 1.0, terminals) == throughput
