"""Unit tests for Pareto-optimal wrapper width enumeration."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.soc.module import make_module
from repro.wrapper.combine import module_test_time
from repro.wrapper.pareto import (
    best_width_for_depth,
    min_area,
    min_test_time,
    pareto_points,
)


@pytest.fixture
def module():
    return make_module("m", 12, 8, 2, [80, 60, 60, 40], 25)


class TestParetoPoints:
    def test_first_point_is_width_one(self, module):
        assert pareto_points(module, 16)[0].width == 1

    def test_strictly_decreasing_times(self, module):
        points = pareto_points(module, 16)
        times = [point.test_time_cycles for point in points]
        assert all(earlier > later for earlier, later in zip(times, times[1:]))

    def test_strictly_increasing_widths(self, module):
        points = pareto_points(module, 16)
        widths = [point.width for point in points]
        assert all(earlier < later for earlier, later in zip(widths, widths[1:]))

    def test_times_match_combine(self, module):
        for point in pareto_points(module, 16):
            assert point.test_time_cycles == module_test_time(module, point.width)

    def test_capped_by_max_useful_width(self, module):
        points = pareto_points(module, 1000)
        assert points[-1].width <= module.max_useful_width

    def test_area_property(self, module):
        point = pareto_points(module, 16)[0]
        assert point.area == point.width * point.test_time_cycles

    def test_invalid_max_width(self, module):
        with pytest.raises(ConfigurationError):
            pareto_points(module, 0)


class TestHelpers:
    def test_min_test_time_is_last_point(self, module):
        points = pareto_points(module, 16)
        assert min_test_time(module, 16) == points[-1].test_time_cycles

    def test_min_area_not_larger_than_any_point(self, module):
        points = pareto_points(module, 16)
        assert min_area(module, 16) <= min(point.area for point in points)

    def test_best_width_for_depth_feasible(self, module):
        depth = module_test_time(module, 3)
        point = best_width_for_depth(module, depth, 16)
        assert point is not None
        assert point.test_time_cycles <= depth

    def test_best_width_for_depth_is_cheapest(self, module):
        depth = module_test_time(module, 3)
        point = best_width_for_depth(module, depth, 16)
        # No Pareto point with a smaller width fits the depth.
        for candidate in pareto_points(module, 16):
            if candidate.width < point.width:
                assert candidate.test_time_cycles > depth

    def test_best_width_for_depth_infeasible_returns_none(self, module):
        assert best_width_for_depth(module, 10, 16) is None

    def test_best_width_invalid_depth(self, module):
        with pytest.raises(ConfigurationError):
            best_width_for_depth(module, 0, 16)
