"""Unit tests for Step 2 of the optimisation (throughput-optimal site count)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.optimize.config import Objective, OptimizationConfig
from repro.optimize.step1 import run_step1
from repro.optimize.step2 import evaluate_site_count, run_step2, step1_only_throughput


@pytest.fixture
def step1(medium_soc, medium_ate, probe):
    return run_step1(medium_soc, medium_ate, probe, OptimizationConfig(broadcast=False))


class TestEvaluateSiteCount:
    def test_channels_within_budget(self, step1):
        for sites in range(1, step1.max_sites + 1):
            point = evaluate_site_count(step1, sites)
            assert point.channels_per_site * sites <= step1.ate.channels

    def test_fewer_sites_never_longer_test(self, step1):
        times = [
            evaluate_site_count(step1, sites).test_time_cycles
            for sites in range(step1.max_sites, 0, -1)
        ]
        assert all(earlier >= later for earlier, later in zip(times, times[1:]))

    def test_at_max_sites_uses_step1_architecture(self, step1):
        point = evaluate_site_count(step1, step1.max_sites)
        assert point.channels_per_site >= step1.channels_per_site

    def test_scenario_consistent(self, step1):
        point = evaluate_site_count(step1, 2)
        assert point.scenario.sites == 2
        assert point.scenario.channels_per_site == point.channels_per_site

    def test_invalid_site_count(self, step1):
        with pytest.raises(ConfigurationError):
            evaluate_site_count(step1, 0)
        with pytest.raises(ConfigurationError):
            evaluate_site_count(step1, step1.max_sites + 1)


class TestRunStep2:
    def test_evaluates_every_site_count(self, step1):
        result = run_step2(step1)
        assert len(result.points) == step1.max_sites
        assert {point.sites for point in result.points} == set(range(1, step1.max_sites + 1))

    def test_best_is_maximum(self, step1):
        result = run_step2(step1)
        assert result.best.throughput == max(point.throughput for point in result.points)

    def test_best_at_least_step1_throughput(self, step1):
        result = run_step2(step1)
        assert result.optimal_throughput >= step1_only_throughput(step1, step1.max_sites) - 1e-9

    def test_points_ordered_descending_sites(self, step1):
        result = run_step2(step1)
        sites = [point.sites for point in result.points]
        assert sites == sorted(sites, reverse=True)

    def test_point_at_lookup(self, step1):
        result = run_step2(step1)
        assert result.point_at(1).sites == 1
        with pytest.raises(KeyError):
            result.point_at(step1.max_sites + 5)

    def test_max_sites_property(self, step1):
        assert run_step2(step1).max_sites == step1.max_sites

    def test_site_limit_respected(self, medium_soc, medium_ate, probe):
        config = OptimizationConfig(max_sites=2)
        limited = run_step2(run_step1(medium_soc, medium_ate, probe, config))
        assert all(point.sites <= 2 for point in limited.points)

    def test_min_sites_respected(self, medium_soc, medium_ate, probe):
        config = OptimizationConfig(min_sites=2)
        result = run_step2(run_step1(medium_soc, medium_ate, probe, config))
        assert all(point.sites >= 2 for point in result.points)

    def test_empty_range_rejected(self, medium_soc, medium_ate, probe):
        step1 = run_step1(medium_soc, medium_ate, probe, OptimizationConfig())
        constrained = run_step1(
            medium_soc, medium_ate, probe,
            OptimizationConfig(min_sites=step1.max_sites + 1),
        )
        with pytest.raises(ConfigurationError):
            run_step2(constrained)

    def test_unique_objective_accounts_for_retest(self, medium_soc, medium_ate, lossy_probe):
        throughput_cfg = OptimizationConfig(objective=Objective.THROUGHPUT)
        unique_cfg = OptimizationConfig(objective=Objective.UNIQUE_THROUGHPUT)
        plain = run_step2(run_step1(medium_soc, medium_ate, lossy_probe, throughput_cfg))
        unique = run_step2(run_step1(medium_soc, medium_ate, lossy_probe, unique_cfg))
        matched = plain.point_at(unique.optimal_sites)
        assert unique.optimal_throughput <= matched.throughput

    def test_gain_over_step1_non_negative(self, step1):
        result = run_step2(step1)
        assert result.gain_over_step1() >= -1e-9

    def test_gain_over_step1_with_limit(self, step1):
        result = run_step2(step1)
        limit = max(1, step1.max_sites // 2)
        assert result.gain_over_step1(site_limit=limit) >= -1e-9


class TestStep1OnlyThroughput:
    def test_step2_at_max_sites_at_least_step1_only(self, step1):
        result = run_step2(step1)
        value = step1_only_throughput(step1, step1.max_sites)
        # At n_max, Step 2 can only match or improve on the Step-1 design
        # (it may still widen when the leftover channel budget allows it).
        assert result.point_at(step1.max_sites).throughput >= value - 1e-9

    def test_scales_with_sites(self, step1):
        assert step1_only_throughput(step1, 2) == pytest.approx(
            2 * step1_only_throughput(step1, 1)
        )

    def test_invalid_sites(self, step1):
        with pytest.raises(ConfigurationError):
            step1_only_throughput(step1, 0)
