"""Unit tests for the name-addressable SOC catalog."""

import pytest

from repro.api import Scenario, resolve_soc
from repro.core.exceptions import ConfigurationError
from repro.itc02.registry import load_benchmark
from repro.soc import catalog
from repro.soc.catalog import (
    SYNTHETIC_PATTERN,
    catalog_names,
    list_catalog,
    parse_synthetic_spec,
    register_catalog_soc,
    resolve_catalog_soc,
    synthetic_family,
    synthetic_soc_name,
)


class TestFixedEntries:
    def test_benchmarks_resolve_to_registry_objects(self):
        # Same object as the benchmark registry: resolution stays cached.
        assert resolve_catalog_soc("d695") is load_benchmark("d695")

    def test_names_case_insensitive(self):
        assert resolve_catalog_soc("D695").name == "d695"
        assert resolve_catalog_soc("PNX8550").name == "pnx8550"

    def test_catalog_names_cover_benchmarks_and_pnx8550(self):
        names = catalog_names()
        for expected in ("d695", "p22810", "p34392", "p93791", "pnx8550"):
            assert expected in names

    def test_list_catalog_has_descriptions(self):
        entries = list_catalog()
        assert [entry.name for entry in entries] == sorted(catalog_names())
        assert all(entry.description for entry in entries)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            resolve_catalog_soc("not_a_chip")


class TestSyntheticSpecs:
    def test_parse_round_trip(self):
        assert parse_synthetic_spec(synthetic_soc_name(7, 12)) == (7, 12)

    def test_parse_rejects_non_synthetic(self):
        assert parse_synthetic_spec("d695") is None

    @pytest.mark.parametrize(
        "spec",
        ["synthetic", "synthetic:7", "synthetic:7:8:9", "synthetic:x:8",
         "synthetic:7:y", "synthetic:-1:8", "synthetic:7:0"],
    )
    def test_malformed_specs_fail_loudly(self, spec):
        with pytest.raises(ConfigurationError):
            resolve_catalog_soc(spec)

    def test_resolves_deterministically(self):
        first = resolve_catalog_soc("synthetic:7:8")
        again = resolve_catalog_soc("SYNTHETIC:7:8")
        assert first is again  # cached, case-insensitive
        assert first.name == "synthetic:7:8"
        assert len(first.modules) == 8

    def test_module_split_has_memories(self):
        soc = resolve_catalog_soc("synthetic:3:12")
        memories = [module for module in soc.modules if module.is_memory]
        assert len(soc.modules) == 12
        assert len(memories) == 3  # one quarter, rounded down

    def test_distinct_seeds_distinct_socs(self):
        assert resolve_catalog_soc("synthetic:1:6") != resolve_catalog_soc("synthetic:2:6")

    def test_family_names(self):
        family = synthetic_family(10, count=4, modules=6)
        assert family == (
            "synthetic:10:6", "synthetic:11:6", "synthetic:12:6", "synthetic:13:6"
        )
        assert SYNTHETIC_PATTERN.startswith("synthetic:")

    def test_family_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            synthetic_family(10, count=0, modules=6)


class TestRegistration:
    def test_register_and_resolve(self, tiny_soc):
        try:
            @register_catalog_soc("tiny-registered", description="test chip")
            def _load() -> object:
                return tiny_soc

            assert resolve_catalog_soc("tiny-registered") is tiny_soc
            assert "tiny-registered" in catalog_names()
        finally:
            catalog._EXTRA.pop("tiny-registered", None)

    def test_duplicate_registration_rejected(self, tiny_soc):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_catalog_soc("d695", description="dup")(lambda: tiny_soc)

    def test_synthetic_prefix_reserved(self, tiny_soc):
        with pytest.raises(ConfigurationError, match="reserved"):
            register_catalog_soc("synthetic:99:1", description="clash")(lambda: tiny_soc)


class TestScenarioIntegration:
    def test_resolve_soc_delegates_to_catalog(self):
        assert resolve_soc("synthetic:7:8").name == "synthetic:7:8"

    def test_scenario_by_synthetic_name_equals_by_object(self):
        from repro.api import reference_test_cell

        cell = reference_test_cell(channels=128, depth_m=1.0)
        by_name = Scenario(soc="synthetic:7:8", test_cell=cell)
        by_object = Scenario(soc=resolve_catalog_soc("synthetic:7:8"), test_cell=cell)
        assert by_name == by_object
        assert by_name.digest == by_object.digest
