"""Unit tests for repro.core.units."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.units import (
    KILO,
    MEGA,
    cycles_to_seconds,
    format_depth,
    format_si,
    kilo_vectors,
    mega_vectors,
    seconds_to_cycles,
)


class TestVectorUnits:
    def test_kilo_is_1024(self):
        assert KILO == 1024

    def test_mega_is_1024_squared(self):
        assert MEGA == 1024 * 1024

    def test_kilo_vectors(self):
        assert kilo_vectors(48) == 48 * 1024

    def test_kilo_vectors_fractional(self):
        assert kilo_vectors(0.5) == 512

    def test_mega_vectors(self):
        assert mega_vectors(7) == 7 * 1024 * 1024

    def test_mega_vectors_zero(self):
        assert mega_vectors(0) == 0

    def test_negative_kilo_rejected(self):
        with pytest.raises(ConfigurationError):
            kilo_vectors(-1)

    def test_negative_mega_rejected(self):
        with pytest.raises(ConfigurationError):
            mega_vectors(-0.1)


class TestTimeConversion:
    def test_cycles_to_seconds(self):
        assert cycles_to_seconds(5_000_000, 5e6) == pytest.approx(1.0)

    def test_cycles_to_seconds_zero_cycles(self):
        assert cycles_to_seconds(0, 1e6) == 0.0

    def test_seconds_to_cycles_rounds_up(self):
        assert seconds_to_cycles(1.0000001, 1e6) == 1_000_001

    def test_roundtrip(self):
        cycles = 123_456
        seconds = cycles_to_seconds(cycles, 5e6)
        assert seconds_to_cycles(seconds, 5e6) == cycles

    def test_zero_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            cycles_to_seconds(100, 0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            cycles_to_seconds(-1, 1e6)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ConfigurationError):
            seconds_to_cycles(-0.1, 1e6)


class TestFormatting:
    def test_format_depth_mega(self):
        assert format_depth(7 * MEGA) == "7M"

    def test_format_depth_kilo(self):
        assert format_depth(48 * KILO) == "48K"

    def test_format_depth_plain(self):
        assert format_depth(1000) == "1000"

    def test_format_depth_zero(self):
        assert format_depth(0) == "0"

    def test_format_depth_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            format_depth(-1)

    def test_format_si_kilo(self):
        assert format_si(12_500) == "12.5k"

    def test_format_si_mega(self):
        assert format_si(3_000_000).endswith("M")

    def test_format_si_small(self):
        assert format_si(7.0) == "7.0"

    def test_format_si_negative(self):
        assert format_si(-2000).startswith("-")
