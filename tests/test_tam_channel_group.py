"""Unit tests for repro.tam.channel_group."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.soc.module import make_module
from repro.tam.channel_group import ChannelGroup
from repro.wrapper.combine import module_test_time


@pytest.fixture
def modules():
    return (
        make_module("a", 4, 4, 0, [60, 40], 20),
        make_module("b", 8, 2, 0, [30, 30, 30], 15),
    )


class TestChannelGroup:
    def test_fill_is_sum_of_module_times(self, modules):
        group = ChannelGroup(index=0, width=2, modules=modules)
        expected = module_test_time(modules[0], 2) + module_test_time(modules[1], 2)
        assert group.fill == expected

    def test_ate_channels_is_twice_width(self, modules):
        assert ChannelGroup(0, 3, modules).ate_channels == 6

    def test_fill_at_other_width(self, modules):
        group = ChannelGroup(0, 1, modules)
        expected = module_test_time(modules[0], 4) + module_test_time(modules[1], 4)
        assert group.fill_at_width(4) == expected

    def test_fill_with_additional_module(self, modules):
        extra = make_module("c", 2, 2, 0, [10], 5)
        group = ChannelGroup(0, 2, modules)
        assert group.fill_with(extra) == group.fill + module_test_time(extra, 2)

    def test_fill_with_at_new_width(self, modules):
        extra = make_module("c", 2, 2, 0, [10], 5)
        group = ChannelGroup(0, 2, modules)
        expected = group.fill_at_width(3) + module_test_time(extra, 3)
        assert group.fill_with(extra, width=3) == expected

    def test_free_depth(self, modules):
        group = ChannelGroup(0, 2, modules)
        assert group.free_depth(group.fill + 100) == 100
        assert group.free_depth(group.fill) == 0
        assert group.free_depth(group.fill - 50) == 0

    def test_free_memory_counts_both_directions(self, modules):
        group = ChannelGroup(0, 2, modules)
        depth = group.fill + 10
        assert group.free_memory(depth) == 10 * 4

    def test_with_module_appends(self, modules):
        extra = make_module("c", 2, 2, 0, [10], 5)
        group = ChannelGroup(0, 2, modules).with_module(extra)
        assert group.module_names == ("a", "b", "c")

    def test_with_width_keeps_modules(self, modules):
        group = ChannelGroup(0, 2, modules).with_width(5)
        assert group.width == 5
        assert group.module_names == ("a", "b")

    def test_widening_does_not_increase_fill(self, modules):
        narrow = ChannelGroup(0, 1, modules)
        wide = narrow.with_width(4)
        assert wide.fill <= narrow.fill

    def test_zero_width_rejected(self, modules):
        with pytest.raises(ConfigurationError):
            ChannelGroup(0, 0, modules)

    def test_negative_depth_rejected(self, modules):
        with pytest.raises(ConfigurationError):
            ChannelGroup(0, 1, modules).free_depth(-1)

    def test_invalid_fill_width_rejected(self, modules):
        with pytest.raises(ConfigurationError):
            ChannelGroup(0, 1, modules).fill_at_width(0)

    def test_describe_mentions_width_and_modules(self, modules):
        text = ChannelGroup(0, 2, modules).describe(depth=10**6)
        assert "width 2" in text and "2 modules" in text
