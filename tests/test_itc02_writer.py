"""Unit tests for the ITC'02 .soc writer (and parser round-trips)."""

import pytest

from repro.itc02.parser import parse_soc_text
from repro.itc02.writer import soc_to_text, write_soc_file


class TestWriter:
    def test_roundtrip_equals_original(self, tiny_soc):
        assert parse_soc_text(soc_to_text(tiny_soc)) == tiny_soc

    def test_roundtrip_medium(self, medium_soc):
        assert parse_soc_text(soc_to_text(medium_soc)) == medium_soc

    def test_roundtrip_d695(self, d695):
        assert parse_soc_text(soc_to_text(d695)) == d695

    def test_memory_flag_round_trips(self, medium_soc):
        rebuilt = parse_soc_text(soc_to_text(medium_soc))
        assert rebuilt.module("mem0").is_memory

    def test_header_comment_present(self, tiny_soc):
        assert soc_to_text(tiny_soc).startswith("#")

    def test_functional_pins_written(self, tiny_soc):
        assert "FunctionalPins 64" in soc_to_text(tiny_soc)

    def test_functional_pins_omitted_when_unknown(self, flat_soc):
        assert "FunctionalPins" not in soc_to_text(flat_soc)

    def test_write_soc_file(self, tmp_path, tiny_soc):
        path = write_soc_file(tiny_soc, tmp_path / "tiny.soc")
        assert path.exists()
        assert parse_soc_text(path.read_text()) == tiny_soc

    def test_scanless_module_written_as_zero(self, tiny_soc):
        assert "ScanChains 0" in soc_to_text(tiny_soc)
