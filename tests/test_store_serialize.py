"""Unit tests for the result-store JSON codec (repro.store.serialize)."""

import dataclasses
import json

import pytest

from repro.api.scenario import Scenario
from repro.api.testcell import TestCell
from repro.core.exceptions import StoreError
from repro.optimize.config import Objective, OptimizationConfig
from repro.optimize.result import TwoStepResult
from repro.optimize.two_step import optimize_multisite
from repro.store.serialize import (
    decode_result,
    encode_result,
    register_storable,
    storable_names,
)


# Module-scoped copies of the conftest SOC/ATE (those are function-scoped),
# so the optimisation below runs once for the whole module.
@pytest.fixture(scope="module")
def tiny_soc():
    from repro.soc.builder import SocBuilder

    return (
        SocBuilder("tiny", functional_pins=64)
        .add_module("alpha", inputs=8, outputs=8, bidirs=0,
                    scan_lengths=[100, 100, 90], patterns=50)
        .add_module("beta", inputs=16, outputs=4, bidirs=2,
                    scan_lengths=[200, 150], patterns=120)
        .add_module("gamma", inputs=5, outputs=7, bidirs=0,
                    scan_lengths=[], patterns=30)
        .build()
    )


@pytest.fixture(scope="module")
def small_ate():
    from repro.ate.spec import AteSpec
    from repro.core.units import kilo_vectors

    return AteSpec(channels=64, depth=kilo_vectors(32), frequency_hz=10e6, name="ate-small")


@pytest.fixture(scope="module")
def tiny_result(tiny_soc, small_ate) -> TwoStepResult:
    """A full two-step result on the tiny three-module SOC."""
    return optimize_multisite(tiny_soc, small_ate)


class TestRoundTrip:
    def test_result_round_trips_exactly(self, tiny_result):
        encoded = encode_result(tiny_result)
        rebuilt = decode_result(encoded)
        assert rebuilt == tiny_result
        assert rebuilt is not tiny_result

    def test_round_trip_survives_json_text(self, tiny_result):
        text = json.dumps(encode_result(tiny_result))
        rebuilt = decode_result(json.loads(text))
        assert rebuilt == tiny_result
        # Floats must round-trip bit-exactly through the JSON text.
        assert repr(rebuilt.optimal_throughput) == repr(tiny_result.optimal_throughput)

    def test_enum_and_config_round_trip(self, tiny_result):
        config = OptimizationConfig(objective=Objective.UNIQUE_THROUGHPUT, broadcast=True)
        rebuilt = decode_result(encode_result(config))
        assert rebuilt == config
        assert rebuilt.objective is Objective.UNIQUE_THROUGHPUT

    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "text"):
            assert decode_result(encode_result(value)) == value


class TestInterning:
    def test_shared_soc_encoded_once(self, tiny_result):
        text = json.dumps(encode_result(tiny_result))
        # The SOC appears in every architecture of every site point, but the
        # encoded record must contain it exactly once; later occurrences are
        # back-references.
        assert text.count('"__dataclass__": "Soc"') == 1
        assert text.count('"__dataclass__": "Module"') == len(tiny_result.step1.architecture.soc.modules)

    def test_back_references_restore_identity(self, tiny_result):
        rebuilt = decode_result(encode_result(tiny_result))
        socs = {id(point.architecture.soc) for point in rebuilt.points}
        assert len(socs) == 1


class TestErrors:
    def test_unregistered_type_rejected(self):
        class NotRegistered:
            pass

        with pytest.raises(StoreError):
            encode_result(NotRegistered())

    def test_unregistered_dataclass_rejected(self):
        @dataclasses.dataclass(frozen=True)
        class Rogue:
            x: int

        with pytest.raises(StoreError):
            encode_result(Rogue(x=1))

    def test_unknown_type_name_rejected_on_decode(self):
        with pytest.raises(StoreError):
            decode_result({"__dataclass__": "NoSuchClass", "__id__": 0, "fields": {}})

    def test_dangling_reference_rejected(self):
        with pytest.raises(StoreError):
            decode_result({"__ref__": 42})

    def test_malformed_node_rejected(self):
        with pytest.raises(StoreError):
            decode_result({"unexpected": 1})
        with pytest.raises(StoreError):
            decode_result([1, 2, 3])

    def test_tampered_fields_fail_validation(self, tiny_result):
        encoded = json.loads(json.dumps(encode_result(tiny_result)))
        # Corrupt the E-RPCT wrapper into a structurally invalid value; the
        # dataclass __post_init__ validation must reject it on decode.
        encoded["fields"]["step1"]["fields"]["erpct"]["fields"]["external_inputs"] = -5
        with pytest.raises(Exception):
            decode_result(encoded)

    def test_register_storable_name_collision(self):
        class TwoStepResult:  # noqa: F811 - deliberate name collision
            pass

        with pytest.raises(StoreError):
            register_storable(TwoStepResult)


class TestRegistry:
    def test_builtin_graph_registered(self):
        names = storable_names()
        for expected in ("TwoStepResult", "Step1Result", "SitePoint", "Soc",
                         "Module", "Objective", "TestArchitecture"):
            assert expected in names

    def test_register_storable_is_idempotent(self):
        from repro.optimize.result import TwoStepResult as real

        assert register_storable(real) is real


class TestScenarioDigest:
    def test_digest_prefix_is_key(self, tiny_soc, small_ate):
        scenario = Scenario(soc=tiny_soc, test_cell=TestCell(ate=small_ate))
        assert scenario.digest.startswith(scenario.key)
        assert len(scenario.digest) == 64
        assert len(scenario.key) == 16

    def test_digest_solver_aware(self, tiny_soc, small_ate):
        base = Scenario(soc=tiny_soc, test_cell=TestCell(ate=small_ate))
        assert base.digest != base.with_solver("restart").digest
