"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.itc02.writer import write_soc_file

#: A fast sweep space: two tiny synthetic catalog SOCs, two channel counts.
SWEEP_ARGS = [
    "sweep", "synthetic:7:4", "synthetic:8:4",
    "--channels", "48", "64", "--depth-m", "1",
]


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("design", "sweep", "benchmarks", "solvers", "table1",
                        "figure5", "figure6", "figure7", "economics",
                        "solver_comparison", "all"):
            assert command in text

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_design_defaults(self):
        args = build_parser().parse_args(["design", "d695"])
        assert args.channels == 512
        assert args.depth_m == 7.0
        assert not args.broadcast
        assert args.solver == "goel05"


class TestCommands:
    def test_benchmarks_command(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "d695" in out and "p93791" in out

    def test_design_command_on_benchmark(self, capsys):
        exit_code = main([
            "design", "d695", "--channels", "128", "--depth-m", "0.125",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "two-step result" in out
        assert "optimal" in out

    def test_design_command_with_broadcast_and_architecture(self, capsys):
        exit_code = main([
            "design", "d695", "--channels", "128", "--depth-m", "0.125",
            "--broadcast", "--show-architecture",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "architecture for d695" in out

    def test_design_command_on_soc_file(self, tmp_path, tiny_soc, capsys):
        path = write_soc_file(tiny_soc, tmp_path / "tiny.soc")
        exit_code = main([
            "design", str(path), "--channels", "64", "--depth-m", "0.25",
        ])
        assert exit_code == 0
        assert "tiny" in capsys.readouterr().out

    def test_design_command_infeasible_returns_error(self, capsys):
        exit_code = main([
            "design", "p93791", "--channels", "8", "--depth-m", "0.01",
        ])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_benchmark_returns_error(self, capsys):
        exit_code = main(["design", "not_a_chip", "--channels", "64"])
        assert exit_code == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_solvers_command_lists_backends(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        for name in ("goel05", "exhaustive", "restart"):
            assert name in out
        assert "[default]" in out
        assert len(out.strip().splitlines()) >= 3

    def test_solvers_command_prints_descriptions(self, capsys):
        from repro.solvers.registry import list_solvers

        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        for solver in list_solvers():
            assert solver.description
            assert solver.description in out

    def test_benchmarks_command_lists_catalog_extras(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "pnx8550" in out
        assert "synthetic:<seed>:<modules>" in out

    def test_design_command_with_solver(self, capsys):
        exit_code = main([
            "design", "d695", "--channels", "128", "--depth-m", "0.125",
            "--solver", "restart",
        ])
        assert exit_code == 0
        assert "two-step result" in capsys.readouterr().out

    def test_design_command_with_unknown_solver_errors(self, capsys):
        exit_code = main([
            "design", "d695", "--channels", "128", "--depth-m", "0.125",
            "--solver", "annealing",
        ])
        assert exit_code == 1
        assert "unknown solver" in capsys.readouterr().err

    def test_design_command_on_synthetic_catalog_soc(self, capsys):
        exit_code = main(["design", "synthetic:7:4", "--channels", "64", "--depth-m", "1"])
        assert exit_code == 0
        assert "synthetic:7:4" in capsys.readouterr().out


class TestSweepCommand:
    def _read_jsonl(self, path):
        return [json.loads(line) for line in path.read_text().splitlines()]

    def test_registered_with_grid_flags(self):
        args = build_parser().parse_args(SWEEP_ARGS + ["--shard", "1/2", "--resume"])
        assert args.command == "sweep"
        assert args.channels == [48, 64]
        assert args.shard == "1/2"
        assert args.resume

    def test_streams_jsonl_records(self, tmp_path, capsys):
        output = tmp_path / "sweep.jsonl"
        assert main(SWEEP_ARGS + ["--output", str(output)]) == 0
        records = self._read_jsonl(output)
        assert len(records) == 4
        assert {record["soc"] for record in records} == {"synthetic:7:4", "synthetic:8:4"}
        assert {record["ate_channels"] for record in records} == {48, 64}
        captured = capsys.readouterr()
        assert "sweep digest:" in captured.out
        assert "[4/4]" in captured.err  # progress lines on stderr

    def test_jsonl_to_stdout_keeps_summary_on_stderr(self, capsys):
        assert main(SWEEP_ARGS) == 0
        captured = capsys.readouterr()
        for line in captured.out.strip().splitlines():
            json.loads(line)  # stdout is pure JSONL
        assert "sweep digest:" in captured.err

    def test_shards_partition_the_grid(self, tmp_path, capsys):
        full = tmp_path / "full.jsonl"
        assert main(SWEEP_ARGS + ["--output", str(full)]) == 0
        shard_keys: list[str] = []
        for index in range(2):
            part = tmp_path / f"shard{index}.jsonl"
            assert main(
                SWEEP_ARGS + ["--shard", f"{index}/2", "--output", str(part)]
            ) == 0
            shard_keys.extend(r["scenario_key"] for r in self._read_jsonl(part))
        full_keys = [r["scenario_key"] for r in self._read_jsonl(full)]
        assert sorted(shard_keys) == sorted(full_keys)
        assert len(set(shard_keys)) == len(shard_keys)
        capsys.readouterr()

    def test_store_backed_rerun_is_all_store_hits(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        cold = tmp_path / "cold.jsonl"
        warm = tmp_path / "warm.jsonl"
        assert main(SWEEP_ARGS + ["--store", store, "--output", str(cold)]) == 0
        cold_digest = capsys.readouterr().out
        assert main(
            SWEEP_ARGS + ["--store", store, "--resume", "--output", str(warm)]
        ) == 0
        warm_out = capsys.readouterr().out
        assert "4 from store" in warm_out
        assert "resumed" in warm_out
        digest = [l for l in cold_digest.splitlines() if l.startswith("sweep digest")]
        assert digest and digest[0] in warm_out
        assert self._read_jsonl(cold) == self._read_jsonl(warm)

    def test_resume_without_store_errors(self, capsys):
        assert main(SWEEP_ARGS + ["--resume"]) == 1
        assert "--store" in capsys.readouterr().err

    def test_malformed_shard_errors(self, capsys):
        assert main(SWEEP_ARGS + ["--shard", "nope"]) == 1
        assert "shard" in capsys.readouterr().err

    def test_out_of_range_shard_errors(self, capsys):
        assert main(SWEEP_ARGS + ["--shard", "2/2"]) == 1
        assert "shard index" in capsys.readouterr().err

    def test_unknown_catalog_soc_errors(self, capsys):
        assert main(["sweep", "not_a_chip", "--channels", "64"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_ten_catalog_socs_shard_into_disjoint_complete_partition(
        self, tmp_path, capsys
    ):
        # The acceptance campaign: an ITC'02 benchmark plus a 9-member
        # synthetic family -- 10 catalog SOCs by name -- swept through the
        # CLI in 3 shards that partition the grid exactly.
        from repro.soc.catalog import synthetic_family

        socs = ["d695", *synthetic_family(60, count=9, modules=4)]
        args = ["sweep", *socs, "--channels", "64", "--depth-m", "1"]
        full = tmp_path / "full.jsonl"
        assert main(args + ["--output", str(full)]) == 0
        shard_keys: list[str] = []
        for index in range(3):
            part = tmp_path / f"shard{index}.jsonl"
            assert main(args + ["--shard", f"{index}/3", "--output", str(part)]) == 0
            shard_keys.extend(r["scenario_key"] for r in self._read_jsonl(part))
        full_records = self._read_jsonl(full)
        assert len(full_records) == 10
        assert {r["soc"] for r in full_records} == set(socs)
        full_keys = [r["scenario_key"] for r in full_records]
        assert len(shard_keys) == len(set(shard_keys)) == 10  # disjoint
        assert sorted(shard_keys) == sorted(full_keys)        # complete
        capsys.readouterr()


class TestObjectivesCommand:
    def test_lists_registered_objectives(self, capsys):
        assert main(["objectives"]) == 0
        out = capsys.readouterr().out
        for name in ("throughput", "test_time", "cost_per_good_die", "channel_budget"):
            assert name in out
        assert "[default]" in out

    def test_design_with_objective(self, capsys):
        exit_code = main([
            "design", "d695", "--channels", "256", "--depth-m", "0.0625",
            "--objective", "test_time",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "optimized: test_time (minimised)" in out
        # The minimised objective spends the whole budget on one wide site.
        assert "n_opt=1" in out

    def test_design_with_unknown_objective_errors(self, capsys):
        assert main(["design", "d695", "--objective", "velocity"]) == 1
        assert "unknown objective" in capsys.readouterr().err

    def test_sweep_objective_axis(self, tmp_path, capsys):
        output = tmp_path / "sweep.jsonl"
        exit_code = main([
            "sweep", "synthetic:7:4", "--channels", "48", "--depth-m", "1",
            "--objective", "throughput", "test_time", "--output", str(output),
        ])
        assert exit_code == 0
        records = [json.loads(line) for line in output.read_text().splitlines()]
        assert sorted(r["objective_name"] for r in records) == [
            "test_time", "throughput",
        ]


class TestStoreInfoCommand:
    def test_requires_store_flag(self, capsys):
        assert main(["store", "info"]) == 1
        assert "--store" in capsys.readouterr().err

    def test_reports_counts_and_bytes(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(SWEEP_ARGS + ["--store", str(store_dir), "--output",
                                  str(tmp_path / "out.jsonl")]) == 0
        capsys.readouterr()
        assert main(["store", "info", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "records: 4" in out
        assert "format: 1" in out
        assert "by SOC: synthetic:7:4=2, synthetic:8:4=2" in out
        assert "by solver: goel05=4" in out
        assert "by objective: throughput=4" in out
        bytes_line = next(line for line in out.splitlines() if line.startswith("bytes:"))
        assert int(bytes_line.split()[1]) > 0

    def test_empty_store_reports_zero(self, tmp_path, capsys):
        assert main(["store", "info", "--store", str(tmp_path / "fresh")]) == 0
        out = capsys.readouterr().out
        assert "records: 0" in out
        assert "bytes: 0" in out


class TestAnalyzeCommand:
    @pytest.fixture()
    def sweep_artifacts(self, tmp_path, capsys):
        """A store + JSONL pair produced by one small sweep."""
        store_dir = tmp_path / "store"
        output = tmp_path / "sweep.jsonl"
        assert main(SWEEP_ARGS + ["--store", str(store_dir), "--output", str(output)]) == 0
        capsys.readouterr()
        return store_dir, output

    def test_records_table_from_jsonl(self, sweep_artifacts, capsys):
        _, output = sweep_artifacts
        assert main(["analyze", str(output)]) == 0
        out = capsys.readouterr().out
        assert "Campaign records" in out
        assert "4 records analysed" in out

    def test_records_table_from_store(self, sweep_artifacts, capsys):
        store_dir, _ = sweep_artifacts
        assert main(["analyze", "--store", str(store_dir)]) == 0
        assert "4 records analysed" in capsys.readouterr().out

    def test_store_and_jsonl_dedupe(self, sweep_artifacts, capsys):
        store_dir, output = sweep_artifacts
        assert main(["analyze", "--store", str(store_dir), str(output)]) == 0
        assert "4 records analysed" in capsys.readouterr().out

    def test_group_by_and_best(self, sweep_artifacts, capsys):
        _, output = sweep_artifacts
        assert main([
            "analyze", str(output), "--group-by", "soc", "--best",
            "--metric", "throughput",
        ]) == 0
        out = capsys.readouterr().out
        assert "by soc" in out
        assert "Best per SOC" in out

    def test_pareto_view(self, sweep_artifacts, capsys):
        _, output = sweep_artifacts
        assert main(["analyze", str(output), "--pareto", "time,cost"]) == 0
        out = capsys.readouterr().out
        assert "Pareto front: time (min) vs cost (min)" in out

    def test_pareto_output_is_deterministic(self, sweep_artifacts, capsys):
        _, output = sweep_artifacts
        assert main(["analyze", str(output), "--pareto", "time,cost"]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", str(output), "--pareto", "time,cost"]) == 0
        assert capsys.readouterr().out == first

    def test_malformed_pareto_spec_errors(self, sweep_artifacts, capsys):
        _, output = sweep_artifacts
        assert main(["analyze", str(output), "--pareto", "time"]) == 1
        assert "malformed pareto spec" in capsys.readouterr().err

    def test_no_sources_errors(self, capsys):
        assert main(["analyze"]) == 1
        assert "at least one source" in capsys.readouterr().err

    def test_empty_store_reports_no_records(self, tmp_path, capsys):
        assert main(["analyze", "--store", str(tmp_path / "fresh")]) == 1
        assert "no records found" in capsys.readouterr().err


class TestBenchCompareFlag:
    def test_parser_accepts_compare(self):
        args = build_parser().parse_args(["bench", "--smoke", "--compare", "PREV.json"])
        assert args.compare == "PREV.json"
        assert args.objective == "throughput"

    def test_missing_compare_file_errors(self, capsys, tmp_path):
        exit_code = main([
            "bench", "--smoke", "--compare", str(tmp_path / "nope.json"),
            "--output", str(tmp_path),
        ])
        assert exit_code == 1
        assert "cannot read bench report" in capsys.readouterr().err
