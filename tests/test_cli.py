"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.itc02.writer import write_soc_file


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("design", "benchmarks", "solvers", "table1", "figure5",
                        "figure6", "figure7", "economics", "solver_comparison",
                        "all"):
            assert command in text

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_design_defaults(self):
        args = build_parser().parse_args(["design", "d695"])
        assert args.channels == 512
        assert args.depth_m == 7.0
        assert not args.broadcast
        assert args.solver == "goel05"


class TestCommands:
    def test_benchmarks_command(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "d695" in out and "p93791" in out

    def test_design_command_on_benchmark(self, capsys):
        exit_code = main([
            "design", "d695", "--channels", "128", "--depth-m", "0.125",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "two-step result" in out
        assert "optimal" in out

    def test_design_command_with_broadcast_and_architecture(self, capsys):
        exit_code = main([
            "design", "d695", "--channels", "128", "--depth-m", "0.125",
            "--broadcast", "--show-architecture",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "architecture for d695" in out

    def test_design_command_on_soc_file(self, tmp_path, tiny_soc, capsys):
        path = write_soc_file(tiny_soc, tmp_path / "tiny.soc")
        exit_code = main([
            "design", str(path), "--channels", "64", "--depth-m", "0.25",
        ])
        assert exit_code == 0
        assert "tiny" in capsys.readouterr().out

    def test_design_command_infeasible_returns_error(self, capsys):
        exit_code = main([
            "design", "p93791", "--channels", "8", "--depth-m", "0.01",
        ])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_benchmark_returns_error(self, capsys):
        exit_code = main(["design", "not_a_chip", "--channels", "64"])
        assert exit_code == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_solvers_command_lists_backends(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        for name in ("goel05", "exhaustive", "restart"):
            assert name in out
        assert "[default]" in out
        assert len(out.strip().splitlines()) >= 3

    def test_design_command_with_solver(self, capsys):
        exit_code = main([
            "design", "d695", "--channels", "128", "--depth-m", "0.125",
            "--solver", "restart",
        ])
        assert exit_code == 0
        assert "two-step result" in capsys.readouterr().out

    def test_design_command_with_unknown_solver_errors(self, capsys):
        exit_code = main([
            "design", "d695", "--channels", "128", "--depth-m", "0.125",
            "--solver", "annealing",
        ])
        assert exit_code == 1
        assert "unknown solver" in capsys.readouterr().err
