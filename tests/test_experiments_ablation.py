"""Tests for the ablation experiments (reduced operating points for speed)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.experiments.ablation import (
    run_placement_ablation,
    run_wrapper_ablation,
)
from repro.itc02.registry import load_benchmark
from repro.tam.assignment import PLACEMENT_CRITERIA, design_architecture


class TestPlacementCriterionParameter:
    def test_unknown_criterion_rejected(self, tiny_soc):
        with pytest.raises(ConfigurationError):
            design_architecture(tiny_soc, 64, 10**7, placement_criterion="fastest")

    def test_both_criteria_produce_valid_architectures(self, medium_soc):
        for criterion in PLACEMENT_CRITERIA:
            architecture = design_architecture(
                medium_soc, 64, 250_000, placement_criterion=criterion
            )
            assert architecture.test_time_cycles <= 250_000
            assert architecture.ate_channels <= 64

    def test_paper_rule_never_uses_more_channels(self, medium_soc, d695):
        from repro.core.units import kilo_vectors

        cases = [(medium_soc, 64, 250_000), (d695, 256, kilo_vectors(64))]
        for soc, channels, depth in cases:
            paper = design_architecture(soc, channels, depth,
                                        placement_criterion="fewest-channels")
            ablated = design_architecture(soc, channels, depth,
                                          placement_criterion="most-free-memory")
            assert paper.ate_channels <= ablated.ate_channels


class TestPlacementAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_placement_ablation(points={"d695": (256, 64), "p22810": (512, 704)})

    def test_rows_cover_requested_benchmarks(self, result):
        assert {row.soc_name for row in result.rows} == {"d695", "p22810"}

    def test_paper_rule_at_most_ablated(self, result):
        for row in result.rows:
            assert row.paper_rule_channels <= row.ablated_channels
            assert row.channel_inflation >= 0.0

    def test_mean_inflation_non_negative(self, result):
        assert result.mean_inflation >= 0.0

    def test_table_renders(self, result):
        text = result.to_table().render()
        assert "d695" in text and "inflation" in text

    def test_empty_points_rejected(self):
        with pytest.raises(ConfigurationError):
            run_placement_ablation(points={})


class TestWrapperAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_wrapper_ablation(soc=load_benchmark("d695"), widths=(2, 3, 4, 8))

    def test_counts_consistent(self, result):
        assert result.lpt_wins + result.bfd_wins + result.ties == result.cases
        assert result.cases > 0

    def test_combine_never_worse(self, result):
        assert result.combine_never_worse
        assert result.lpt_excess_makespan >= 0.0
        assert result.bfd_excess_makespan >= 0.0

    def test_table_renders(self, result):
        assert "d695" in result.to_table().render()

    def test_empty_widths_rejected(self):
        with pytest.raises(ConfigurationError):
            run_wrapper_ablation(soc=load_benchmark("d695"), widths=())

    def test_soc_without_multichain_modules_rejected(self, tiny_soc):
        from repro.soc.builder import SocBuilder

        scanless = SocBuilder("nochains").add_module("a", 4, 4, 0, [], 10).build()
        with pytest.raises(ConfigurationError):
            run_wrapper_ablation(soc=scanless, widths=(2, 4))
