"""Unit tests for the benchmark registry."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.itc02.registry import (
    TABLE1_BENCHMARKS,
    benchmark_info,
    list_benchmarks,
    load_benchmark,
)


class TestRegistry:
    def test_table1_benchmarks_registered(self):
        assert TABLE1_BENCHMARKS == ("d695", "p22810", "p34392", "p93791")
        for name in TABLE1_BENCHMARKS:
            assert load_benchmark(name).name == name

    def test_d695_from_published_data(self):
        soc = load_benchmark("d695")
        assert len(soc) == 10
        assert not benchmark_info("d695").synthetic

    def test_d695_known_module(self):
        s38584 = load_benchmark("d695").module("s38584")
        assert s38584.num_scan_chains == 32
        assert s38584.patterns == 110
        assert s38584.total_scan_flipflops == 1426

    def test_d695_scanless_cores(self):
        soc = load_benchmark("d695")
        assert soc.module("c6288").num_scan_chains == 0
        assert soc.module("c7552").num_scan_chains == 0

    def test_p_benchmark_module_counts(self):
        assert len(load_benchmark("p22810")) == 28
        assert len(load_benchmark("p34392")) == 19
        assert len(load_benchmark("p93791")) == 32

    def test_p_benchmarks_flagged_synthetic(self):
        for name in ("p22810", "p34392", "p93791"):
            assert benchmark_info(name).synthetic

    def test_benchmark_sizes_ordered(self):
        # p93791 is the largest benchmark, d695 by far the smallest.
        from repro.soc.synthetic import total_min_area

        areas = {name: total_min_area(load_benchmark(name)) for name in TABLE1_BENCHMARKS}
        assert areas["d695"] < areas["p22810"] < areas["p34392"] < areas["p93791"]

    def test_case_insensitive_lookup(self):
        assert load_benchmark("D695").name == "d695"

    def test_caching_returns_same_object(self):
        assert load_benchmark("d695") is load_benchmark("d695")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            load_benchmark("t512505")

    def test_unknown_info_rejected(self):
        with pytest.raises(ConfigurationError):
            benchmark_info("nope")

    def test_list_benchmarks_metadata(self):
        infos = {info.name: info for info in list_benchmarks()}
        assert set(infos) == set(TABLE1_BENCHMARKS)
        assert infos["p93791"].modules == 32

    def test_info_module_counts_match_loaded(self):
        for info in list_benchmarks():
            assert len(load_benchmark(info.name)) == info.modules
