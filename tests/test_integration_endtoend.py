"""Integration tests: the full pipeline from benchmark file to throughput.

These tests wire several subsystems together (parser -> wrapper/TAM design
-> E-RPCT -> cost model -> two-step optimiser -> simulator) and check
cross-module consistency rather than individual units.
"""

import pytest

from repro.ate.probe_station import ProbeStation
from repro.ate.spec import AteSpec
from repro.core.units import kilo_vectors
from repro.itc02.parser import parse_soc_text
from repro.itc02.registry import load_benchmark
from repro.itc02.writer import soc_to_text
from repro.multisite.throughput import throughput_per_hour
from repro.optimize.config import Objective, OptimizationConfig
from repro.optimize.two_step import optimize_multisite
from repro.sim.montecarlo import FlowParameters, simulate_flow
from repro.sim.scan_sim import simulate_architecture
from repro.sim.wafer import TouchdownPlan, WaferMap


class TestEndToEndD695:
    @pytest.fixture(scope="class")
    def result(self):
        soc = load_benchmark("d695")
        ate = AteSpec(channels=256, depth=kilo_vectors(96), frequency_hz=5e6)
        probe = ProbeStation(index_time_s=0.5, contact_test_time_s=0.010, contact_yield=0.999)
        return optimize_multisite(soc, ate, probe, OptimizationConfig(broadcast=False))

    def test_throughput_consistent_with_equation(self, result):
        best = result.best
        expected = throughput_per_hour(
            best.sites,
            result.step1.probe_station.index_time_s,
            best.scenario.test_time_s(),
        )
        assert best.throughput == pytest.approx(expected)

    def test_architecture_simulation_agrees(self, result):
        trace = simulate_architecture(result.best.architecture)
        assert trace.test_time_cycles == result.best.test_time_cycles

    def test_erpct_pin_count_drives_contact_model(self, result):
        assert result.best.scenario.channels_per_site == result.best.architecture.ate_channels

    def test_roundtrip_through_soc_file_gives_same_result(self, result):
        soc = parse_soc_text(soc_to_text(load_benchmark("d695")))
        ate = AteSpec(channels=256, depth=kilo_vectors(96), frequency_hz=5e6)
        probe = ProbeStation(index_time_s=0.5, contact_test_time_s=0.010, contact_yield=0.999)
        replay = optimize_multisite(soc, ate, probe, OptimizationConfig(broadcast=False))
        assert replay.optimal_sites == result.optimal_sites
        assert replay.step1.channels_per_site == result.step1.channels_per_site

    def test_montecarlo_flow_matches_analytic_throughput(self, result):
        best = result.best
        params = FlowParameters(
            sites=best.sites,
            timing=best.scenario.timing,
            terminals_per_site=best.channels_per_site,
            contact_yield=0.999,
            manufacturing_yield=1.0,
        )
        flow = simulate_flow(params, devices=5000, seed=3)
        assert flow.throughput_per_hour == pytest.approx(best.throughput, rel=0.02)
        assert flow.unique_throughput_per_hour == pytest.approx(
            best.scenario.unique_throughput(approximate=False), rel=0.05
        )

    def test_wafer_level_schedule(self, result):
        wafer = WaferMap(diameter_mm=300, die_width_mm=12, die_height_mm=12)
        plan = TouchdownPlan(wafer=wafer, sites=result.optimal_sites)
        wafer_time = plan.wafer_test_time_s(
            result.step1.probe_station.index_time_s,
            result.best.scenario.test_time_s(),
        )
        assert wafer_time > 0
        # The whole-wafer time must be consistent with the per-hour rate
        # within the edge-effect loss the paper ignores.
        devices = wafer.dies_per_wafer
        hours = wafer_time / 3600
        assert devices / hours <= result.best.throughput * 1.01
        assert devices / hours >= result.best.throughput * plan.site_utilisation * 0.99


class TestVariantsEndToEnd:
    @pytest.fixture(scope="class")
    def inputs(self):
        soc = load_benchmark("d695")
        ate = AteSpec(channels=128, depth=kilo_vectors(64), frequency_hz=5e6)
        probe = ProbeStation(index_time_s=0.5, contact_test_time_s=0.010, contact_yield=0.998)
        return soc, ate, probe

    def test_all_variant_combinations_run(self, inputs):
        soc, ate, probe = inputs
        for broadcast in (False, True):
            for abort_on_fail in (False, True):
                for objective in (Objective.THROUGHPUT, Objective.UNIQUE_THROUGHPUT):
                    config = OptimizationConfig(
                        broadcast=broadcast,
                        abort_on_fail=abort_on_fail,
                        objective=objective,
                        manufacturing_yield=0.9,
                    )
                    result = optimize_multisite(soc, ate, probe, config)
                    assert result.optimal_sites >= 1
                    assert result.optimal_throughput > 0

    def test_unique_objective_prefers_not_more_channels(self, inputs):
        soc, ate, probe = inputs
        plain = optimize_multisite(soc, ate, probe, OptimizationConfig())
        unique = optimize_multisite(
            soc, ate, probe, OptimizationConfig(objective=Objective.UNIQUE_THROUGHPUT)
        )
        # With re-test, wide interfaces are penalised, so the unique-optimal
        # design never probes more pads per site than the throughput-optimal.
        assert unique.best.channels_per_site <= plain.best.channels_per_site
