"""Cross-solver invariant suite: properties every backend must satisfy.

Rather than testing each backend's internals, this suite pins the contract
of the solver registry itself, over **every registered solver x every
registered objective**:

* solutions are feasible (per-site channel budget, vector-memory depth);
* solving the same problem twice is bit-identical (seeded determinism);
* no solution beats its lower-bound certificate (``score <= signed bound``);
* the search backends (``restart``, ``simulated_annealing``) are never
  worse than the paper's ``goel05`` heuristic -- including on the four full
  ITC'02 benchmarks at their Table-1 operating points.

New backends and objectives are picked up automatically through the
registries; a backend that violates any of these properties fails here
before it can corrupt an experiment.
"""

import pytest

from repro.ate.spec import AteSpec
from repro.core.units import kilo_vectors
from repro.experiments.table1 import DEFAULT_ATE_CHANNELS, DEFAULT_DEPTH_GRIDS_K
from repro.itc02.registry import TABLE1_BENCHMARKS, load_benchmark
from repro.objectives.registry import get_objective, objective_names
from repro.soc.catalog import resolve_catalog_soc
from repro.solvers.problem import make_problem
from repro.solvers.registry import DEFAULT_SOLVER, solve, solver_names

#: Cheap annealing knobs so the full cross product stays fast; the
#: invariants must hold for *any* knob setting, so smoke values suffice.
SA_SMOKE_OPTIONS = (("cooling", 0.7), ("moves_per_temp", 8), ("temperature", 0.5))

#: Backends expected to dominate the paper's deterministic heuristic.
SEARCH_SOLVERS = ("restart", "simulated_annealing")


def _options_for(solver: str) -> tuple:
    return SA_SMOKE_OPTIONS if solver == "simulated_annealing" else ()


def _problem(soc, ate, solver: str, objective: str):
    return make_problem(soc, ate, objective=objective, solver_options=_options_for(solver))


def _assert_feasible(solution) -> None:
    """Every evaluated site point must respect the problem's ATE limits."""
    ate = solution.problem.ate
    result = solution.result
    assert result.step1.channels_per_site <= ate.channels
    for point in result.points:
        assert point.channels_per_site <= ate.channels
        assert all(group.fill <= ate.depth for group in point.architecture.groups)


def _benchmark_ate(name: str) -> AteSpec:
    """A benchmark's Table-1 operating point (middle of its depth grid)."""
    grid = DEFAULT_DEPTH_GRIDS_K[name]
    return AteSpec(
        channels=DEFAULT_ATE_CHANNELS[name],
        depth=kilo_vectors(grid[len(grid) // 2]),
        name=f"ate-{name}",
    )


def pytest_generate_tests(metafunc):
    """Expand the registry cross product at collection time."""
    if "solver" in metafunc.fixturenames:
        metafunc.parametrize("solver", solver_names())
    if "objective" in metafunc.fixturenames:
        metafunc.parametrize("objective", objective_names())
    if "itc_benchmark" in metafunc.fixturenames:
        # Not named "benchmark": pytest-benchmark claims that fixture name.
        metafunc.parametrize("itc_benchmark", TABLE1_BENCHMARKS)


class TestEverySolverEveryObjective:
    """The cross-product invariants, on an exhaustively tractable SOC."""

    def test_solution_is_feasible(self, tiny_soc, small_ate, solver, objective):
        solution = solve(solver, _problem(tiny_soc, small_ate, solver, objective))
        assert solution.solver == solver
        assert solution.problem.objective == objective
        _assert_feasible(solution)

    def test_rerun_is_bit_identical(self, tiny_soc, small_ate, solver, objective):
        problem = _problem(tiny_soc, small_ate, solver, objective)
        first = solve(solver, problem)
        second = solve(solver, problem)
        assert first == second

    def test_score_never_beats_the_certificate(self, tiny_soc, small_ate, solver, objective):
        solution = solve(solver, _problem(tiny_soc, small_ate, solver, objective))
        bound = solution.lower_bound
        assert bound is not None
        signed_bound = get_objective(objective).signed(bound)
        assert solution.score <= signed_bound + 1e-9 * abs(signed_bound)
        gap = solution.gap
        assert gap is not None and gap >= 0.0


class TestEverySolverMediumSoc:
    """The same invariants on a larger SOC (no oracle, default objective)."""

    def test_feasible_deterministic_and_bounded(self, medium_soc, small_ate, solver):
        problem = _problem(
            medium_soc, small_ate.with_depth(kilo_vectors(128)), solver, "throughput"
        )
        first = solve(solver, problem)
        second = solve(solver, problem)
        assert first == second
        _assert_feasible(first)
        bound = first.lower_bound
        assert bound is not None
        # throughput is max-sense: the raw bound is directly an upper bound.
        assert first.score <= bound + 1e-9 * abs(bound)


class TestSearchDominatesGoel05:
    """restart / simulated_annealing are never worse than the paper order."""

    def test_never_worse_on_itc02_benchmarks(self, itc_benchmark):
        soc = load_benchmark(itc_benchmark)
        ate = _benchmark_ate(itc_benchmark)
        greedy = solve(
            DEFAULT_SOLVER, _problem(soc, ate, DEFAULT_SOLVER, "throughput")
        )
        for solver in SEARCH_SOLVERS:
            solution = solve(solver, _problem(soc, ate, solver, "throughput"))
            assert solution.score >= greedy.score, solver
            _assert_feasible(solution)

    def test_sa_ties_or_beats_restart_on_a_large_synthetic(self):
        # Acceptance pin: on synthetic:1:20 (20 modules) at a 512-channel,
        # 1 M-vector ATE the annealer matches the multi-start search with
        # its *default* knobs.
        soc = resolve_catalog_soc("synthetic:1:20")
        ate = AteSpec(channels=512, depth=1_048_576, name="ate-large")
        annealed = solve("simulated_annealing", make_problem(soc, ate))
        restarted = solve("restart", make_problem(soc, ate))
        assert annealed.score >= restarted.score
