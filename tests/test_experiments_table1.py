"""Tests for the Table-1 experiment (reduced depth grids for speed)."""

import pytest

from repro.core.units import kilo_vectors
from repro.experiments.table1 import (
    DEFAULT_ATE_CHANNELS,
    DEFAULT_DEPTH_GRIDS_K,
    run_table1,
    run_table1_row,
    summarize_table1,
)


class TestDefaults:
    def test_grids_cover_all_four_benchmarks(self):
        assert set(DEFAULT_DEPTH_GRIDS_K) == {"d695", "p22810", "p34392", "p93791"}

    def test_each_grid_has_eleven_depths(self):
        for grid in DEFAULT_DEPTH_GRIDS_K.values():
            assert len(grid) == 11

    def test_d695_grid_matches_paper(self):
        assert DEFAULT_DEPTH_GRIDS_K["d695"] == (48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128)

    def test_channel_counts(self):
        assert DEFAULT_ATE_CHANNELS["d695"] == 256
        assert DEFAULT_ATE_CHANNELS["p93791"] == 512


class TestRows:
    def test_d695_48k_row_matches_paper(self):
        row = run_table1_row("d695", kilo_vectors(48), 256)
        assert row.lower_bound_channels == 28
        assert row.our_channels == 28
        assert row.our_sites == 17

    def test_d695_128k_row_matches_paper(self):
        row = run_table1_row("d695", kilo_vectors(128), 256)
        assert row.lower_bound_channels == 12
        assert row.our_channels == 12
        assert row.our_sites == 41

    def test_row_invariants(self):
        row = run_table1_row("p22810", kilo_vectors(512), 512)
        assert row.our_channels >= row.lower_bound_channels
        assert row.baseline_channels >= row.lower_bound_channels
        assert row.our_channels % 2 == 0


class TestRunTable1:
    @pytest.fixture(scope="class")
    def reduced(self):
        return run_table1(
            benchmarks=("d695", "p22810"),
            depth_grids_k={"d695": (48, 96, 128), "p22810": (512, 1024)},
        )

    def test_row_count(self, reduced):
        assert len(reduced.rows) == 5
        assert len(reduced.rows_for("d695")) == 3
        assert len(reduced.rows_for("p22810")) == 2

    def test_benchmark_order(self, reduced):
        assert reduced.benchmarks == ("d695", "p22810")

    def test_ours_never_below_lower_bound(self, reduced):
        assert all(row.our_channels >= row.lower_bound_channels for row in reduced.rows)

    def test_ours_never_above_baseline_channels(self, reduced):
        # Our Step 1 re-wraps modules at the group width, so it should never
        # need more channels than the rigid rectangle packing.
        assert all(row.our_channels <= row.baseline_channels for row in reduced.rows)

    def test_sites_at_least_baseline(self, reduced):
        assert all(row.our_sites >= row.baseline_sites for row in reduced.rows)

    def test_channels_decrease_with_depth(self, reduced):
        for name in reduced.benchmarks:
            rows = reduced.rows_for(name)
            channels = [row.our_channels for row in rows]
            assert channels == sorted(channels, reverse=True)

    def test_sites_increase_with_depth(self, reduced):
        for name in reduced.benchmarks:
            rows = reduced.rows_for(name)
            sites = [row.our_sites for row in rows]
            assert sites == sorted(sites)

    def test_to_table_renders(self, reduced):
        table = reduced.to_table("d695")
        assert table.num_rows == 3
        assert "48K" in table.render()

    def test_summary_mentions_benchmarks(self, reduced):
        text = summarize_table1(reduced)
        assert "d695" in text and "p22810" in text
