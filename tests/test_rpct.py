"""Unit tests for the E-RPCT wrapper and boundary-scan models."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.rpct.boundary_scan import BoundaryScanChain, boundary_scan_for
from repro.rpct.wrapper import (
    DEFAULT_CONTROL_PADS,
    DEFAULT_POWER_PADS,
    ErpctWrapper,
    design_erpct_wrapper,
)


class TestErpctWrapper:
    def test_channels_is_inputs_plus_outputs(self):
        wrapper = ErpctWrapper("soc", external_inputs=8, external_outputs=8,
                               internal_tam_width=20)
        assert wrapper.ate_channels == 16

    def test_probed_pads_include_overheads(self):
        wrapper = ErpctWrapper("soc", 8, 8, 20, control_pads=4, power_pads=8)
        assert wrapper.probed_pads == 16 + 4 + 8

    def test_signal_pads_exclude_overheads(self):
        wrapper = ErpctWrapper("soc", 8, 8, 20)
        assert wrapper.probed_signal_pads == 16

    def test_erpct_invariant_inputs_not_exceed_width(self):
        with pytest.raises(ConfigurationError):
            ErpctWrapper("soc", external_inputs=30, external_outputs=30,
                         internal_tam_width=20)

    def test_zero_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            ErpctWrapper("soc", 0, 4, 10)

    def test_negative_overheads_rejected(self):
        with pytest.raises(ConfigurationError):
            ErpctWrapper("soc", 4, 4, 10, control_pads=-1)

    def test_pin_reduction(self):
        wrapper = ErpctWrapper("soc", 8, 8, 20)
        assert wrapper.pin_reduction(500) == 500 - wrapper.probed_pads

    def test_pin_reduction_never_negative(self):
        wrapper = ErpctWrapper("soc", 8, 8, 20)
        assert wrapper.pin_reduction(4) == 0

    def test_pin_reduction_invalid(self):
        with pytest.raises(ConfigurationError):
            ErpctWrapper("soc", 8, 8, 20).pin_reduction(-1)

    def test_describe(self):
        assert "E-RPCT" in ErpctWrapper("soc", 8, 8, 20).describe()


class TestDesignErpctWrapper:
    def test_splits_channels_evenly(self, tiny_soc):
        wrapper = design_erpct_wrapper(tiny_soc, ate_channels_per_site=24)
        assert wrapper.external_inputs == 12
        assert wrapper.external_outputs == 12

    def test_default_width_is_half_channels(self, tiny_soc):
        wrapper = design_erpct_wrapper(tiny_soc, 24)
        assert wrapper.internal_tam_width == 12

    def test_explicit_internal_width(self, tiny_soc):
        wrapper = design_erpct_wrapper(tiny_soc, 24, internal_tam_width=40)
        assert wrapper.internal_tam_width == 40

    def test_odd_channel_count_rejected(self, tiny_soc):
        with pytest.raises(ConfigurationError):
            design_erpct_wrapper(tiny_soc, 13)

    def test_default_overheads(self, tiny_soc):
        wrapper = design_erpct_wrapper(tiny_soc, 8)
        assert wrapper.control_pads == DEFAULT_CONTROL_PADS
        assert wrapper.power_pads == DEFAULT_POWER_PADS

    def test_soc_name_recorded(self, tiny_soc):
        assert design_erpct_wrapper(tiny_soc, 8).soc_name == tiny_soc.name


class TestBoundaryScan:
    def test_from_soc_uses_functional_pins(self, tiny_soc):
        chain = boundary_scan_for(tiny_soc)
        assert chain.cells == tiny_soc.estimated_functional_pins

    def test_longest_segment_balanced(self):
        chain = BoundaryScanChain(cells=10, segments=3)
        assert chain.longest_segment == 4

    def test_single_segment(self):
        assert BoundaryScanChain(cells=7).longest_segment == 7

    def test_zero_cells(self):
        assert BoundaryScanChain(cells=0).longest_segment == 0

    def test_access_cycles(self):
        assert BoundaryScanChain(cells=12, segments=4).access_cycles() == 3

    def test_more_segments_than_cells_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundaryScanChain(cells=2, segments=3)

    def test_negative_cells_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundaryScanChain(cells=-1)

    def test_describe(self):
        assert "boundary scan" in BoundaryScanChain(cells=5).describe()
