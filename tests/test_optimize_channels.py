"""Unit tests for the multi-site channel arithmetic."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.optimize.channels import (
    even_floor,
    max_channels_per_site,
    max_sites,
    total_channels_used,
)


class TestEvenFloor:
    @pytest.mark.parametrize("value, expected", [(0, 0), (1, 0), (2, 2), (7, 6), (8, 8)])
    def test_values(self, value, expected):
        assert even_floor(value) == expected

    def test_negative_clamped_to_zero(self):
        assert even_floor(-3) == 0


class TestMaxSites:
    def test_no_broadcast(self):
        assert max_sites(512, 72, broadcast=False) == 7

    def test_no_broadcast_exact_division(self):
        assert max_sites(512, 64, broadcast=False) == 8

    def test_broadcast_shares_stimulus(self):
        # k/2 = 36 shared + 36 per site: (512 - 36) / 36 = 13.
        assert max_sites(512, 72, broadcast=True) == 13

    def test_broadcast_always_at_least_no_broadcast(self):
        for k in (4, 10, 20, 64, 100):
            assert max_sites(512, k, True) >= max_sites(512, k, False)

    def test_zero_when_soc_does_not_fit(self):
        assert max_sites(16, 32, broadcast=False) == 0

    def test_odd_per_site_rejected(self):
        with pytest.raises(ConfigurationError):
            max_sites(512, 7, False)

    def test_invalid_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            max_sites(0, 8, False)


class TestMaxChannelsPerSite:
    def test_no_broadcast(self):
        assert max_channels_per_site(512, 7, broadcast=False) == 72

    def test_result_is_even(self):
        for sites in range(1, 20):
            assert max_channels_per_site(511, sites, False) % 2 == 0
            assert max_channels_per_site(511, sites, True) % 2 == 0

    def test_broadcast(self):
        # floor(512 / (13+1)) = 36 -> k = 72.
        assert max_channels_per_site(512, 13, broadcast=True) == 72

    def test_single_site_gets_everything(self):
        assert max_channels_per_site(512, 1, broadcast=False) == 512
        assert max_channels_per_site(512, 1, broadcast=True) == 512

    def test_invalid_sites(self):
        with pytest.raises(ConfigurationError):
            max_channels_per_site(512, 0, False)


class TestRoundTripConsistency:
    @pytest.mark.parametrize("broadcast", [False, True])
    @pytest.mark.parametrize("channels", [64, 128, 500, 512, 1024])
    @pytest.mark.parametrize("per_site", [2, 8, 14, 36, 72])
    def test_max_sites_budget_fits(self, channels, per_site, broadcast):
        sites = max_sites(channels, per_site, broadcast)
        if sites == 0:
            return
        assert total_channels_used(per_site, sites, broadcast) <= channels
        # One more site would not fit.
        assert total_channels_used(per_site, sites + 1, broadcast) > channels

    @pytest.mark.parametrize("broadcast", [False, True])
    @pytest.mark.parametrize("sites", [1, 2, 5, 13])
    def test_max_channels_fits(self, sites, broadcast):
        channels = 512
        per_site = max_channels_per_site(channels, sites, broadcast)
        assert total_channels_used(per_site, sites, broadcast) <= channels
        assert total_channels_used(per_site + 2, sites, broadcast) > channels


class TestTotalChannelsUsed:
    def test_no_broadcast(self):
        assert total_channels_used(10, 4, broadcast=False) == 40

    def test_broadcast(self):
        assert total_channels_used(10, 4, broadcast=True) == 5 + 4 * 5

    def test_invalid_per_site(self):
        with pytest.raises(ConfigurationError):
            total_channels_used(3, 2, False)

    def test_invalid_sites(self):
        with pytest.raises(ConfigurationError):
            total_channels_used(4, 0, False)
