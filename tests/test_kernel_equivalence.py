"""Bit-identity of the batch evaluation kernel against the scalar path.

The batch kernel (:mod:`repro.solvers.evaluate` routing through
:mod:`repro.multisite.batch` and the array objective backends) promises to
produce *exactly* the bytes the scalar path produces -- ``repro all``
digests and store records depend on it.  This suite pins that promise:

* the vectorised objective math equals per-point scalar evaluation across
  SOCs, objectives, broadcast modes and yield settings (``==`` on floats,
  no tolerance);
* the incremental Step-2 widening equals from-scratch widening for every
  site count;
* :func:`~repro.solvers.evaluate.evaluate_move` equals a full
  re-evaluation for random single-module width moves;
* the fast wrapper test time equals the full
  :func:`~repro.wrapper.combine.design_wrapper` construction, and the
  closed-form partition helpers equal their brute-force references.
"""

from __future__ import annotations

import random

import pytest

from repro.api.scenario import Scenario
from repro.api.testcell import reference_test_cell
from repro.core.units import kilo_vectors, mega_vectors
from repro.objectives.registry import objective_names
from repro.optimize.channels import max_channels_per_site
from repro.optimize.config import Objective, OptimizationConfig
from repro.optimize.step1 import run_step1
from repro.soc.catalog import resolve_catalog_soc
from repro.solvers import evaluate as kernel
from repro.tam.redistribution import widen_to_channel_budget
from repro.wrapper.combine import _fast_test_time, design_wrapper, module_test_time
from repro.wrapper.partition import (
    best_partition,
    bfd_partition,
    lpt_partition,
    spread_cells,
    water_level,
)

SOC_NAMES = ("d695", "pnx8550", "synthetic:42:8")

#: Per-SOC test-cell operating points (channels, vector depth in M) that
#: are feasible in both broadcast modes.
SOC_CELLS = {
    "d695": (256, 0.0625),
    "pnx8550": (512, 7.0),
    "synthetic:42:8": (256, 2.0),
}


def _step1_for(soc_name, broadcast=False, **config_kwargs):
    soc = resolve_catalog_soc(soc_name)
    channels, depth_m = SOC_CELLS[soc_name]
    cell = reference_test_cell(channels=channels, depth_m=depth_m)
    config = OptimizationConfig(broadcast=broadcast, **config_kwargs)
    return run_step1(soc, cell.ate, cell.probe_station, config)


def _scalar_points(step1, site_counts, objective):
    """Per-point scalar evaluation, bypassing the batch path and the memo."""
    from repro.objectives.registry import get_objective

    spec = get_objective(objective)
    values = []
    current = step1.architecture
    architectures = {}
    for sites in sorted(set(site_counts), reverse=True):
        budget = max_channels_per_site(
            step1.ate.channels, sites, step1.config.broadcast
        )
        current = widen_to_channel_budget(current, budget)
        architectures[sites] = current
    for sites in site_counts:
        scenario = kernel.scenario_for(
            architectures[sites], sites, step1.ate, step1.probe_station, step1.config
        )
        values.append(spec.value(scenario, step1.config, step1.ate))
    return values


class TestBatchEqualsScalar:
    @pytest.mark.parametrize("soc_name", SOC_NAMES)
    @pytest.mark.parametrize("broadcast", [False, True])
    def test_all_objectives_bit_identical(self, soc_name, broadcast):
        step1 = _step1_for(soc_name, broadcast=broadcast)
        site_counts = list(range(step1.max_sites, 0, -1))
        for objective in objective_names():
            kernel.clear_cache()
            batch = kernel.evaluate_points(step1, site_counts, objective)
            scalar = _scalar_points(step1, site_counts, objective)
            assert [point.objective for point in batch] == scalar, objective

    @pytest.mark.parametrize(
        "config_kwargs",
        [
            {"abort_on_fail": True, "manufacturing_yield": 0.85},
            {"objective": Objective.UNIQUE_THROUGHPUT},
            {
                "objective": Objective.UNIQUE_THROUGHPUT,
                "abort_on_fail": True,
                "manufacturing_yield": 0.6,
            },
        ],
    )
    def test_yield_and_retest_variants_bit_identical(self, config_kwargs):
        step1 = _step1_for("d695", **config_kwargs)
        site_counts = list(range(step1.max_sites, 0, -1))
        kernel.clear_cache()
        batch = kernel.evaluate_points(step1, site_counts)
        scalar = _scalar_points(step1, site_counts, "throughput")
        assert [point.objective for point in batch] == scalar

    def test_batch_and_scalar_entry_points_share_results(self):
        step1 = _step1_for("d695")
        kernel.clear_cache()
        batched = kernel.evaluate_points(step1, range(step1.max_sites, 0, -1))
        for point in batched:
            again = kernel.evaluate_point(
                point.architecture,
                point.sites,
                step1.ate,
                step1.probe_station,
                step1.config,
            )
            assert again.objective == point.objective
            assert again.scenario == point.scenario


class TestIncrementalWidening:
    @pytest.mark.parametrize("soc_name", SOC_NAMES)
    @pytest.mark.parametrize("broadcast", [False, True])
    def test_incremental_equals_from_scratch(self, soc_name, broadcast):
        step1 = _step1_for(soc_name, broadcast=broadcast)
        current = step1.architecture
        for sites in range(step1.max_sites, 0, -1):
            budget = max_channels_per_site(step1.ate.channels, sites, broadcast)
            current = widen_to_channel_budget(current, budget)
            scratch = widen_to_channel_budget(step1.architecture, budget)
            assert current == scratch, f"{soc_name} sites={sites}"

    def test_budgets_monotone_as_sites_descend(self):
        # The incremental chain is only valid because budgets never shrink
        # while sites are given up -- pin that property for both modes.
        for broadcast in (False, True):
            budgets = [
                max_channels_per_site(512, sites, broadcast)
                for sites in range(32, 0, -1)
            ]
            assert budgets == sorted(budgets)


class TestEvaluateMove:
    @pytest.mark.parametrize("soc_name", SOC_NAMES)
    def test_move_equals_full_reevaluation(self, soc_name):
        step1 = _step1_for(soc_name)
        kernel.clear_cache()
        point = kernel.evaluate_points(step1, (step1.max_sites,))[0]
        rng = random.Random(1205)
        modules = list(point.architecture.soc.modules)
        for _ in range(20):
            module = rng.choice(modules)
            delta = rng.choice([-2, -1, 1, 2])
            width = point.architecture.group_of(module.name).width + delta
            if width <= 0:
                continue
            moved = kernel.evaluate_move(point, module, delta)
            reference_architecture = point.architecture.with_group_width(
                point.architecture.group_of(module.name).index, width
            )
            reference = kernel.evaluate_point(
                reference_architecture,
                point.sites,
                step1.ate,
                step1.probe_station,
                step1.config,
            )
            assert moved.objective == reference.objective
            assert moved.architecture == reference_architecture
            assert moved.scenario == reference.scenario

    def test_undoing_a_move_is_a_cache_hit(self):
        step1 = _step1_for("d695")
        kernel.clear_cache()
        point = kernel.evaluate_points(step1, (step1.max_sites,))[0]
        module = point.architecture.soc.modules[0]
        there = kernel.evaluate_move(point, module, 1)
        before = kernel.cache_info()
        back = kernel.evaluate_move(there, module, -1)
        after = kernel.cache_info()
        assert back.objective == point.objective
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_zero_delta_returns_same_point(self):
        step1 = _step1_for("d695")
        point = kernel.evaluate_points(step1, (1,))[0]
        assert kernel.evaluate_move(point, point.architecture.soc.modules[0], 0) is point


class TestFastWrapperTime:
    @pytest.mark.parametrize("soc_name", SOC_NAMES)
    def test_fast_test_time_equals_full_design(self, soc_name):
        soc = resolve_catalog_soc(soc_name)
        for module in soc.modules:
            for width in range(1, min(40, module.max_useful_width + 3)):
                assert (
                    _fast_test_time(module, width)
                    == design_wrapper(module, width).test_time_cycles
                ), f"{module.name} width={width}"

    def test_module_test_time_is_cached_fast_path(self):
        soc = resolve_catalog_soc("d695")
        module = soc.modules[0]
        assert module_test_time(module, 4) == _fast_test_time(module, 4)


def _greedy_spread(base_loads, cells):
    """Reference: assign cells one by one to the least-loaded chain."""
    loads = list(base_loads)
    added = [0] * len(loads)
    for _ in range(cells):
        index = min(range(len(loads)), key=lambda i: (loads[i], i))
        loads[index] += 1
        added[index] += 1
    return tuple(added)


class TestPartitionHelpers:
    def test_spread_cells_matches_greedy_reference(self):
        rng = random.Random(7)
        for _ in range(200):
            num = rng.randint(1, 8)
            loads = [rng.randint(0, 30) for _ in range(num)]
            cells = rng.randint(0, 60)
            assert spread_cells(loads, cells) == _greedy_spread(loads, cells), (
                loads,
                cells,
            )

    def test_water_level_is_max_final_load(self):
        rng = random.Random(11)
        for _ in range(200):
            num = rng.randint(1, 8)
            loads = [rng.randint(0, 30) for _ in range(num)]
            cells = rng.randint(1, 60)
            added = spread_cells(loads, cells)
            expected = max(load + extra for load, extra in zip(loads, added))
            level = water_level(sorted(loads), cells)
            assert max(max(loads), level) == expected, (loads, cells)

    def test_best_partition_shortcut_preserves_choice(self):
        # The LPT lower-bound shortcut must never change which partition
        # best_partition returns.
        rng = random.Random(23)
        for _ in range(300):
            num_items = rng.randint(1, 10)
            sizes = [rng.randint(1, 50) for _ in range(num_items)]
            bins = rng.randint(1, num_items)
            lpt = lpt_partition(sizes, bins)
            bfd = bfd_partition(sizes, bins)
            reference = bfd if bfd.makespan < lpt.makespan else lpt
            assert best_partition(sizes, bins) == reference, (sizes, bins)


class TestScenarioGridSanity:
    def test_sweep_scenarios_reproduce_after_kernel_clear(self):
        # A whole engine-level scenario evaluated twice -- once against a
        # cold kernel, once warm -- must give identical results.
        from repro.api.engine import Engine

        cell = reference_test_cell(channels=128, depth_m=0.0625)
        scenarios = Scenario.sweep(
            "d695",
            cell,
            channels=[128],
            depths=[kilo_vectors(48), kilo_vectors(64)],
            broadcast=[False, True],
        )
        kernel.clear_cache()
        cold = [Engine().run(s).result for s in scenarios]
        warm = [Engine().run(s).result for s in scenarios]
        assert cold == warm

    def test_synthetic_deep_grid_bit_identical(self):
        # A synthetic SOC at M-deep vectors (the synthetic sweep's regime).
        soc = resolve_catalog_soc("synthetic:42:8")
        cell = reference_test_cell(channels=192, depth_m=2.0)
        config = OptimizationConfig(broadcast=True)
        step1 = run_step1(soc, cell.ate, cell.probe_station, config)
        site_counts = list(range(step1.max_sites, 0, -1))
        kernel.clear_cache()
        batch = kernel.evaluate_points(step1, site_counts, "cost_per_good_die")
        scalar = _scalar_points(step1, site_counts, "cost_per_good_die")
        assert [point.objective for point in batch] == scalar
