"""Tests of the solver registry (``repro.solvers.registry``)."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.solvers.registry import (
    DEFAULT_SOLVER,
    _REGISTRY,
    Solver,
    get_solver,
    list_solvers,
    register_solver,
    solve,
    solver_names,
)


class TestRegistration:
    def test_builtin_backends_registered(self):
        names = solver_names()
        assert "goel05" in names
        assert "exhaustive" in names
        assert "restart" in names
        assert len(names) >= 3

    def test_default_solver_is_registered(self):
        assert DEFAULT_SOLVER in solver_names()

    def test_listing_is_sorted(self):
        names = solver_names()
        assert list(names) == sorted(names)
        assert tuple(solver.name for solver in list_solvers()) == names

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_solver("goel05", title="imposter")(lambda problem: None)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            register_solver("", title="anonymous")

    def test_custom_registration_roundtrip(self):
        @register_solver("registry-test-backend", title="Test backend")
        def _solve(problem):  # pragma: no cover - never called
            raise AssertionError

        try:
            solver = get_solver("registry-test-backend")
            assert isinstance(solver, Solver)
            assert solver.title == "Test backend"
            assert "registry-test-backend" in solver_names()
        finally:
            _REGISTRY.pop("registry-test-backend")


class TestLookup:
    def test_unknown_solver_error_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="goel05"):
            get_solver("annealing")

    def test_get_solver_returns_named_backend(self):
        assert get_solver("restart").name == "restart"

    def test_solve_wraps_outcome_as_solution(self, tiny_problem):
        solution = solve("goel05", tiny_problem)
        assert solution.solver == "goel05"
        assert solution.problem == tiny_problem
        assert solution.optimal_sites >= 1
