"""Tests for the benchmark telemetry runner (repro.bench)."""

import json

import pytest

from repro.bench import (
    BENCH_FORMAT,
    bench_sweep_grid,
    default_tag,
    report_filename,
    results_digest,
    run_bench,
    summarize_report,
    write_report,
)
from repro.cli import main
from repro.core.exceptions import ConfigurationError
from repro.solvers.registry import solver_names
from repro.store import ResultStore


@pytest.fixture(scope="module")
def smoke_reports(tmp_path_factory):
    """One cold and one warm smoke bench against a shared store."""
    store_dir = tmp_path_factory.mktemp("bench-store")
    cold = run_bench(tag="cold", store=ResultStore(store_dir), smoke=True)
    warm = run_bench(tag="warm", store=ResultStore(store_dir), smoke=True)
    return cold, warm


class TestReportShape:
    def test_top_level_schema(self, smoke_reports):
        cold, _ = smoke_reports
        from repro import __version__

        assert cold["format"] == BENCH_FORMAT
        assert cold["tag"] == "cold"
        assert cold["package_version"] == __version__
        assert cold["smoke"] is True
        assert cold["store"]["enabled"] is True
        assert cold["wall_seconds"] > 0
        assert cold["store_info"]["puts"] > 0

    def test_experiment_rows(self, smoke_reports):
        cold, _ = smoke_reports
        rows = {row["name"]: row for row in cold["experiments"]}
        assert "economics" in rows
        assert rows["economics"]["seconds"] > 0
        assert rows["economics"]["cache"]["misses"] > 0

    def test_solver_rows_cover_registry(self, smoke_reports):
        cold, _ = smoke_reports
        rows = {row["name"]: row for row in cold["solvers"]}
        assert set(rows) == set(solver_names())
        # The exhaustive oracle cannot handle the 10-module d695: it must be
        # recorded as skipped (with the reason), not dropped or crashed.
        assert "skipped" in rows["exhaustive"]
        assert "8 modules" in rows["exhaustive"]["skipped"]
        assert rows["goel05"]["optimal_sites"] >= 1
        assert rows["goel05"]["seconds"] > 0

    def test_sweep_row(self, smoke_reports):
        cold, _ = smoke_reports
        sweep = cold["sweep"]
        assert sweep["scenarios"] == len(bench_sweep_grid(smoke=True)) == 4
        assert len(sweep["digest"]) == 64
        assert sweep["evaluate_kernel"]["misses"] >= 0

    def test_analysis_row(self, smoke_reports):
        cold, _ = smoke_reports
        analysis = cold["analysis"]
        assert analysis["records"] == analysis["full_decode"]["records"]
        assert analysis["records"] == analysis["sidecar_scan"]["records"]
        assert analysis["records_identical"] is True
        assert analysis["table_digests_identical"] is True
        assert len(analysis["table_digest"]) == 64
        assert analysis["full_decode"]["rows_per_second"] > 0
        # The acceptance threshold (>= 10x) is asserted under the benchmark
        # harness; the unit test only requires a genuine speedup.
        assert analysis["speedup"] > 1.0

    def test_report_is_json_serializable(self, smoke_reports):
        cold, warm = smoke_reports
        for report in (cold, warm):
            json.loads(json.dumps(report))


class TestWarmStore:
    def test_warm_run_reports_store_hits(self, smoke_reports):
        _, warm = smoke_reports
        assert warm["sweep"]["cache"]["store_hits"] == warm["sweep"]["scenarios"]
        assert warm["sweep"]["cache"]["misses"] == 0
        experiment_hits = sum(
            row["cache"]["store_hits"] for row in warm["experiments"]
        )
        assert experiment_hits > 0

    def test_warm_run_is_bit_identical(self, smoke_reports):
        cold, warm = smoke_reports
        assert cold["sweep"]["digest"] == warm["sweep"]["digest"]

    def test_warm_run_is_not_slower(self, smoke_reports):
        cold, warm = smoke_reports
        # The acceptance threshold (>= 2x) is asserted under the benchmark
        # harness; here we only require the warm path not to regress, which
        # keeps the unit test robust on loaded CI machines.
        assert warm["sweep"]["seconds"] <= cold["sweep"]["seconds"]


class TestReportFile:
    def test_write_report_names_file_after_tag(self, tmp_path):
        report = run_bench(tag="unit", store=ResultStore(tmp_path / "s"), smoke=True)
        path = write_report(report, tmp_path)
        assert path.name == report_filename(report) == "BENCH_unit.json"
        assert json.loads(path.read_text())["tag"] == "unit"

    def test_default_tag_is_package_version(self):
        from repro import __version__

        assert default_tag() == f"v{__version__}"

    def test_tag_validation(self):
        with pytest.raises(ConfigurationError):
            run_bench(tag="bad/tag", smoke=True)
        with pytest.raises(ConfigurationError):
            run_bench(tag="", smoke=True)

    def test_summary_mentions_all_sections(self, smoke_reports):
        cold, _ = smoke_reports
        text = summarize_report(cold)
        assert "economics" in text
        assert "goel05" in text
        assert "d695 sweep" in text
        assert "digest" in text
        assert "sidecar scan" in text


class TestBenchCli:
    def test_bench_subcommand_writes_report(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--smoke",
                "--tag",
                "cli",
                "--store",
                str(tmp_path / "store"),
                "--output",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BENCH_cli.json" in out
        report = json.loads((tmp_path / "BENCH_cli.json").read_text())
        assert report["tag"] == "cli"
        assert report["store"]["enabled"] is True

    def test_bench_rejects_bad_tag(self, tmp_path, capsys):
        code = main(["bench", "--smoke", "--tag", "a/b", "--output", str(tmp_path)])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestResultsDigest:
    def test_digest_depends_on_values(self, tmp_path):
        from repro.api import Engine

        grid = bench_sweep_grid(smoke=True)
        results = Engine().run_batch(grid[:2])
        assert results_digest(results) != results_digest(results[:1])
        assert results_digest(results) == results_digest(tuple(results))


class TestCompareReports:
    def test_compare_smoke_reports(self, smoke_reports):
        from repro.bench.runner import compare_reports

        cold, warm = smoke_reports
        text = compare_reports(warm, cold)
        assert "bench compare: cold" in text and "-> warm" in text
        assert "economics" in text
        assert "digests: identical" in text
        assert "x)" in text  # at least one speedup ratio

    def test_regressions_pair_analysis_legs(self, smoke_reports):
        from repro.bench.runner import find_regressions

        cold, warm = smoke_reports
        slow = dict(
            warm,
            analysis=dict(
                warm["analysis"],
                sidecar_scan=dict(warm["analysis"]["sidecar_scan"], seconds=100.0),
            ),
        )
        regressions = find_regressions(slow, cold, 10.0)
        assert any("analysis sidecar scan" in line for line in regressions)
        # Different record counts never pair (the name-new-section rule).
        resized = dict(slow, analysis=dict(slow["analysis"], records=1))
        assert not any(
            "analysis" in line for line in find_regressions(resized, cold, 10.0)
        )

    def test_compare_flags_different_workloads(self, smoke_reports):
        from repro.bench.runner import compare_reports

        cold, warm = smoke_reports
        other = dict(warm, sweep=dict(warm["sweep"], scenarios=99))
        assert "not comparable" in compare_reports(other, cold)

    def test_compare_flags_digest_mismatch(self, smoke_reports):
        from repro.bench.runner import compare_reports

        cold, warm = smoke_reports
        other = dict(warm, sweep=dict(warm["sweep"], digest="deadbeef"))
        assert "digests: DIFFER" in compare_reports(other, cold)

    def test_load_report_roundtrip(self, smoke_reports, tmp_path):
        from repro.bench.runner import load_report, write_report

        cold, _ = smoke_reports
        path = write_report(cold, tmp_path)
        assert load_report(path)["tag"] == "cold"

    def test_load_report_rejects_non_reports(self, tmp_path):
        from repro.bench.runner import load_report
        from repro.core.exceptions import ConfigurationError

        missing = tmp_path / "nope.json"
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_report(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_report(bad)
        empty = tmp_path / "empty.json"
        empty.write_text("{}", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not a bench report"):
            load_report(empty)

    def test_committed_seed_baseline_loads(self):
        from pathlib import Path

        from repro.bench.runner import load_report

        seed_path = Path(__file__).resolve().parents[1] / "BENCH_seed.json"
        assert seed_path.is_file(), "BENCH_seed.json baseline missing from the repo root"
        seed = load_report(seed_path)
        assert seed["tag"] == "seed"
        assert seed["sweep"]["scenarios"] >= 4

    def test_bench_sweep_grid_objective_axis(self):
        grid = bench_sweep_grid(smoke=True, objective="cost_per_good_die")
        assert all(s.objective == "cost_per_good_die" for s in grid)
        # The default-objective grid keeps its pre-objective digests.
        default = bench_sweep_grid(smoke=True)
        assert all(len(s.canonical_key()) == 4 for s in default)


class TestKernelCounters:
    def test_every_section_records_kernel_counters(self, smoke_reports):
        cold, _ = smoke_reports
        for row in cold["experiments"]:
            assert set(row["evaluate_kernel"]) == {
                "hits", "misses", "batch_calls", "batch_points", "max_batch",
            }
        for row in cold["solvers"]:
            if "skipped" not in row:
                assert "evaluate_kernel" in row
        assert cold["sweep"]["evaluate_kernel"]["misses"] >= 0
        assert cold["synthetic_sweep"]["evaluate_kernel"]["misses"] > 0
        assert cold["evaluate_kernel"]["batch_calls"] > 0

    def test_summary_prints_kernel_totals(self, smoke_reports):
        cold, _ = smoke_reports
        text = summarize_report(cold)
        assert "evaluate kernel:" in text
        assert "synthetic sweep (cold):" in text


class TestSyntheticSweep:
    def test_smoke_grid_size(self):
        from repro.bench.runner import synthetic_sweep_grid

        assert len(synthetic_sweep_grid(smoke=True)) == 16

    def test_full_grid_size(self):
        from repro.bench.runner import synthetic_sweep_grid

        assert len(synthetic_sweep_grid(smoke=False)) == 1000

    def test_section_shape(self, smoke_reports):
        cold, warm = smoke_reports
        section = cold["synthetic_sweep"]
        assert section["scenarios"] == 16
        assert section["seconds"] > 0
        assert len(section["digest"]) == 64
        # The synthetic sweep is always cold (caches cleared, no store), so
        # the warm report must reproduce the digest by recomputation.
        assert warm["synthetic_sweep"]["digest"] == section["digest"]
        assert warm["synthetic_sweep"]["cache"]["store_hits"] == 0


class TestNoiseFloor:
    @staticmethod
    def _reports(before, after):
        previous = {"experiments": [{"name": "x", "seconds": before}], "solvers": []}
        current = {"experiments": [{"name": "x", "seconds": after}], "solvers": []}
        return current, previous

    def test_default_floor_ignores_sub_50ms_workloads(self):
        from repro.bench.runner import find_regressions

        current, previous = self._reports(0.010, 0.040)
        assert find_regressions(current, previous, 10.0) == []

    def test_custom_floor_catches_fast_workloads(self):
        from repro.bench.runner import find_regressions

        current, previous = self._reports(0.010, 0.040)
        regressions = find_regressions(
            current, previous, 10.0, noise_floor_seconds=0.005
        )
        assert len(regressions) == 1
        assert "experiment x" in regressions[0]

    def test_raised_floor_silences_regressions(self):
        from repro.bench.runner import find_regressions

        current, previous = self._reports(0.2, 0.9)
        assert find_regressions(current, previous, 10.0, noise_floor_seconds=1.0) == []
        assert len(find_regressions(current, previous, 10.0)) == 1

    def test_negative_floor_rejected(self):
        from repro.bench.runner import find_regressions

        current, previous = self._reports(0.2, 0.9)
        with pytest.raises(ConfigurationError, match="noise floor"):
            find_regressions(current, previous, 10.0, noise_floor_seconds=-0.1)

    def test_cli_noise_floor_flag(self, tmp_path, capsys):
        baseline = run_bench(tag="base", smoke=True)
        write_report(baseline, tmp_path)
        code = main(
            [
                "bench",
                "--smoke",
                "--tag",
                "next",
                "--output",
                str(tmp_path),
                "--compare",
                str(tmp_path / "BENCH_base.json"),
                "--fail-on-regression",
                "1000000",
                "--noise-floor",
                "100",
            ]
        )
        assert code == 0
        assert "perf ratchet passed" in capsys.readouterr().out

    def test_cli_rejects_negative_noise_floor(self, tmp_path, capsys):
        code = main(
            ["bench", "--smoke", "--output", str(tmp_path), "--noise-floor", "-5"]
        )
        assert code == 1
        assert "noise-floor" in capsys.readouterr().err


class TestProfile:
    def test_format_profile_is_deterministic_given_stats(self):
        import cProfile
        import pstats

        from repro.bench.runner import format_profile

        profiler = cProfile.Profile()
        profiler.enable()
        sum(range(1000))
        profiler.disable()
        stats = pstats.Stats(profiler)
        first = format_profile(stats)
        second = format_profile(stats)
        assert first == second
        assert first.splitlines()[0].startswith("profile: top")

    def test_normalise_profile_path(self):
        from repro.bench.runner import _normalise_profile_path

        assert _normalise_profile_path(
            "/home/me/checkout/src/repro/bench/runner.py"
        ) == "repro/bench/runner.py"
        assert _normalise_profile_path(
            "/usr/lib/python3.11/site-packages/numpy/core/x.py"
        ) == "numpy/core/x.py"
        assert _normalise_profile_path("~") == "~"

    def test_cli_profile_prints_table_and_writes_stats(self, tmp_path, capsys):
        out_file = tmp_path / "bench.prof"
        code = main(
            [
                "bench",
                "--smoke",
                "--tag",
                "prof",
                "--output",
                str(tmp_path),
                "--profile",
                "--profile-out",
                str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile: top" in out
        assert "cumtime" in out
        assert out_file.is_file()
        import pstats

        pstats.Stats(str(out_file))  # the dump must be loadable
