"""Unit tests for the LPT / BFD partitioning heuristics and cell spreading."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.wrapper.partition import (
    best_partition,
    bfd_partition,
    lpt_partition,
    spread_cells,
)


class TestLpt:
    def test_simple_case(self):
        partition = lpt_partition([5, 4, 3, 2], 2)
        assert partition.makespan == 7
        assert partition.num_items == 4

    def test_single_bin_sums_everything(self):
        partition = lpt_partition([3, 1, 4], 1)
        assert partition.makespan == 8
        assert partition.loads == (8,)

    def test_more_bins_than_items(self):
        partition = lpt_partition([9, 2], 5)
        assert partition.makespan == 9
        assert partition.num_bins == 5

    def test_empty_items(self):
        partition = lpt_partition([], 3)
        assert partition.makespan == 0
        assert partition.num_items == 0

    def test_all_items_placed_exactly_once(self):
        sizes = [7, 3, 3, 2, 2, 2, 1]
        partition = lpt_partition(sizes, 3)
        placed = sorted(index for bin_items in partition.bins for index in bin_items)
        assert placed == list(range(len(sizes)))

    def test_loads_match_assignment(self):
        sizes = [6, 5, 4, 3, 2]
        partition = lpt_partition(sizes, 2)
        for bin_items, load in zip(partition.bins, partition.loads):
            assert sum(sizes[index] for index in bin_items) == load

    def test_zero_bins_rejected(self):
        with pytest.raises(ConfigurationError):
            lpt_partition([1], 0)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            lpt_partition([1, -2], 2)


class TestBfd:
    def test_simple_case(self):
        partition = bfd_partition([5, 4, 3, 2], 2)
        assert partition.makespan >= 7  # 7 is optimal

    def test_all_items_placed(self):
        sizes = [8, 7, 6, 5, 4, 3, 2, 1]
        partition = bfd_partition(sizes, 3)
        assert partition.num_items == len(sizes)

    def test_loads_consistent(self):
        sizes = [9, 9, 8, 1, 1, 1]
        partition = bfd_partition(sizes, 3)
        for bin_items, load in zip(partition.bins, partition.loads):
            assert sum(sizes[index] for index in bin_items) == load

    def test_makespan_lower_bound(self):
        sizes = [10, 10, 10, 1]
        partition = bfd_partition(sizes, 3)
        assert partition.makespan >= max(sizes)
        assert partition.makespan >= sum(sizes) / 3


class TestBestPartition:
    def test_best_is_at_least_as_good_as_either(self):
        sizes = [13, 11, 7, 7, 5, 3, 2]
        best = best_partition(sizes, 3)
        assert best.makespan <= lpt_partition(sizes, 3).makespan
        assert best.makespan <= bfd_partition(sizes, 3).makespan

    def test_known_optimum(self):
        # 4+4, 3+5 -> makespan 8 is optimal.
        assert best_partition([5, 4, 4, 3], 2).makespan == 8


class TestSpreadCells:
    def test_doc_example(self):
        assert spread_cells([5, 1, 1], 4) == (0, 2, 2)

    def test_zero_cells(self):
        assert spread_cells([3, 2], 0) == (0, 0)

    def test_total_added_equals_cells(self):
        added = spread_cells([4, 0, 7, 2], 13)
        assert sum(added) == 13

    def test_minimises_maximum(self):
        base = [4, 0, 7, 2]
        added = spread_cells(base, 13)
        final = [b + a for b, a in zip(base, added)]
        # Optimal water level: total = 13 + 13 = 26 over 4 bins -> ceil 7.
        assert max(final) == 7

    def test_empty_chains_rejected(self):
        with pytest.raises(ConfigurationError):
            spread_cells([], 3)

    def test_negative_cells_rejected(self):
        with pytest.raises(ConfigurationError):
            spread_cells([1], -1)

    def test_large_cell_count_matches_greedy(self):
        base = [10, 3, 0, 5]
        cells = 1234
        added = spread_cells(base, cells)
        final = [b + a for b, a in zip(base, added)]
        assert sum(added) == cells
        # Water level property: all bins within 1 of each other unless they
        # started above the level.
        level = max(final)
        assert all(value >= level - 1 or base[i] > level for i, value in enumerate(final))

    def test_matches_unit_greedy_reference(self):
        base = [2, 9, 4, 4, 0]
        cells = 17
        added = spread_cells(base, cells)
        # Reference greedy implementation.
        loads = list(base)
        reference = [0] * len(base)
        for _ in range(cells):
            target = min(range(len(loads)), key=lambda b: (loads[b], b))
            loads[target] += 1
            reference[target] += 1
        final_fast = [b + a for b, a in zip(base, added)]
        final_ref = [b + a for b, a in zip(base, reference)]
        assert max(final_fast) == max(final_ref)
        assert sum(added) == sum(reference)
