"""Unit tests for repro.tam.architecture."""

import pytest

from repro.core.exceptions import ConfigurationError, InvalidSocError
from repro.soc.builder import SocBuilder
from repro.tam.architecture import TestArchitecture
from repro.tam.channel_group import ChannelGroup


@pytest.fixture
def soc():
    return (
        SocBuilder("s")
        .add_module("a", 4, 4, 0, [60, 40], 20)
        .add_module("b", 8, 2, 0, [30, 30, 30], 15)
        .add_module("c", 2, 2, 0, [10], 5)
        .build()
    )


def _architecture(soc, depth=10_000):
    groups = (
        ChannelGroup(index=0, width=2, modules=(soc.module("a"), soc.module("c"))),
        ChannelGroup(index=1, width=1, modules=(soc.module("b"),)),
    )
    return TestArchitecture(soc=soc, groups=groups, depth=depth)


class TestConstruction:
    def test_valid_architecture(self, soc):
        arch = _architecture(soc)
        assert arch.num_groups == 2

    def test_missing_module_rejected(self, soc):
        groups = (ChannelGroup(0, 2, (soc.module("a"),)),)
        with pytest.raises(InvalidSocError, match="not assigned"):
            TestArchitecture(soc=soc, groups=groups, depth=1000)

    def test_duplicate_assignment_rejected(self, soc):
        groups = (
            ChannelGroup(0, 2, (soc.module("a"), soc.module("b"), soc.module("c"))),
            ChannelGroup(1, 1, (soc.module("a"),)),
        )
        with pytest.raises(InvalidSocError, match="more than one"):
            TestArchitecture(soc=soc, groups=groups, depth=1000)

    def test_unknown_module_rejected(self, soc):
        from repro.soc.module import make_module

        stranger = make_module("zz", 1, 1, 0, [5], 2)
        groups = (
            ChannelGroup(0, 2, (soc.module("a"), soc.module("b"), soc.module("c"), stranger)),
        )
        with pytest.raises(InvalidSocError, match="unknown"):
            TestArchitecture(soc=soc, groups=groups, depth=1000)

    def test_empty_groups_rejected(self, soc):
        with pytest.raises(ConfigurationError):
            TestArchitecture(soc=soc, groups=(), depth=1000)

    def test_nonpositive_depth_rejected(self, soc):
        groups = (ChannelGroup(0, 1, tuple(soc.modules)),)
        with pytest.raises(ConfigurationError):
            TestArchitecture(soc=soc, groups=groups, depth=0)


class TestDerivedQuantities:
    def test_total_width_and_channels(self, soc):
        arch = _architecture(soc)
        assert arch.total_width == 3
        assert arch.ate_channels == 6

    def test_test_time_is_max_fill(self, soc):
        arch = _architecture(soc)
        assert arch.test_time_cycles == max(group.fill for group in arch.groups)

    def test_fills_in_group_order(self, soc):
        arch = _architecture(soc)
        assert arch.fills == tuple(group.fill for group in arch.groups)

    def test_fits_depth(self, soc):
        arch = _architecture(soc, depth=10**7)
        assert arch.fits_depth
        tight = _architecture(soc, depth=arch.test_time_cycles - 1)
        assert not tight.fits_depth

    def test_free_memory_total(self, soc):
        arch = _architecture(soc, depth=10**5)
        expected = sum(group.free_memory(10**5) for group in arch.groups)
        assert arch.free_memory == expected

    def test_group_of(self, soc):
        arch = _architecture(soc)
        assert arch.group_of("b").index == 1
        with pytest.raises(KeyError):
            arch.group_of("nope")

    def test_describe_lists_groups(self, soc):
        text = _architecture(soc).describe()
        assert "group 0" in text and "group 1" in text


class TestFunctionalUpdates:
    def test_with_group_width(self, soc):
        arch = _architecture(soc)
        widened = arch.with_group_width(0, 5)
        assert widened.groups[0].width == 5
        assert widened.groups[1].width == arch.groups[1].width
        assert arch.groups[0].width == 2  # original untouched

    def test_with_groups_revalidates(self, soc):
        arch = _architecture(soc)
        with pytest.raises(InvalidSocError):
            arch.with_groups((arch.groups[0],))
