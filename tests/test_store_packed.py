"""Tests for the packed store backend, migration, and the store factory."""

import json
import time

import pytest

from repro.api import Engine, Scenario, TestCell
from repro.ate.spec import AteSpec
from repro.cli import main
from repro.core.exceptions import ConfigurationError, StoreError
from repro.core.units import kilo_vectors
from repro.store import (
    PACKED_MANIFEST,
    PackedResultStore,
    ResultStore,
    is_packed,
    make_record,
    migrate_store,
    open_store,
)
from repro.store.serialize import encode_result


@pytest.fixture(scope="module")
def solved():
    """Two solved scenarios over the tiny SOC (computed once per module)."""
    from repro.soc.builder import SocBuilder

    soc = (
        SocBuilder("tiny", functional_pins=64)
        .add_module("alpha", inputs=8, outputs=8, bidirs=0,
                    scan_lengths=[100, 100, 90], patterns=50)
        .add_module("beta", inputs=16, outputs=4, bidirs=2,
                    scan_lengths=[200, 150], patterns=120)
        .build()
    )
    engine = Engine()
    outcomes = []
    for channels in (48, 64):
        cell = TestCell(
            ate=AteSpec(channels=channels, depth=kilo_vectors(32), frequency_hz=10e6)
        )
        scenario = Scenario(soc=soc, test_cell=cell)
        outcomes.append((scenario, engine.run(scenario).result))
    return outcomes


class TestPackedRoundTrip:
    def test_put_get_round_trip(self, tmp_path, solved):
        store = PackedResultStore(tmp_path / "packed")
        for scenario, result in solved:
            store.put(scenario, result)
        for scenario, result in solved:
            assert scenario in store
            assert store.get(scenario) == result
        assert len(store) == len(solved)
        assert (tmp_path / "packed" / PACKED_MANIFEST).is_file()

    def test_miss_on_empty_store(self, tmp_path, solved):
        store = PackedResultStore(tmp_path / "packed")
        scenario, _ = solved[0]
        assert store.get(scenario) is None
        info = store.info()
        assert (info.hits, info.misses, info.corrupt) == (0, 1, 0)
        assert info.backend == "packed"

    def test_put_same_key_supersedes(self, tmp_path, solved):
        store = PackedResultStore(tmp_path / "packed")
        scenario, result = solved[0]
        store.put(scenario, result)
        store.put(scenario, result)
        assert len(store) == 1
        assert store.get(scenario) == result
        # The superseded line is dead bytes, visible in segment stats.
        (stat,) = store.segment_stats()
        assert stat.records == 1
        assert stat.dead_bytes > 0

    def test_records_and_scan_sorted_by_key(self, tmp_path, solved):
        store = PackedResultStore(tmp_path / "packed")
        for scenario, result in solved:
            store.put(scenario, result)
        keys = [entry.key for entry in store.scan()]
        assert keys == sorted(keys)
        assert [entry.key for entry, _ in store.records()] == keys

    def test_rejects_legacy_directory(self, tmp_path, solved):
        legacy = ResultStore(tmp_path / "legacy")
        scenario, result = solved[0]
        legacy.put(scenario, result)
        with pytest.raises(ConfigurationError, match="store migrate"):
            PackedResultStore(tmp_path / "legacy")

    def test_rejects_path_escaping_record_key(self, tmp_path):
        store = PackedResultStore(tmp_path / "packed")
        with pytest.raises(StoreError, match="plain token"):
            store.put_record({"format": 1, "key": "../evil", "result": {}})

    def test_evict_then_compact_reclaims(self, tmp_path, solved):
        store = PackedResultStore(tmp_path / "packed")
        for scenario, result in solved:
            store.put(scenario, result)
        (evicted_scenario, _), (kept_scenario, kept_result) = solved
        assert store.evict([evicted_scenario.digest]) == 1
        assert len(store) == 1
        stats = store.compact()
        assert stats.records == 1
        assert stats.bytes_reclaimed > 0
        assert store.get(evicted_scenario) is None
        assert store.get(kept_scenario) == kept_result

    def test_orphans_detected_and_reindex_recovers(self, tmp_path, solved):
        store = PackedResultStore(tmp_path / "packed")
        scenario, result = solved[0]
        path = store.put(scenario, result)
        store.close()
        # Truncate the segment under the index: the row becomes an orphan.
        path.write_bytes(path.read_bytes()[:10])
        reopened = PackedResultStore(tmp_path / "packed")
        assert reopened.orphans() == (scenario.digest,)
        assert reopened.get(scenario) is None  # corrupt-record miss
        assert reopened.info().corrupt == 1
        # Reindex from the (truncated) segments drops the unreadable line.
        assert reopened.reindex() == 0
        assert reopened.orphans() == ()


class TestMigration:
    def fill_legacy(self, root, solved):
        legacy = ResultStore(root)
        for scenario, result in solved:
            legacy.put(scenario, result)
        return legacy

    def test_in_place_migration_preserves_everything(self, tmp_path, solved):
        root = tmp_path / "store"
        self.fill_legacy(root, solved)
        before = {s.digest: r for s, r in solved}
        report = migrate_store(root)
        assert report.in_place
        assert report.migrated == len(solved)
        assert report.corrupt == 0
        assert is_packed(root)
        assert not list(root.glob("*.json"))  # legacy files gone
        packed = open_store(root)
        assert isinstance(packed, PackedResultStore)
        for scenario, result in solved:
            assert packed.get(scenario) == result
        assert {e.key for e in packed.scan()} == set(before)

    def test_migration_to_destination_keeps_source(self, tmp_path, solved):
        source = tmp_path / "legacy"
        self.fill_legacy(source, solved)
        destination = tmp_path / "packed"
        report = migrate_store(source, destination=destination)
        assert not report.in_place
        assert len(list(source.glob("*.json"))) == len(solved)
        assert is_packed(destination)
        assert len(open_store(destination)) == len(solved)

    def test_migration_skips_corrupt_records(self, tmp_path, solved):
        root = tmp_path / "store"
        self.fill_legacy(root, solved)
        (root / ("0" * 64 + ".json")).write_text("{not json")
        report = migrate_store(root)
        assert report.migrated == len(solved)
        assert report.corrupt == 1
        # The corrupt file is left behind for inspection, not deleted.
        assert (root / ("0" * 64 + ".json")).exists()

    def test_migrating_a_packed_store_is_rejected(self, tmp_path, solved):
        root = tmp_path / "store"
        self.fill_legacy(root, solved)
        migrate_store(root)
        with pytest.raises(ConfigurationError, match="already"):
            migrate_store(root)

    def test_analyze_is_byte_identical_across_migration(self, tmp_path, solved, capsys):
        root = tmp_path / "store"
        self.fill_legacy(root, solved)
        assert main(["analyze", "--store", str(root)]) == 0
        before = capsys.readouterr().out
        migrate_store(root)
        assert main(["analyze", "--store", str(root)]) == 0
        after = capsys.readouterr().out
        assert after == before

    def test_engine_store_hits_after_migration(self, tmp_path, solved):
        root = tmp_path / "store"
        self.fill_legacy(root, solved)
        migrate_store(root)
        engine = Engine(store=str(root))
        for scenario, result in solved:
            assert engine.run(scenario).result == result
        info = engine.cache_info()
        assert info.store_hits == len(solved)
        assert info.misses == 0


class TestOpenStore:
    def test_detects_backends(self, tmp_path, solved):
        legacy_root = tmp_path / "legacy"
        scenario, result = solved[0]
        ResultStore(legacy_root).put(scenario, result)
        assert isinstance(open_store(legacy_root), ResultStore)
        packed_root = tmp_path / "packed"
        PackedResultStore(packed_root).put(scenario, result)
        assert isinstance(open_store(packed_root), PackedResultStore)

    def test_passes_instances_through(self, tmp_path):
        legacy = ResultStore(tmp_path / "legacy")
        packed = PackedResultStore(tmp_path / "packed")
        assert open_store(legacy) is legacy
        assert open_store(packed) is packed

    def test_missing_keys_parity_between_backends(self, tmp_path, solved):
        scenario, result = solved[0]
        absent = "f" * 64
        for root, cls in ((tmp_path / "legacy", ResultStore), (tmp_path / "packed", PackedResultStore)):
            store = cls(root)
            store.put(scenario, result)
            assert store.contains_key(scenario.digest)
            assert not store.contains_key(absent)
            assert store.missing_keys([scenario.digest, absent, absent]) == (absent,)


class TestPackedScale:
    """The packed store at campaign scale: 100k+ records, flat latency."""

    RECORDS = 100_000

    def test_100k_records_sub_second_info_and_flat_lookup(self, tmp_path, solved):
        store = PackedResultStore(tmp_path / "packed")
        scenario, result = solved[0]
        payload = encode_result(result)
        # One real record among a flood of synthetic ones.  The synthetic
        # records share one small payload: this test exercises the *index*,
        # whose cost must not depend on what the segment lines contain.
        store.put(scenario, result)
        batch: list[dict] = []
        for index in range(self.RECORDS):
            batch.append(
                {
                    "format": 1,
                    "key": f"{index:064x}",
                    "scenario": {"soc": f"soc{index % 7}", "solver": "goel05",
                                 "objective": "throughput"},
                    "result": payload if index == 0 else {"synthetic": index},
                }
            )
            if len(batch) == 10_000:
                store.put_records(batch)
                batch.clear()
        if batch:
            store.put_records(batch)
        assert len(store) == self.RECORDS + 1

        started = time.perf_counter()
        info = store.info()
        stats = store.segment_stats()
        breakdown = store.breakdown("soc")
        info_seconds = time.perf_counter() - started
        assert info.size == self.RECORDS + 1
        assert sum(stat.records for stat in stats) == self.RECORDS + 1
        assert sum(breakdown.values()) == self.RECORDS + 1
        assert info_seconds < 1.0, f"store info took {info_seconds:.3f}s"

        started = time.perf_counter()
        assert store.get(scenario) == result
        get_seconds = time.perf_counter() - started
        assert get_seconds < 0.25, f"indexed get took {get_seconds:.3f}s"

        probe = [f"{index:064x}" for index in range(0, self.RECORDS, self.RECORDS // 500)]
        started = time.perf_counter()
        assert store.missing_keys(probe) == ()
        query_seconds = time.perf_counter() - started
        assert query_seconds < 0.5, f"batch presence query took {query_seconds:.3f}s"


class TestStoreCli:
    def test_store_info_on_packed_store(self, tmp_path, solved, capsys):
        root = tmp_path / "store"
        store = PackedResultStore(root)
        for scenario, result in solved:
            store.put(scenario, result)
        assert main(["store", "info", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "backend: packed" in out
        assert "segments: 1" in out
        assert "by SOC: tiny=2" in out
        assert "orphaned" not in out

    def test_store_info_flags_orphans(self, tmp_path, solved, capsys):
        root = tmp_path / "store"
        store = PackedResultStore(root)
        scenario, result = solved[0]
        path = store.put(scenario, result)
        store.close()
        path.write_bytes(b"")
        assert main(["store", "info", "--store", str(root)]) == 0
        assert "orphaned: 1" in capsys.readouterr().out

    def test_store_migrate_and_compact_cli(self, tmp_path, solved, capsys):
        root = tmp_path / "store"
        legacy = ResultStore(root)
        for scenario, result in solved:
            legacy.put(scenario, result)
        assert main(["store", "migrate", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert f"migrated {root} in place: {len(solved)} record(s)" in out
        assert main(["store", "compact", "--store", str(root)]) == 0
        assert "compacted:" in capsys.readouterr().out

    def test_store_compact_rejects_legacy_store(self, tmp_path, solved, capsys):
        root = tmp_path / "store"
        scenario, result = solved[0]
        ResultStore(root).put(scenario, result)
        assert main(["store", "compact", "--store", str(root)]) == 1
        assert "not a packed store" in capsys.readouterr().err

    def test_sweep_works_over_packed_store(self, tmp_path, capsys):
        root = tmp_path / "store"
        args = ["sweep", "synthetic:7:4", "--channels", "48", "64",
                "--depth-m", "1", "--store", str(root), "--output",
                str(tmp_path / "out.jsonl")]
        assert main(["store", "migrate", "--store", str(root)]) == 1  # nothing to migrate yet
        capsys.readouterr()
        PackedResultStore(root)  # initialise an empty packed store
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "2 computed, 0 from store" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 computed, 2 from store" in second
