"""Tests of the simulated-annealing backend's machinery.

The cross-solver contract (feasibility, determinism, bound soundness,
never-worse-than-goel05) lives in ``test_solver_invariants.py``; this file
pins the annealer's own pieces: the cooling schedule, the Metropolis
acceptance rule, knob validation, and move reversibility through the
evaluation kernel's memo.
"""

import pytest

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.core.units import kilo_vectors
from repro.solvers import evaluate
from repro.solvers.problem import make_problem
from repro.solvers.registry import solve
from repro.solvers.simulated_annealing import (
    DEFAULT_COOLING,
    DEFAULT_MOVES_PER_TEMP,
    DEFAULT_RESTARTS,
    DEFAULT_SEED,
    DEFAULT_TEMPERATURE,
    KNOB_NAMES,
    MIN_TEMPERATURE,
    _parse_knobs,
    acceptance_probability,
    cooling_schedule,
    solve_annealed,
)


class TestCoolingSchedule:
    def test_ladder_is_geometric(self):
        ladder = cooling_schedule(temperature=2.0, cooling=0.5)
        assert ladder[0] == 2.0
        for before, after in zip(ladder, ladder[1:]):
            assert after == pytest.approx(before * 0.5)

    def test_ladder_stops_at_the_minimum_temperature(self):
        ladder = cooling_schedule(temperature=1.0, cooling=0.5, min_temperature=0.1)
        assert all(level > 0.1 for level in ladder)
        assert ladder[-1] * 0.5 <= 0.1

    def test_defaults_produce_a_nontrivial_ladder(self):
        ladder = cooling_schedule()
        assert ladder[0] == DEFAULT_TEMPERATURE
        assert len(ladder) > 10
        assert all(level > MIN_TEMPERATURE for level in ladder)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError, match="temperature"):
            cooling_schedule(temperature=0.0)
        with pytest.raises(ConfigurationError, match="cooling"):
            cooling_schedule(cooling=1.0)
        with pytest.raises(ConfigurationError, match="cooling"):
            cooling_schedule(cooling=0.0)
        with pytest.raises(ConfigurationError, match="minimum temperature"):
            cooling_schedule(min_temperature=0.0)


class TestAcceptanceRule:
    def test_improvements_always_accepted(self):
        assert acceptance_probability(0.0, temperature=1.0, scale=100.0) == 1.0
        assert acceptance_probability(5.0, temperature=1e-9, scale=100.0) == 1.0

    def test_degenerates_to_greedy_at_zero_temperature(self):
        # T -> 0: worsening moves are never accepted, improvements always.
        assert acceptance_probability(-1e-12, temperature=0.0, scale=1.0) == 0.0
        assert acceptance_probability(-100.0, temperature=0.0, scale=1.0) == 0.0
        assert acceptance_probability(100.0, temperature=0.0, scale=1.0) == 1.0

    def test_probability_rises_with_temperature(self):
        probabilities = [
            acceptance_probability(-10.0, temperature, scale=100.0)
            for temperature in (0.01, 0.1, 1.0, 10.0)
        ]
        assert probabilities == sorted(probabilities)
        assert 0.0 < probabilities[0] < probabilities[-1] < 1.0

    def test_scale_normalises_the_objective_magnitude(self):
        # A 1% worsening is equally acceptable at any objective magnitude.
        small = acceptance_probability(-1.0, temperature=0.5, scale=100.0)
        large = acceptance_probability(-1e6, temperature=0.5, scale=1e8)
        assert small == pytest.approx(large)

    def test_huge_worsening_underflows_to_zero(self):
        assert acceptance_probability(-1e9, temperature=1e-6, scale=1.0) == 0.0


class TestKnobParsing:
    def test_defaults_when_no_options(self, tiny_problem):
        knobs = _parse_knobs(tiny_problem)
        assert knobs == {
            "temperature": DEFAULT_TEMPERATURE,
            "cooling": DEFAULT_COOLING,
            "moves_per_temp": DEFAULT_MOVES_PER_TEMP,
            "restarts": DEFAULT_RESTARTS,
            "seed": DEFAULT_SEED,
        }

    def test_options_override_defaults(self, tiny_soc, small_ate):
        problem = make_problem(
            tiny_soc, small_ate, solver_options=(("restarts", 3), ("temperature", 2))
        )
        knobs = _parse_knobs(problem)
        assert knobs["restarts"] == 3
        assert knobs["temperature"] == 2.0
        assert isinstance(knobs["temperature"], float)

    def test_unknown_option_rejected(self, tiny_soc, small_ate):
        problem = make_problem(tiny_soc, small_ate, solver_options=(("reheat", 1),))
        with pytest.raises(ConfigurationError, match="unknown simulated_annealing"):
            _parse_knobs(problem)

    def test_wrong_types_rejected(self, tiny_soc, small_ate):
        for options in (
            (("temperature", "hot"),),
            (("temperature", True),),
            (("moves_per_temp", 2.5),),
            (("restarts", False),),
        ):
            problem = make_problem(tiny_soc, small_ate, solver_options=options)
            with pytest.raises(ConfigurationError, match="SA option"):
                _parse_knobs(problem)

    def test_out_of_range_counts_rejected(self, tiny_soc, small_ate):
        for name in ("moves_per_temp", "restarts"):
            problem = make_problem(tiny_soc, small_ate, solver_options=((name, 0),))
            with pytest.raises(ConfigurationError, match=name):
                _parse_knobs(problem)

    def test_knob_names_cover_the_solve_annealed_signature(self):
        assert set(KNOB_NAMES) == {
            "temperature", "cooling", "moves_per_temp", "restarts", "seed"
        }


class TestMoveReversibility:
    def test_width_move_apply_then_undo_is_identity(self, tiny_problem):
        # The SA width move relies on the kernel memo: undoing a +1 width
        # move must return to the exact starting point, served from cache.
        step1 = solve("goel05", tiny_problem).result.step1
        point = evaluate.evaluate_point(
            step1.architecture, 1, step1.ate, step1.probe_station, step1.config
        )
        module = tiny_problem.soc.modules[0]

        moved = evaluate.evaluate_move(point, module, +1)
        assert moved.architecture.group_of(module.name).width == (
            point.architecture.group_of(module.name).width + 1
        )

        before = evaluate.cache_info()
        back = evaluate.evaluate_move(moved, module, -1)
        after = evaluate.cache_info()
        assert back == point
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_shrinking_below_one_wire_rejected(self, tiny_problem):
        step1 = solve("goel05", tiny_problem).result.step1
        point = evaluate.evaluate_point(
            step1.architecture, 1, step1.ate, step1.probe_station, step1.config
        )
        module = tiny_problem.soc.modules[0]
        width = point.architecture.group_of(module.name).width
        with pytest.raises(ConfigurationError, match="positive"):
            evaluate.evaluate_move(point, module, -width)


class TestSolveAnnealed:
    def test_never_worse_than_goel05(self, medium_soc, small_ate):
        problem = make_problem(medium_soc, small_ate.with_depth(kilo_vectors(128)))
        greedy = solve("goel05", problem).result
        annealed = solve_annealed(problem, cooling=0.7, moves_per_temp=8)
        assert annealed.optimal_throughput >= greedy.optimal_throughput

    def test_repeated_runs_are_bit_identical(self, medium_soc, small_ate):
        problem = make_problem(medium_soc, small_ate.with_depth(kilo_vectors(128)))
        first = solve_annealed(problem, cooling=0.7, moves_per_temp=8, restarts=2)
        second = solve_annealed(problem, cooling=0.7, moves_per_temp=8, restarts=2)
        assert first == second

    def test_seed_changes_exploration_not_feasibility(self, medium_soc, small_ate):
        ate = small_ate.with_depth(kilo_vectors(128))
        problem = make_problem(medium_soc, ate)
        for seed in (1, 2, 3):
            result = solve_annealed(problem, cooling=0.7, moves_per_temp=8, seed=seed)
            assert result.step1.channels_per_site <= ate.channels
            for point in result.points:
                assert point.channels_per_site <= ate.channels

    def test_invalid_knobs_rejected(self, tiny_problem):
        with pytest.raises(ConfigurationError, match="cooling"):
            solve_annealed(tiny_problem, cooling=1.5)
        with pytest.raises(ConfigurationError, match="moves_per_temp"):
            solve_annealed(tiny_problem, moves_per_temp=0)
        with pytest.raises(ConfigurationError, match="restart"):
            solve_annealed(tiny_problem, restarts=0)

    def test_infeasible_soc_raises(self, flat_soc, small_ate):
        cramped = small_ate.with_depth(100)
        with pytest.raises(InfeasibleDesignError):
            solve_annealed(make_problem(flat_soc, cramped))

    def test_registry_backend_reads_knobs_from_solver_options(self, tiny_soc, small_ate):
        explicit = solve_annealed(
            make_problem(tiny_soc, small_ate), temperature=0.5, cooling=0.7,
            moves_per_temp=8,
        )
        via_options = solve(
            "simulated_annealing",
            make_problem(
                tiny_soc,
                small_ate,
                solver_options=(
                    ("cooling", 0.7), ("moves_per_temp", 8), ("temperature", 0.5)
                ),
            ),
        )
        assert via_options.result == explicit

    def test_registry_backend_rejects_unknown_options(self, tiny_soc, small_ate):
        problem = make_problem(tiny_soc, small_ate, solver_options=(("reheat", 1),))
        with pytest.raises(ConfigurationError, match="unknown simulated_annealing"):
            solve("simulated_annealing", problem)
