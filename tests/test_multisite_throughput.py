"""Unit tests for the throughput model (Eq. 4.5) and MultiSiteScenario."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.multisite.cost_model import TestTiming
from repro.multisite.throughput import MultiSiteScenario, throughput_per_hour


class TestThroughputPerHour:
    def test_eq45_formula(self):
        assert throughput_per_hour(4, 0.5, 1.5) == pytest.approx(3600 * 4 / 2.0)

    def test_single_site(self):
        assert throughput_per_hour(1, 0.5, 0.5) == pytest.approx(3600)

    def test_scales_linearly_with_sites_at_fixed_time(self):
        single = throughput_per_hour(1, 0.5, 1.0)
        assert throughput_per_hour(8, 0.5, 1.0) == pytest.approx(8 * single)

    def test_shorter_test_time_increases_throughput(self):
        assert throughput_per_hour(2, 0.5, 1.0) > throughput_per_hour(2, 0.5, 2.0)

    def test_invalid_sites(self):
        with pytest.raises(ConfigurationError):
            throughput_per_hour(0, 0.5, 1.0)

    def test_negative_time(self):
        with pytest.raises(ConfigurationError):
            throughput_per_hour(1, -0.1, 1.0)

    def test_zero_total_time(self):
        with pytest.raises(ConfigurationError):
            throughput_per_hour(1, 0.0, 0.0)


class TestMultiSiteScenario:
    @pytest.fixture
    def scenario(self):
        return MultiSiteScenario(
            sites=4,
            timing=TestTiming(0.5, 0.010, 1.5),
            channels_per_site=64,
            contact_yield=0.999,
            manufacturing_yield=0.8,
        )

    def test_plain_test_time(self, scenario):
        assert scenario.test_time_s() == pytest.approx(1.51)

    def test_abort_on_fail_test_time_smaller(self, scenario):
        assert scenario.test_time_s(abort_on_fail=True) <= scenario.test_time_s()

    def test_total_time(self, scenario):
        assert scenario.total_time_s() == pytest.approx(2.01)

    def test_throughput_matches_equation(self, scenario):
        assert scenario.throughput() == pytest.approx(3600 * 4 / 2.01)

    def test_abort_on_fail_increases_throughput(self, scenario):
        assert scenario.throughput(abort_on_fail=True) >= scenario.throughput()

    def test_unique_throughput_below_throughput(self, scenario):
        assert scenario.unique_throughput() <= scenario.throughput()

    def test_unique_throughput_exact_variant(self, scenario):
        assert scenario.unique_throughput(approximate=False) <= scenario.throughput()

    def test_perfect_contact_yield_no_retest_loss(self):
        scenario = MultiSiteScenario(
            sites=2, timing=TestTiming(0.5, 0.01, 1.0), channels_per_site=32,
        )
        assert scenario.unique_throughput() == pytest.approx(scenario.throughput())

    def test_describe(self, scenario):
        assert "4 sites" in scenario.describe()

    def test_invalid_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiSiteScenario(sites=0, timing=TestTiming(0.5, 0.01, 1.0), channels_per_site=8)

    def test_invalid_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiSiteScenario(sites=1, timing=TestTiming(0.5, 0.01, 1.0), channels_per_site=0)

    def test_invalid_yields_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiSiteScenario(sites=1, timing=TestTiming(0.5, 0.01, 1.0),
                              channels_per_site=8, contact_yield=2.0)
        with pytest.raises(ConfigurationError):
            MultiSiteScenario(sites=1, timing=TestTiming(0.5, 0.01, 1.0),
                              channels_per_site=8, manufacturing_yield=-0.5)
