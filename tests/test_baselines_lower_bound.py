"""Unit tests for the theoretical channel lower bound."""

import math

import pytest

from repro.baselines.lower_bound import channel_lower_bound, module_min_feasible_area
from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.core.units import kilo_vectors
from repro.soc.builder import SocBuilder
from repro.tam.assignment import design_architecture
from repro.wrapper.combine import min_width_for_depth
from repro.wrapper.pareto import pareto_points


class TestModuleMinFeasibleArea:
    def test_feasible_area_at_least_global_min(self, tiny_soc):
        module = tiny_soc.modules[0]
        depth = 10_000
        area = module_min_feasible_area(module, depth, 32)
        assert area >= min(point.area for point in pareto_points(module, 32))

    def test_only_feasible_points_considered(self):
        module = (
            SocBuilder("s").add_module("m", 0, 0, 0, [100, 100], 10).build().modules[0]
        )
        # Width 2 time = 1110 cycles; at depth 1110 the width-1 point (2210)
        # is infeasible, so the area must be the width-2 one.
        assert module_min_feasible_area(module, 1110, 8) == 2 * 1110


class TestChannelLowerBound:
    def test_bound_is_even(self, medium_soc):
        bound = channel_lower_bound(medium_soc, 250_000, 64)
        assert bound.ate_channels % 2 == 0

    def test_width_bound_matches_widest_module(self, medium_soc):
        depth = 250_000
        bound = channel_lower_bound(medium_soc, depth, 64)
        expected = max(
            min_width_for_depth(module, depth, 32) for module in medium_soc.modules
        )
        assert bound.width_bound == expected

    def test_area_bound_formula(self, medium_soc):
        depth = 250_000
        bound = channel_lower_bound(medium_soc, depth, 64)
        total = sum(
            module_min_feasible_area(module, depth, 32) for module in medium_soc.modules
        )
        assert bound.area_bound == math.ceil(total / depth)

    def test_step1_never_beats_lower_bound(self, medium_soc, d695):
        cases = [
            (medium_soc, 64, 250_000),
            (medium_soc, 128, 400_000),
            (d695, 256, kilo_vectors(48)),
            (d695, 256, kilo_vectors(96)),
            (d695, 1024, kilo_vectors(128)),
        ]
        for soc, channels, depth in cases:
            bound = channel_lower_bound(soc, depth, channels)
            architecture = design_architecture(soc, channels, depth)
            assert architecture.ate_channels >= bound.ate_channels

    def test_d695_matches_paper_values(self, d695):
        # Lower bounds published in the paper's Table 1 for d695.
        expectations = {48: 28, 64: 22, 96: 14, 128: 12}
        for depth_k, expected in expectations.items():
            bound = channel_lower_bound(d695, kilo_vectors(depth_k), 256)
            assert bound.ate_channels == expected

    def test_deeper_memory_never_raises_bound(self, d695):
        shallow = channel_lower_bound(d695, kilo_vectors(48), 256)
        deep = channel_lower_bound(d695, kilo_vectors(128), 256)
        assert deep.ate_channels <= shallow.ate_channels

    def test_infeasible_module_raises(self):
        soc = SocBuilder("s").add_module("huge", 0, 0, 0, [5000] * 4, 5000).build()
        with pytest.raises(InfeasibleDesignError):
            channel_lower_bound(soc, 1000, 8)

    def test_invalid_parameters(self, tiny_soc):
        with pytest.raises(ConfigurationError):
            channel_lower_bound(tiny_soc, 0, 64)
        with pytest.raises(ConfigurationError):
            channel_lower_bound(tiny_soc, 1000, 1)
