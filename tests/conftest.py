"""Shared fixtures for the test suite.

The fixtures deliberately use *small* SOCs and ATEs so the full suite stays
fast; the synthetic PNX8550 (274 modules) is only touched by a handful of
dedicated tests and by the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.ate.probe_station import ProbeStation
from repro.ate.spec import AteSpec
from repro.core.units import kilo_vectors
from repro.itc02.registry import load_benchmark
from repro.soc.builder import SocBuilder
from repro.soc.soc import Soc
from repro.solvers.problem import TestInfraProblem


@pytest.fixture
def tiny_soc() -> Soc:
    """A three-module SOC small enough for exhaustive checks."""
    return (
        SocBuilder("tiny", functional_pins=64)
        .add_module("alpha", inputs=8, outputs=8, bidirs=0,
                    scan_lengths=[100, 100, 90], patterns=50)
        .add_module("beta", inputs=16, outputs=4, bidirs=2,
                    scan_lengths=[200, 150], patterns=120)
        .add_module("gamma", inputs=5, outputs=7, bidirs=0,
                    scan_lengths=[], patterns=30)
        .build()
    )


@pytest.fixture
def medium_soc() -> Soc:
    """A six-module SOC with a mix of large and small cores."""
    builder = SocBuilder("medium", functional_pins=200)
    builder.add_module("big0", inputs=40, outputs=30, bidirs=4,
                       scan_lengths=[400] * 8, patterns=300)
    builder.add_module("big1", inputs=25, outputs=60, bidirs=0,
                       scan_lengths=[350] * 6, patterns=250)
    builder.add_module("mid0", inputs=20, outputs=20, bidirs=2,
                       scan_lengths=[150, 150, 140], patterns=180)
    builder.add_module("mid1", inputs=12, outputs=16, bidirs=0,
                       scan_lengths=[220, 210], patterns=90)
    builder.add_module("small0", inputs=10, outputs=6, bidirs=0,
                       scan_lengths=[64], patterns=40)
    builder.add_module("mem0", inputs=14, outputs=14, bidirs=0,
                       scan_lengths=[], patterns=500, is_memory=True)
    return builder.build()


@pytest.fixture
def flat_soc() -> Soc:
    """A single-module (flattened) SOC -- the paper's Problem 2."""
    return (
        SocBuilder("flat")
        .add_module("top", inputs=64, outputs=48, bidirs=8,
                    scan_lengths=[512] * 12, patterns=400)
        .build()
    )


@pytest.fixture(scope="session")
def d695() -> Soc:
    """The d695 benchmark (loaded once per session)."""
    return load_benchmark("d695")


@pytest.fixture
def small_ate() -> AteSpec:
    """A small ATE: 64 channels, 32 K vectors, 10 MHz."""
    return AteSpec(channels=64, depth=kilo_vectors(32), frequency_hz=10e6, name="ate-small")


@pytest.fixture
def medium_ate() -> AteSpec:
    """A medium ATE: 256 channels, 128 K vectors, 5 MHz."""
    return AteSpec(channels=256, depth=kilo_vectors(128), frequency_hz=5e6, name="ate-medium")


@pytest.fixture
def tiny_problem(tiny_soc, small_ate) -> TestInfraProblem:
    """A solver problem small enough for the exhaustive oracle."""
    return TestInfraProblem(soc=tiny_soc, ate=small_ate)


@pytest.fixture
def probe() -> ProbeStation:
    """The paper's reference probe station with ideal contact yield."""
    return ProbeStation(index_time_s=0.5, contact_test_time_s=0.010, contact_yield=1.0)


@pytest.fixture
def lossy_probe() -> ProbeStation:
    """A probe station with a non-ideal contact yield."""
    return ProbeStation(index_time_s=0.5, contact_test_time_s=0.010, contact_yield=0.999)
