"""Unit tests for Step 1 of the optimisation (maximum multi-site design)."""

import pytest

from repro.ate.spec import AteSpec
from repro.core.exceptions import InfeasibleDesignError
from repro.core.units import kilo_vectors
from repro.optimize.channels import max_sites
from repro.optimize.config import OptimizationConfig
from repro.optimize.step1 import run_step1
from repro.soc.builder import SocBuilder


class TestRunStep1:
    def test_architecture_fits_ate(self, medium_soc, medium_ate, probe):
        result = run_step1(medium_soc, medium_ate, probe)
        assert result.architecture.test_time_cycles <= medium_ate.depth
        assert result.channels_per_site <= medium_ate.channels

    def test_channels_per_site_matches_architecture(self, medium_soc, medium_ate, probe):
        result = run_step1(medium_soc, medium_ate, probe)
        assert result.channels_per_site == result.architecture.ate_channels

    def test_max_sites_consistent_with_channel_arithmetic(self, medium_soc, medium_ate, probe):
        for broadcast in (False, True):
            result = run_step1(
                medium_soc, medium_ate, probe, OptimizationConfig(broadcast=broadcast)
            )
            assert result.max_sites == max_sites(
                medium_ate.channels, result.channels_per_site, broadcast
            )

    def test_broadcast_allows_at_least_as_many_sites(self, medium_soc, medium_ate, probe):
        plain = run_step1(medium_soc, medium_ate, probe, OptimizationConfig(broadcast=False))
        shared = run_step1(medium_soc, medium_ate, probe, OptimizationConfig(broadcast=True))
        assert shared.max_sites >= plain.max_sites

    def test_erpct_matches_channels(self, medium_soc, medium_ate, probe):
        result = run_step1(medium_soc, medium_ate, probe)
        assert result.erpct.ate_channels == result.channels_per_site
        assert result.erpct.internal_tam_width == result.architecture.total_width

    def test_test_time_seconds(self, medium_soc, medium_ate, probe):
        result = run_step1(medium_soc, medium_ate, probe)
        expected = result.test_time_cycles / medium_ate.frequency_hz
        assert result.test_time_seconds == pytest.approx(expected)

    def test_d695_reference_point(self, d695, probe):
        ate = AteSpec(channels=256, depth=kilo_vectors(64), frequency_hz=5e6)
        result = run_step1(d695, ate, probe, OptimizationConfig(broadcast=True))
        # Matches the paper's Table 1 row (64 K): 22 channels, 22 sites.
        assert result.channels_per_site == 22
        assert result.max_sites == 22

    def test_infeasible_soc_raises(self, probe):
        soc = SocBuilder("fat").add_module("m", 0, 0, 0, [4000] * 8, 4000).build()
        ate = AteSpec(channels=16, depth=10_000)
        with pytest.raises(InfeasibleDesignError):
            run_step1(soc, ate, probe)

    def test_describe(self, medium_soc, medium_ate, probe):
        assert "step1" in run_step1(medium_soc, medium_ate, probe).describe()

    def test_default_config_used_when_none(self, medium_soc, medium_ate, probe):
        result = run_step1(medium_soc, medium_ate, probe, None)
        assert result.config == OptimizationConfig()
