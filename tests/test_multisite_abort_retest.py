"""Unit tests for the abort-on-fail (Eq. 4.4) and re-test (Eq. 4.6) models."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.multisite.abort_on_fail import abort_on_fail_saving, abort_on_fail_test_time
from repro.multisite.cost_model import TestTiming
from repro.multisite.retest import contact_fail_rate, retests_per_hour, unique_throughput


@pytest.fixture
def timing():
    return TestTiming(index_time_s=0.5, contact_test_time_s=0.010,
                      manufacturing_test_time_s=1.5)


class TestAbortOnFail:
    def test_perfect_yields_give_full_time(self, timing):
        assert abort_on_fail_test_time(timing, 1.0, 1.0, 64, 1) == pytest.approx(
            timing.test_time_s
        )

    def test_eq44_formula(self, timing):
        p_c, p_m, k, n = 0.999, 0.8, 64, 2
        p_contact = 1 - (1 - p_c ** k) ** n
        p_manu = 1 - (1 - p_m) ** n
        expected = p_contact * (0.010 + p_manu * 1.5)
        assert abort_on_fail_test_time(timing, p_c, p_m, k, n) == pytest.approx(expected)

    def test_never_exceeds_full_test_time(self, timing):
        for sites in (1, 2, 4, 8):
            value = abort_on_fail_test_time(timing, 0.99, 0.7, 64, sites)
            assert value <= timing.test_time_s + 1e-12

    def test_saving_shrinks_with_sites(self, timing):
        savings = [
            abort_on_fail_saving(timing, 1.0, 0.7, 64, sites) for sites in (1, 2, 4, 8)
        ]
        assert all(earlier >= later for earlier, later in zip(savings, savings[1:]))

    def test_saving_negligible_beyond_four_sites_at_70_percent_yield(self, timing):
        # The paper: "the effectiveness of abort-on-fail becomes invisible
        # beyond n >= 4" even at 70% yield.
        assert abort_on_fail_saving(timing, 1.0, 0.7, 64, 4) < 0.02

    def test_single_site_low_yield_saves_a_lot(self, timing):
        assert abort_on_fail_saving(timing, 1.0, 0.7, 64, 1) > 0.25

    def test_zero_sites_rejected(self, timing):
        with pytest.raises(ConfigurationError):
            abort_on_fail_test_time(timing, 1.0, 1.0, 64, 0)

    def test_saving_zero_for_zero_test_time(self):
        timing = TestTiming(0.5, 0.0, 0.0)
        assert abort_on_fail_saving(timing, 0.9, 0.9, 10, 2) == 0.0


class TestContactFailRate:
    def test_approximate_is_linear(self):
        assert contact_fail_rate(0.999, 50, approximate=True) == pytest.approx(0.05)

    def test_approximate_capped_at_one(self):
        assert contact_fail_rate(0.5, 100, approximate=True) == 1.0

    def test_exact_formula(self):
        assert contact_fail_rate(0.999, 50, approximate=False) == pytest.approx(
            1 - 0.999 ** 50
        )

    def test_exact_below_approximate(self):
        # The union bound makes the linearised rate an upper bound.
        exact = contact_fail_rate(0.995, 80, approximate=False)
        approx = contact_fail_rate(0.995, 80, approximate=True)
        assert exact <= approx

    def test_perfect_yield_zero_rate(self):
        assert contact_fail_rate(1.0, 500, approximate=True) == 0.0
        assert contact_fail_rate(1.0, 500, approximate=False) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            contact_fail_rate(1.2, 10)
        with pytest.raises(ConfigurationError):
            contact_fail_rate(0.9, -1)


class TestUniqueThroughput:
    def test_eq46_paper_model(self):
        assert unique_throughput(10_000, 0.999, 40, approximate=True) == pytest.approx(
            10_000 * (1 - 40 * 0.001)
        )

    def test_clamped_at_zero(self):
        assert unique_throughput(10_000, 0.9, 100, approximate=True) == 0.0

    def test_exact_model(self):
        rate = 1 - 0.999 ** 40
        assert unique_throughput(10_000, 0.999, 40, approximate=False) == pytest.approx(
            10_000 / (1 + rate)
        )

    def test_perfect_yield_identity(self):
        assert unique_throughput(12_345, 1.0, 64) == 12_345

    def test_fewer_terminals_means_higher_unique_throughput(self):
        wide = unique_throughput(10_000, 0.999, 100)
        narrow = unique_throughput(10_000, 0.999, 20)
        assert narrow > wide

    def test_retests_per_hour(self):
        assert retests_per_hour(10_000, 0.999, 40) == pytest.approx(400.0)

    def test_negative_throughput_rejected(self):
        with pytest.raises(ConfigurationError):
            unique_throughput(-1, 0.999, 10)
