"""Tests of the shared memoized evaluation kernel (``repro.solvers.evaluate``)."""

import pytest

from repro.multisite.throughput import MultiSiteScenario
from repro.optimize.config import Objective, OptimizationConfig
from repro.optimize.step1 import run_step1
from repro.optimize.step2 import run_step2, step1_only_throughput
from repro.solvers import evaluate
from repro.tam.assignment import design_architecture


@pytest.fixture
def step1(tiny_soc, small_ate, probe):
    return run_step1(tiny_soc, small_ate, probe, OptimizationConfig())


class TestKernel:
    def test_scenario_matches_manual_derivation(self, step1):
        scenario = evaluate.scenario_for(
            step1.architecture, 2, step1.ate, step1.probe_station, step1.config
        )
        assert isinstance(scenario, MultiSiteScenario)
        assert scenario.sites == 2
        assert scenario.channels_per_site == step1.architecture.ate_channels
        assert scenario.timing.manufacturing_test_time_s == pytest.approx(
            step1.ate.cycles_to_seconds(step1.architecture.test_time_cycles)
        )

    def test_objective_switches_with_config(self, step1):
        scenario = evaluate.scenario_for(
            step1.architecture, 2, step1.ate, step1.probe_station, step1.config
        )
        raw = evaluate.objective_value(scenario, OptimizationConfig())
        unique = evaluate.objective_value(
            scenario, OptimizationConfig(objective=Objective.UNIQUE_THROUGHPUT)
        )
        assert raw == pytest.approx(scenario.throughput())
        assert unique == pytest.approx(scenario.unique_throughput())

    def test_point_is_memoised(self, step1):
        evaluate.clear_cache()
        args = (step1.architecture, 3, step1.ate, step1.probe_station, step1.config)
        first = evaluate.evaluate_point(*args)
        before = evaluate.cache_info()
        second = evaluate.evaluate_point(*args)
        after = evaluate.cache_info()
        assert second is first
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_step2_sweep_populates_the_kernel_cache(self, step1):
        evaluate.clear_cache()
        result = run_step2(step1)
        info = evaluate.cache_info()
        assert info.currsize >= len(result.points)
        # Re-running the whole sweep is pure cache hits.
        rerun = run_step2(step1)
        assert rerun == result
        assert evaluate.cache_info().misses == info.misses

    def test_step1_only_throughput_uses_the_kernel(self, step1):
        evaluate.clear_cache()
        value = step1_only_throughput(step1, 1)
        assert value > 0
        repeat = step1_only_throughput(step1, 1)
        assert repeat == value
        info = evaluate.cache_info()
        assert info.hits >= 1

    def test_distinct_designs_do_not_collide(self, tiny_soc, medium_soc, small_ate, probe):
        evaluate.clear_cache()
        config = OptimizationConfig()
        tiny_arch = design_architecture(tiny_soc, small_ate.channels, small_ate.depth)
        deep = small_ate.with_depth(131072)
        medium_arch = design_architecture(medium_soc, deep.channels, deep.depth)
        a = evaluate.evaluate_point(tiny_arch, 2, small_ate, probe, config)
        b = evaluate.evaluate_point(medium_arch, 2, deep, probe, config)
        assert a.objective != b.objective
        assert evaluate.cache_info().misses == 2
