"""Unit tests for the test-schedule (timeline) derivation."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.schedule.timeline import build_schedule
from repro.sim.scan_sim import simulate_architecture
from repro.tam.assignment import design_architecture
from repro.wrapper.combine import module_test_time


@pytest.fixture
def architecture(medium_soc):
    return design_architecture(medium_soc, channels=64, depth=250_000)


@pytest.fixture
def schedule(architecture):
    return build_schedule(architecture)


class TestBuildSchedule:
    def test_every_module_scheduled_once(self, schedule, medium_soc):
        names = [test.module_name for test in schedule.iter_tests()]
        assert sorted(names) == sorted(medium_soc.module_names)

    def test_makespan_equals_architecture_test_time(self, schedule, architecture):
        assert schedule.makespan == architecture.test_time_cycles

    def test_group_end_equals_group_fill(self, schedule, architecture):
        for group, timeline in zip(architecture.groups, schedule.groups):
            assert timeline.end_cycle == group.fill
            assert timeline.width == group.width

    def test_tests_back_to_back_without_overlap(self, schedule):
        for timeline in schedule.groups:
            cursor = 0
            for test in timeline.tests:
                assert test.start_cycle == cursor
                assert test.end_cycle > test.start_cycle
                cursor = test.end_cycle

    def test_durations_match_wrapper_test_times(self, schedule, architecture):
        for group in architecture.groups:
            for module in group.modules:
                scheduled = schedule.tests_for(module.name)
                assert scheduled.duration == module_test_time(module, group.width)
                assert scheduled.width == group.width

    def test_matches_cycle_accurate_simulation(self, schedule, architecture):
        trace = simulate_architecture(architecture)
        assert schedule.makespan == trace.test_time_cycles
        assert schedule.busy_channel_cycles == trace.total_channel_cycles

    def test_unknown_module_lookup(self, schedule):
        with pytest.raises(KeyError):
            schedule.tests_for("nonexistent")


class TestScheduleMetrics:
    def test_memory_utilisation_bounds(self, schedule):
        assert 0.0 < schedule.memory_utilisation() <= 1.0

    def test_ate_utilisation_at_most_memory_utilisation(self, schedule, architecture):
        # Using the whole ATE (more channels than the SOC needs) can only
        # lower the utilisation.
        full = schedule.ate_utilisation(channels=64)
        used_only = schedule.ate_utilisation(channels=architecture.ate_channels)
        assert full <= used_only <= 1.0

    def test_ate_utilisation_invalid_channels(self, schedule):
        with pytest.raises(ConfigurationError):
            schedule.ate_utilisation(0)

    def test_total_width(self, schedule, architecture):
        assert schedule.total_width == architecture.total_width

    def test_single_group_utilisation_is_one(self, flat_soc):
        depth = module_test_time(flat_soc.modules[0], 6)
        architecture = design_architecture(flat_soc, channels=32, depth=depth)
        schedule = build_schedule(architecture)
        assert schedule.memory_utilisation() == pytest.approx(1.0)


class TestGanttRendering:
    def test_render_contains_all_groups(self, schedule):
        text = schedule.render_gantt()
        for timeline in schedule.groups:
            assert f"TAM {timeline.group_index}" in text

    def test_render_mentions_utilisation(self, schedule):
        assert "utilisation" in schedule.render_gantt()

    def test_render_width_validated(self, schedule):
        with pytest.raises(ConfigurationError):
            schedule.render_gantt(width=5)
