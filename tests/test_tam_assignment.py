"""Unit tests for the Step-1 channel-group assignment heuristic."""

import pytest

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.soc.builder import SocBuilder
from repro.tam.assignment import design_architecture, minimum_widths
from repro.wrapper.combine import min_width_for_depth, module_test_time


class TestMinimumWidths:
    def test_matches_per_module_computation(self, medium_soc):
        depth = 250_000
        widths = minimum_widths(medium_soc, depth, 64)
        for module in medium_soc.modules:
            assert widths[module.name] == min_width_for_depth(module, depth, 64)

    def test_invalid_budget_rejected(self, medium_soc):
        with pytest.raises(ConfigurationError):
            minimum_widths(medium_soc, 1000, 0)

    def test_infeasible_module_raises(self):
        soc = SocBuilder("s").add_module("huge", 0, 0, 0, [5000] * 4, 5000).build()
        with pytest.raises(InfeasibleDesignError):
            minimum_widths(soc, 1000, 4)


class TestDesignArchitecture:
    def test_covers_all_modules_once(self, medium_soc):
        arch = design_architecture(medium_soc, channels=64, depth=250_000)
        assigned = [name for group in arch.groups for name in group.module_names]
        assert sorted(assigned) == sorted(medium_soc.module_names)

    def test_respects_depth(self, medium_soc):
        arch = design_architecture(medium_soc, channels=64, depth=250_000)
        assert all(group.fill <= 250_000 for group in arch.groups)

    def test_respects_channel_budget(self, medium_soc):
        arch = design_architecture(medium_soc, channels=64, depth=250_000)
        assert arch.ate_channels <= 64

    def test_channels_even(self, medium_soc):
        arch = design_architecture(medium_soc, channels=64, depth=250_000)
        assert arch.ate_channels % 2 == 0

    def test_deeper_memory_never_needs_more_channels(self, medium_soc):
        shallow = design_architecture(medium_soc, channels=256, depth=150_000)
        deep = design_architecture(medium_soc, channels=256, depth=600_000)
        assert deep.ate_channels <= shallow.ate_channels

    def test_single_module_soc(self, flat_soc):
        depth = module_test_time(flat_soc.modules[0], 6)
        arch = design_architecture(flat_soc, channels=32, depth=depth)
        assert arch.num_groups == 1
        assert arch.total_width <= 6
        assert arch.test_time_cycles <= depth

    def test_tiny_soc_wide_budget_single_group_possible(self, tiny_soc):
        # With a huge depth every module fits a 1-wire TAM.
        arch = design_architecture(tiny_soc, channels=256, depth=10**8)
        assert arch.total_width == 1
        assert arch.num_groups == 1

    def test_infeasible_when_depth_too_small(self):
        soc = SocBuilder("s").add_module("big", 0, 0, 0, [400] * 4, 300).build()
        with pytest.raises(InfeasibleDesignError):
            design_architecture(soc, channels=8, depth=1000)

    def test_infeasible_when_budget_exhausted(self):
        # Each module alone fits, but together they need more than 4 wires.
        builder = SocBuilder("s")
        for index in range(6):
            builder.add_module(f"m{index}", 0, 0, 0, [300, 300], 200)
        soc = builder.build()
        tight_depth = module_test_time(soc.modules[0], 1)  # exactly one module per wire
        with pytest.raises(InfeasibleDesignError):
            design_architecture(soc, channels=8, depth=tight_depth)

    def test_invalid_channel_count(self, tiny_soc):
        with pytest.raises(ConfigurationError):
            design_architecture(tiny_soc, channels=1, depth=1000)

    def test_deterministic(self, medium_soc):
        first = design_architecture(medium_soc, channels=64, depth=250_000)
        second = design_architecture(medium_soc, channels=64, depth=250_000)
        assert first == second

    def test_d695_matches_paper_channel_counts(self, d695):
        # Reference points from the paper's Table 1 (48 K and 128 K rows).
        from repro.core.units import kilo_vectors

        arch48 = design_architecture(d695, channels=256, depth=kilo_vectors(48))
        arch128 = design_architecture(d695, channels=256, depth=kilo_vectors(128))
        assert arch48.ate_channels == 28
        assert arch128.ate_channels == 12
