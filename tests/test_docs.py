"""Docs-sync checks: ARCHITECTURE.md and docs/cli.md track the code.

CI runs these as its docs check.  They keep the two hand-written documents
honest: every CLI sub-command (including the ones generated from the
experiment registry) must be documented, and the architecture overview
must keep describing the layers and extension points that actually exist.
"""

from pathlib import Path

import pytest

from repro.cli import _BUILTIN_COMMANDS, build_parser, experiment_commands
from repro.objectives.registry import list_objectives, objective_names
from repro.solvers.registry import solver_names

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def architecture_text() -> str:
    path = REPO_ROOT / "ARCHITECTURE.md"
    assert path.is_file(), "ARCHITECTURE.md is missing from the repo root"
    return path.read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def cli_doc_text() -> str:
    path = REPO_ROOT / "docs" / "cli.md"
    assert path.is_file(), "docs/cli.md is missing"
    return path.read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def readme_text() -> str:
    path = REPO_ROOT / "README.md"
    assert path.is_file(), "README.md is missing from the repo root"
    return path.read_text(encoding="utf-8")


class TestCliDoc:
    def test_every_subcommand_documented(self, cli_doc_text):
        for name in _BUILTIN_COMMANDS + experiment_commands():
            assert f"`{name}`" in cli_doc_text, (
                f"CLI sub-command {name!r} is registered but not documented in "
                "docs/cli.md -- document it (experiment sub-commands are "
                "generated from the experiment registry)"
            )

    def test_no_phantom_builtins_documented(self, cli_doc_text):
        # The doc's sub-command table links each builtin as [`name`](#name);
        # every such anchor must correspond to a registered sub-command.
        import re

        documented = set(re.findall(r"\[`([a-z_0-9]+)`\]\(#", cli_doc_text))
        registered = set(_BUILTIN_COMMANDS) | set(experiment_commands()) | {"experiment"}
        unknown = documented - registered
        assert not unknown, f"docs/cli.md documents unregistered sub-commands: {unknown}"

    def test_flags_documented(self, cli_doc_text):
        for flag in ("--solver", "--store", "--workers", "--smoke", "--tag",
                     "--broadcast", "--max-sites", "--shard", "--resume",
                     "--output", "--solvers", "--objective", "--compare",
                     "--group-by", "--metric", "--best", "--pareto",
                     "--server", "--shards", "--host", "--port",
                     "--lease-ttl", "--worker", "--campaign", "--poll",
                     "--until-idle", "--max-shards", "--dest",
                     "--fail-on-regression", "--sa-temperature",
                     "--sa-cooling", "--sa-moves-per-temp", "--sa-restarts",
                     "--chunk", "--flush-every", "--progress", "--columns"):
            assert flag in cli_doc_text

    def test_store_actions_documented(self, cli_doc_text):
        for action in ("store info", "store migrate", "store compact",
                       "store reindex"):
            assert action in cli_doc_text

    def test_parser_and_doc_agree(self, cli_doc_text):
        parser = build_parser()
        actions = [
            action for action in parser._subparsers._group_actions
            if hasattr(action, "choices")
        ]
        assert actions, "CLI parser has no sub-commands?"
        for name in actions[0].choices:
            assert f"`{name}`" in cli_doc_text


class TestArchitectureDoc:
    def test_mentions_every_layer_package(self, architecture_text):
        for package in ("core", "soc", "ate", "itc02", "wrapper", "tam", "rpct",
                        "multisite", "optimize", "solvers", "objectives",
                        "analysis", "store", "api", "bench", "experiments",
                        "reporting"):
            assert package in architecture_text, (
                f"ARCHITECTURE.md no longer mentions the {package!r} package"
            )

    def test_mentions_builtin_subcommands(self, architecture_text):
        for name in _BUILTIN_COMMANDS:
            assert name in architecture_text, (
                f"ARCHITECTURE.md no longer mentions the {name!r} sub-command"
            )

    def test_mentions_registered_solvers(self, architecture_text):
        for name in solver_names():
            assert name in architecture_text

    def test_describes_bound_certificates(self, architecture_text):
        for anchor in ("bounds.py", "BoundCertificate", "lower_bound",
                       "with_solver_options"):
            assert anchor in architecture_text

    def test_describes_cache_tiers(self, architecture_text):
        for anchor in ("canonical_key", "digest", "ResultStore", "evaluate",
                       "STORE_FORMAT", "register_solver", "register_experiment",
                       "register_storable", "register_catalog_soc",
                       "register_objective"):
            assert anchor in architecture_text

    def test_mentions_registered_objectives(self, architecture_text):
        for name in objective_names():
            assert name in architecture_text, (
                f"ARCHITECTURE.md no longer mentions the {name!r} objective"
            )

    def test_describes_grid_and_campaign_layer(self, architecture_text):
        for anchor in ("SweepGrid", "run_iter", "shard", "catalog",
                       "synthetic:<seed>:<modules>", "campaign"):
            assert anchor in architecture_text

    def test_describes_service_layer(self, architecture_text):
        for anchor in ("GridSpec", "CampaignServer", "ServiceClient",
                       "run_worker", "lease", "heartbeat", "--lease-ttl",
                       "pending → leased → done", "/records/query",
                       "/records/batch"):
            assert anchor in architecture_text

    def test_describes_execution_plan(self, architecture_text):
        for anchor in ("SweepPlan", "plan.py", "chunk_size", "structure_key",
                       "permutation", "flush_every", "put_records"):
            assert anchor in architecture_text

    def test_describes_packed_store(self, architecture_text):
        for anchor in ("PackedResultStore", "packed.manifest", "index.sqlite",
                       "open_store", "migrate", "compact", "reindex",
                       "orphaned", "source of truth"):
            assert anchor in architecture_text

    def test_describes_columnar_sidecars(self, architecture_text):
        for anchor in (".cols", "columns.py", "analysis.cols",
                       "reindex --columns", "flush-before-index",
                       "short row", "AnalysisRecord", "derived data"):
            assert anchor in architecture_text


class TestReadme:
    def test_links_architecture_and_cli_docs(self, readme_text):
        assert "ARCHITECTURE.md" in readme_text
        assert "docs/cli.md" in readme_text

    def test_mentions_bench_and_store(self, readme_text):
        assert "bench" in readme_text
        assert "ResultStore" in readme_text

    def test_distributed_campaign_quickstart(self, readme_text):
        for anchor in ("repro serve", "repro work", "--server",
                       "store migrate"):
            assert anchor in readme_text


class TestObjectivesDoc:
    """docs/objectives.md stays in sync with the objective registry."""

    @pytest.fixture(scope="class")
    def objectives_text(self) -> str:
        path = REPO_ROOT / "docs" / "objectives.md"
        assert path.is_file(), "docs/objectives.md is missing"
        return path.read_text(encoding="utf-8")

    def test_every_registered_objective_documented(self, objectives_text):
        for spec in list_objectives():
            assert f"`{spec.name}`" in objectives_text, (
                f"objective {spec.name!r} is registered but not documented in "
                "docs/objectives.md -- add it to the built-ins table"
            )

    def test_documented_senses_match_registry(self, objectives_text):
        # Each built-in's table row must state the registered sense.
        for spec in list_objectives():
            row = next(
                (line for line in objectives_text.splitlines()
                 if line.startswith(f"| `{spec.name}`")),
                None,
            )
            assert row is not None, f"no table row for {spec.name!r}"
            assert f"| {spec.sense} |" in row, (
                f"docs/objectives.md documents the wrong sense for {spec.name!r}"
            )

    def test_registration_walkthrough_present(self, objectives_text):
        assert "register_objective" in objectives_text
        assert "sense" in objectives_text

    def test_readme_or_architecture_link(self, objectives_text):
        architecture = (REPO_ROOT / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert "docs/objectives.md" in architecture
