"""Packaging configuration.

Kept as a plain ``setup.py`` so that ``pip install .`` / ``pip install -e .``
also work on offline machines where build isolation cannot download its
build dependencies (pip then falls back to the legacy code path).

The ``package_data`` entry matters: the ITC'02 benchmark files under
``repro/itc02/data/`` are loaded through :mod:`importlib.resources` at
runtime, so an installed wheel must ship them -- not only a
``PYTHONPATH=src`` checkout.
"""

from setuptools import find_packages, setup

setup(
    name="repro-multisite",
    version="1.7.0",
    description=(
        "Reproduction of Goel & Marinissen (DATE 2005): on-chip test "
        "infrastructure design for optimal multi-site testing of system chips"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.itc02": ["data/*.soc"]},
    include_package_data=True,
    entry_points={
        "console_scripts": [
            "repro-multisite = repro.cli:main",
        ],
    },
)
