"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` also works on offline machines where build
isolation cannot download its build dependencies (pip then falls back to the
legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
