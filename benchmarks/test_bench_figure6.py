"""Benchmark harness for the paper's Figure 6.

Regenerates both panels on the synthetic PNX8550:

* (a) throughput versus ATE channel count, 512..1024 at 7 M depth;
* (b) throughput versus vector-memory depth, 5 M..14 M at 512 channels;

and checks the paper's claims: throughput scales (roughly) linearly with the
channel count but clearly sub-linearly with the memory depth.
"""

from conftest import run_once
from repro.experiments.figure6 import run_figure6, summarize_figure6


def test_figure6_benchmark(benchmark, pnx8550, paper_probe):
    result = run_once(benchmark, run_figure6, soc=pnx8550, probe_station=paper_probe)

    channels = result.throughput_vs_channels
    depth = result.throughput_vs_depth

    # Both knobs help.  The depth sweep is allowed small local dips: the
    # number of sites is an integer, so a depth step that does not unlock an
    # extra site can momentarily trade a little throughput (the paper's
    # smooth curve averages this out).
    assert channels.is_nondecreasing(tolerance=0.02)
    assert depth.is_nondecreasing(tolerance=0.10)
    assert depth.ys[-1] > depth.ys[0]
    # Figure 6(a): doubling the channels roughly doubles the throughput.
    assert channels.relative_gain() > 0.7
    assert result.channel_scaling > 0.7
    # Figure 6(b): memory depth scales sub-linearly, and less than channels.
    assert result.depth_scaling < result.channel_scaling
    assert result.depth_scaling < 0.7

    benchmark.extra_info["throughput_512ch"] = round(channels.ys[0])
    benchmark.extra_info["throughput_1024ch"] = round(channels.ys[-1])
    benchmark.extra_info["throughput_5M"] = round(depth.ys[0])
    benchmark.extra_info["throughput_14M"] = round(depth.ys[-1])
    benchmark.extra_info["channel_scaling"] = round(result.channel_scaling, 2)
    benchmark.extra_info["depth_scaling"] = round(result.depth_scaling, 2)

    print()
    print(summarize_figure6(result))
    print()
    print(channels.render())
    print()
    print(depth.render())
