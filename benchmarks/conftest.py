"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one artefact of the paper's
evaluation section (a table or a figure) under ``pytest-benchmark``:

    pytest benchmarks/ --benchmark-only

Heavy experiments are run once per session (``rounds=1``); the regenerated
rows/series are attached to the benchmark's ``extra_info`` so they appear in
the benchmark report, and are also printed so ``pytest -s`` shows the tables
the paper reports.
"""

from __future__ import annotations

import pytest

from repro.ate.probe_station import reference_probe_station
from repro.ate.spec import reference_ate
from repro.soc.pnx8550 import make_pnx8550


@pytest.fixture(scope="session")
def pnx8550():
    """The synthetic PNX8550 used by all figure benchmarks."""
    return make_pnx8550()


@pytest.fixture(scope="session")
def paper_ate():
    """The paper's reference ATE: 512 channels x 7 M vectors at 5 MHz."""
    return reference_ate(channels=512, depth_m=7)


@pytest.fixture(scope="session")
def paper_probe():
    """The paper's reference probe station (0.5 s index, 10 ms contact test)."""
    return reference_probe_station()


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
