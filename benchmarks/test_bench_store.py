"""Benchmark: the persistent store's warm path on the design-space sweeps.

This is the acceptance benchmark of the store subsystem: a cold engine
computes the d695 design-space sweep plus the smoke synthetic sweep and
fills the store; a warm engine pointed at the same directory must
reproduce the sweep **bit-identically** from disk at least twice as fast
(it replaces optimisation with JSON decoding; the synthetic scenarios
keep the cold leg compute-dominated now that the batch evaluation kernel
makes the d695 grid alone nearly as cheap as decoding it).
"""

from __future__ import annotations

import time

from repro.api.engine import Engine
from repro.bench.runner import (
    bench_sweep_grid,
    clear_computation_caches,
    results_digest,
    synthetic_sweep_grid,
)
from repro.store.result_store import ResultStore

from conftest import run_once


def _timed_sweep(store: ResultStore):
    grid = bench_sweep_grid() + synthetic_sweep_grid(smoke=True)
    engine = Engine(store=store)
    started = time.perf_counter()
    results = engine.run_batch(grid)
    return time.perf_counter() - started, results, engine.cache_info()


def test_warm_store_sweep_at_least_2x_faster(benchmark, tmp_path):
    store_dir = tmp_path / "store"
    # Earlier benchmarks in the session warm the process-wide computation
    # caches; drop them so the cold leg actually computes.
    clear_computation_caches()
    cold_seconds, cold_results, cold_info = _timed_sweep(ResultStore(store_dir))
    assert cold_info.store_hits == 0

    warm_seconds, warm_results, warm_info = run_once(
        benchmark, _timed_sweep, ResultStore(store_dir)
    )

    assert warm_info.store_hits == len(cold_results)
    assert warm_info.misses == 0
    # Bit-identical replay: same digest over the exact result values.
    assert results_digest(warm_results) == results_digest(cold_results)
    assert [r.result for r in warm_results] == [r.result for r in cold_results]
    # The acceptance threshold; the observed ratio is far larger.
    assert warm_seconds * 2 <= cold_seconds, (
        f"warm store sweep not >=2x faster: cold {cold_seconds:.3f}s, "
        f"warm {warm_seconds:.3f}s"
    )
    benchmark.extra_info["cold_seconds"] = round(cold_seconds, 4)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 4)
    benchmark.extra_info["speedup"] = round(cold_seconds / max(warm_seconds, 1e-9), 1)
    print(
        f"\n store sweep ({len(cold_results)} scenarios): cold {cold_seconds:.3f}s, "
        f"warm {warm_seconds:.3f}s ({cold_seconds / max(warm_seconds, 1e-9):.1f}x)"
    )
