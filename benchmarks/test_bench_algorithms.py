"""Micro-benchmarks of the core algorithms.

These are conventional performance benchmarks (many rounds, statistics) for
the building blocks the experiments lean on: COMBINE wrapper design, the
Step-1 channel-group assignment, Step 2's redistribution search, and the
Monte-Carlo flow simulator.  They are not tied to a specific paper artefact
but document the cost of each stage on the real benchmark SOCs.
"""

import pytest

from repro.ate.probe_station import reference_probe_station
from repro.ate.spec import AteSpec
from repro.core.units import kilo_vectors
from repro.itc02.registry import TABLE1_BENCHMARKS, load_benchmark
from repro.multisite.cost_model import TestTiming
from repro.optimize.config import OptimizationConfig
from repro.optimize.step1 import run_step1
from repro.optimize.step2 import run_step2
from repro.sim.montecarlo import FlowParameters, simulate_flow
from repro.tam.assignment import design_architecture
from repro.wrapper.combine import design_wrapper

#: Per-benchmark (channels, depth in K vectors) operating points: roughly the
#: middle row of each paper Table-1 block.
_OPERATING_POINTS = {
    "d695": (256, 88),
    "p22810": (512, 704),
    "p34392": (512, 1408),
    "p93791": (512, 2304),
}


def test_wrapper_design_d695(benchmark):
    """COMBINE wrapper design for every d695 core at width 16."""
    soc = load_benchmark("d695")

    def design_all():
        return [design_wrapper(module, 16) for module in soc.modules]

    designs = benchmark(design_all)
    assert len(designs) == len(soc.modules)


@pytest.mark.parametrize("soc_name", TABLE1_BENCHMARKS)
def test_step1_architecture_design(benchmark, soc_name):
    """Step-1 channel-group assignment on each ITC'02 benchmark."""
    soc = load_benchmark(soc_name)
    channels, depth_k = _OPERATING_POINTS[soc_name]
    depth = kilo_vectors(depth_k)

    architecture = benchmark(design_architecture, soc, channels, depth)
    assert architecture.test_time_cycles <= depth
    benchmark.extra_info["ate_channels"] = architecture.ate_channels
    benchmark.extra_info["tams"] = architecture.num_groups


def test_two_step_search_d695(benchmark):
    """Full Step-1 + Step-2 search for d695 on a 256-channel ATE."""
    soc = load_benchmark("d695")
    ate = AteSpec(channels=256, depth=kilo_vectors(88), frequency_hz=5e6)
    probe = reference_probe_station()
    config = OptimizationConfig(broadcast=True)

    def run():
        return run_step2(run_step1(soc, ate, probe, config))

    result = benchmark(run)
    assert result.optimal_sites >= 1
    benchmark.extra_info["n_opt"] = result.optimal_sites
    benchmark.extra_info["throughput"] = round(result.optimal_throughput)


def test_montecarlo_flow(benchmark):
    """Monte-Carlo simulation of 10,000 devices at 8 sites with re-test."""
    params = FlowParameters(
        sites=8,
        timing=TestTiming(0.5, 0.010, 1.2),
        terminals_per_site=36,
        contact_yield=0.999,
        manufacturing_yield=0.9,
        abort_on_fail=True,
    )

    result = benchmark(simulate_flow, params, 10_000, 99)
    assert result.unique_devices == 10_000
    benchmark.extra_info["throughput"] = round(result.throughput_per_hour)
