"""Benchmark harness for the paper's Table 1.

Regenerates, for every ITC'02 benchmark of the paper and the full 11-depth
grid, the ATE channel count and maximum multi-site of the theoretical lower
bound, the rectangle bin-packing baseline and our Step-1 design, and checks
the qualitative claims of the paper:

* our channel count never beats the lower bound and never exceeds the
  baseline's;
* our maximum multi-site is at least the baseline's on (almost) every row;
* channels shrink and multi-site grows monotonically with memory depth.
"""

import pytest

from conftest import run_once
from repro.experiments.table1 import run_table1, summarize_table1
from repro.itc02.registry import TABLE1_BENCHMARKS


@pytest.mark.parametrize("soc_name", TABLE1_BENCHMARKS)
def test_table1_benchmark(benchmark, soc_name):
    result = run_once(benchmark, run_table1, benchmarks=(soc_name,))
    rows = result.rows_for(soc_name)
    assert len(rows) == 11

    # Paper-shape assertions.
    for row in rows:
        assert row.our_channels >= row.lower_bound_channels
        assert row.our_channels <= row.baseline_channels
    matches = sum(1 for row in rows if row.matches_lower_bound)
    beats = sum(1 for row in rows if row.beats_baseline_sites)
    assert beats >= len(rows) - 1  # at most one anomalous row, as in the paper
    channels = [row.our_channels for row in rows]
    sites = [row.our_sites for row in rows]
    assert channels == sorted(channels, reverse=True)
    assert sites == sorted(sites)

    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["lb_matches"] = matches
    benchmark.extra_info["k_range"] = f"{channels[-1]}..{channels[0]}"
    benchmark.extra_info["n_max_range"] = f"{sites[0]}..{sites[-1]}"
    print()
    print(result.to_table(soc_name).render())
    print(summarize_table1(result))
