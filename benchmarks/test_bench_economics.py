"""Benchmark harness for the Section-7 economics comparison.

Regenerates the memory-versus-channels upgrade argument on the synthetic
PNX8550 with the paper's street prices: doubling the vector memory of the
512-channel reference ATE costs about USD 48k and must buy at least as much
throughput per dollar as spending the same budget on extra channels.
"""

from conftest import run_once
from repro.experiments.economics import run_economics, summarize_economics


def test_economics_benchmark(benchmark, pnx8550, paper_ate, paper_probe):
    result = run_once(
        benchmark, run_economics, soc=pnx8550, base_ate=paper_ate, probe_station=paper_probe
    )

    # The paper's Section 7 conclusion: for the same money, deeper memory
    # buys at least as much throughput as more channels.
    assert result.memory_upgrade.cost_usd > 0
    assert result.channel_upgrade.cost_usd <= result.memory_upgrade.cost_usd + 1e-6
    assert result.memory_gain > 0
    assert result.memory_wins

    benchmark.extra_info["memory_cost_usd"] = round(result.memory_upgrade.cost_usd)
    benchmark.extra_info["memory_gain"] = round(result.memory_gain, 3)
    benchmark.extra_info["channel_gain"] = round(result.channel_gain, 3)
    benchmark.extra_info["extra_channels"] = (
        result.channel_upgrade.ate.channels - result.baseline.ate.channels
    )

    print()
    print(result.to_table().render())
    print(summarize_economics(result))
