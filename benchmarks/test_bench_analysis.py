"""Benchmark: columnar sidecar scan vs full-record decode on a packed store.

This is the acceptance benchmark of the analysis fast path: a packed
store is filled with replicated real records (real payloads, distinct
keys), then ``records_from_store`` loads the analysis rows twice -- once
forced through the full-record decode path, once through the ``.cols``
sidecar scan.  The sidecar leg must be **bit-identical** (same record
tuples, same rendered ``records_table``) and at least 10x faster in
rows/second.
"""

from __future__ import annotations

import time

from repro.analysis.analyze import records_table
from repro.analysis.records import records_from_store
from repro.api.engine import Engine
from repro.bench.runner import synthetic_sweep_grid
from repro.store.packed import PackedResultStore
from repro.store.result_store import make_record

from conftest import run_once

#: Enough records that both legs are timer-safe; the full bench section
#: (``repro bench``) runs the specified >= 10k-record shape.
RECORDS = 4000


def _fill_store(store_dir) -> PackedResultStore:
    base = [
        make_record(outcome.scenario, outcome.result)
        for outcome in Engine().run_batch(synthetic_sweep_grid(smoke=True)[:6])
    ]
    store = PackedResultStore(store_dir)
    batch = []
    for index in range(RECORDS):
        record = dict(base[index % len(base)])
        record["key"] = f"{index:016x}" + "0" * 48
        batch.append(record)
        if len(batch) >= 1000:
            store.put_records(batch)
            batch = []
    if batch:
        store.put_records(batch)
    store.close()
    return PackedResultStore(store_dir)


def test_sidecar_scan_at_least_10x_faster(benchmark, tmp_path):
    store = _fill_store(tmp_path / "store")

    started = time.perf_counter()
    decoded = records_from_store(store, columns=False)
    decode_seconds = time.perf_counter() - started

    scanned, scan_seconds = run_once(benchmark, _timed_scan, store)
    store.close()

    assert len(decoded) == RECORDS
    # Bit-identical: same tuples, same rendered table.
    assert scanned == decoded
    assert records_table(scanned).render() == records_table(decoded).render()
    assert scan_seconds * 10 <= decode_seconds, (
        f"sidecar scan not >=10x faster: decode {decode_seconds:.3f}s, "
        f"scan {scan_seconds:.3f}s"
    )
    benchmark.extra_info["decode_seconds"] = round(decode_seconds, 4)
    benchmark.extra_info["scan_seconds"] = round(scan_seconds, 4)
    benchmark.extra_info["speedup"] = round(decode_seconds / max(scan_seconds, 1e-9), 1)
    print(
        f"\n analysis load ({RECORDS} packed records): decode {decode_seconds:.3f}s, "
        f"sidecar {scan_seconds:.3f}s ({decode_seconds / max(scan_seconds, 1e-9):.1f}x)"
    )


def _timed_scan(store):
    started = time.perf_counter()
    records = records_from_store(store)
    return records, time.perf_counter() - started
