"""Benchmark harness for the paper's Figure 5.

Regenerates the throughput-versus-sites curves for the synthetic PNX8550 on
the reference test cell, with and without stimuli broadcast, plus the
Step-1-only reference line, and checks the paper's qualitative claims:

* broadcast reaches at least as many sites as no-broadcast;
* the two-step optimum is never below any Step-1-only point;
* when the usable multi-site is limited (the paper's 8-site example), the
  two-step flow gains substantially over Step 1 alone.
"""

from conftest import run_once
from repro.experiments.figure5 import run_figure5, summarize_figure5
from repro.reporting.series import series_table


def test_figure5_benchmark(benchmark, pnx8550, paper_ate, paper_probe):
    result = run_once(
        benchmark, run_figure5, soc=pnx8550, ate=paper_ate, probe_station=paper_probe
    )

    assert result.broadcast.max_sites >= result.no_broadcast.max_sites
    assert result.broadcast.optimal_throughput >= max(result.step1_only_broadcast.ys) - 1e-9
    assert result.no_broadcast.optimal_throughput > 0
    # The paper quotes a 34% gain at an 8-site equipment limit; our synthetic
    # PNX8550 lands in the same regime, so require a clearly positive gain.
    assert result.step2_gain_at_limit > 0.10

    benchmark.extra_info["n_max_no_broadcast"] = result.no_broadcast.max_sites
    benchmark.extra_info["n_opt_no_broadcast"] = result.no_broadcast.optimal_sites
    benchmark.extra_info["n_max_broadcast"] = result.broadcast.max_sites
    benchmark.extra_info["n_opt_broadcast"] = result.broadcast.optimal_sites
    benchmark.extra_info["gain_at_8_sites"] = round(result.step2_gain_at_limit, 3)

    print()
    print(summarize_figure5(result))
    print()
    print(series_table([result.throughput_broadcast, result.step1_only_broadcast]))
