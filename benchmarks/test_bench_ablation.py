"""Ablation benchmarks for the reproduction's own design choices.

Not tied to a specific paper artefact; these quantify the two algorithmic
choices DESIGN.md calls out (Step-1 placement criterion, wrapper-chain
partitioning heuristic) on the ITC'02 benchmarks.
"""

from conftest import run_once
from repro.experiments.ablation import run_placement_ablation, run_wrapper_ablation


def test_placement_criterion_ablation(benchmark):
    result = run_once(benchmark, run_placement_ablation)

    # The paper's fewest-channels-first rule must never lose to the
    # unconditional free-memory rule, and should win clearly on average.
    for row in result.rows:
        assert row.paper_rule_channels <= row.ablated_channels
    assert result.mean_inflation >= 0.0

    benchmark.extra_info["mean_channel_inflation"] = round(result.mean_inflation, 3)
    print()
    print(result.to_table().render())


def test_wrapper_heuristic_ablation(benchmark):
    result = run_once(benchmark, run_wrapper_ablation)

    assert result.combine_never_worse
    assert result.cases > 50
    # Neither heuristic may beat COMBINE (which takes the better of the two),
    # i.e. the average excess makespan of each is non-negative.
    assert result.lpt_excess_makespan >= 0.0
    assert result.bfd_excess_makespan >= 0.0

    benchmark.extra_info["cases"] = result.cases
    benchmark.extra_info["lpt_wins"] = result.lpt_wins
    benchmark.extra_info["bfd_wins"] = result.bfd_wins
    benchmark.extra_info["lpt_excess"] = round(result.lpt_excess_makespan, 4)
    benchmark.extra_info["bfd_excess"] = round(result.bfd_excess_makespan, 4)
    print()
    print(result.to_table().render())
