"""Micro-benchmarks of the solver backends.

Documents the cost of the solver dimension: the paper's greedy two-step
(``"goel05"``), the randomized multi-start (``"restart"``, one greedy run
per attempt) and the exhaustive partition oracle (``"exhaustive"``, Bell-
number search) on the d695 benchmark and its oracle-sized sub-SOCs.  The
restart backend should cost roughly ``restarts + 1`` goel05 runs; the
oracle's cost grows with the module count and is only viable on the small
instances.
"""

import pytest

from repro.ate.spec import AteSpec
from repro.core.units import kilo_vectors
from repro.experiments.solver_comparison import (
    SMALL_INSTANCE_CHANNELS,
    SMALL_INSTANCE_DEPTH,
    derived_small_socs,
)
from repro.itc02.registry import load_benchmark
from repro.solvers.problem import make_problem
from repro.solvers.registry import get_solver


@pytest.mark.parametrize("solver_name", ["goel05", "restart"])
def test_greedy_backends_on_d695(benchmark, solver_name):
    """Greedy backends at d695's Table-1 operating point (256 ch x 88 K)."""
    problem = make_problem(
        load_benchmark("d695"),
        AteSpec(channels=256, depth=kilo_vectors(88), name="ate-d695"),
    )
    solver = get_solver(solver_name)

    solution = benchmark(solver.solve, problem)
    assert solution.optimal_sites >= 1
    benchmark.extra_info["throughput"] = round(solution.optimal_throughput, 1)


@pytest.mark.parametrize("size", [3, 4, 5])
def test_exhaustive_oracle_on_d695_sub_socs(benchmark, size):
    """Exhaustive partition enumeration on the d695-derived oracle instances."""
    (soc,) = derived_small_socs((size,))
    problem = make_problem(
        soc,
        AteSpec(
            channels=SMALL_INSTANCE_CHANNELS,
            depth=SMALL_INSTANCE_DEPTH,
            name="ate-oracle",
        ),
    )
    solver = get_solver("exhaustive")

    solution = benchmark(solver.solve, problem)
    assert solution.optimal_sites >= 1
    benchmark.extra_info["modules"] = size
    benchmark.extra_info["throughput"] = round(solution.optimal_throughput, 1)
