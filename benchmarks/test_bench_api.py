"""Micro-benchmark for the scenario engine: parallel batch vs serial.

Runs a 16-scenario d695 sweep (channels x vector-memory depths) twice --
once serially through ``Engine.run`` and once through
``Engine.run_batch(workers=4)`` -- and checks that

* the batch returns bit-identical results, and
* four workers beat serial execution on wall-clock time.

Both engines start cold (no cache), so the comparison measures execution,
not memoisation; a third timed pass measures the cache-hit path.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.api import Engine, Scenario, reference_test_cell
from repro.core.units import kilo_vectors


def _parallelism_expected() -> bool:
    """True when the host advertises >1 CPU and a process pool can run.

    ``Engine.run_batch`` falls back to serial execution on platforms where
    multiprocessing is blocked, and a single-core host cannot beat serial;
    in either case the speed-up assertion would measure the environment,
    not the feature, so it is skipped (correctness and cache assertions
    always run, and the measured times are still reported).  Note that some
    sandboxes under-report the CPU count while still scheduling workers on
    several physical cores -- the guard is deliberately conservative.
    """
    if (os.cpu_count() or 1) < 2:
        return False
    try:
        with ProcessPoolExecutor(max_workers=2) as pool:
            return list(pool.map(abs, [-1, -2])) == [1, 2]
    except Exception:
        return False

#: 4 channel counts x 4 depths = 16 scenarios, sized so one optimisation
#: takes long enough for process fan-out to pay for itself.
SWEEP_CHANNELS = (512, 768, 1024, 1280)
SWEEP_DEPTHS_K = (256, 384, 512, 768)


def _sweep() -> list[Scenario]:
    cell = reference_test_cell(channels=512, depth_m=0.25)
    return Scenario.sweep(
        "d695",
        cell,
        channels=list(SWEEP_CHANNELS),
        depths=[kilo_vectors(depth_k) for depth_k in SWEEP_DEPTHS_K],
    )


def test_batch_api_benchmark(benchmark):
    scenarios = _sweep()
    assert len(scenarios) == 16

    serial_engine = Engine()
    start = time.perf_counter()
    serial = [serial_engine.run(scenario) for scenario in scenarios]
    serial_seconds = time.perf_counter() - start

    batch_engine = Engine()
    start = time.perf_counter()
    batch = benchmark.pedantic(
        batch_engine.run_batch, args=(scenarios,), kwargs={"workers": 4},
        rounds=1, iterations=1,
    )
    batch_seconds = time.perf_counter() - start

    assert len(batch) == 16
    for serial_item, batch_item in zip(serial, batch):
        assert serial_item.scenario == batch_item.scenario
        assert serial_item.result == batch_item.result

    # A second batch over the same grid must be pure cache hits.
    start = time.perf_counter()
    batch_engine.run_batch(scenarios, workers=4)
    cached_seconds = time.perf_counter() - start
    info = batch_engine.cache_info()
    assert info.misses == 16 and info.hits == 16
    assert cached_seconds < serial_seconds / 10

    parallel = _parallelism_expected()

    speedup = serial_seconds / batch_seconds if batch_seconds > 0 else float("inf")
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["batch_seconds"] = round(batch_seconds, 3)
    benchmark.extra_info["cached_seconds"] = round(cached_seconds, 4)
    benchmark.extra_info["speedup_4_workers"] = round(speedup, 2)
    benchmark.extra_info["parallelism_expected"] = parallel

    print()
    print(
        f"16-scenario d695 sweep: serial {serial_seconds:.2f} s, "
        f"4 workers {batch_seconds:.2f} s (speedup x{speedup:.2f}), "
        f"cached re-run {cached_seconds * 1000:.1f} ms"
        + (
            ""
            if parallel
            else f"  [speed-up assert skipped: host reports "
            f"{os.cpu_count() or 1} CPU(s)]"
        )
    )
    # "Measurably faster": require a real margin, well below the ~4x ideal
    # so CI jitter and pool start-up cannot flake the benchmark.
    if parallel:
        assert batch_seconds < serial_seconds * 0.8
