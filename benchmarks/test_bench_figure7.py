"""Benchmark harness for the paper's Figure 7.

Regenerates both panels on the synthetic PNX8550:

* (a) unique throughput versus vector-memory depth for contact yields
  1.0 .. 0.99 (the re-test model);
* (b) abort-on-fail test time versus number of sites for manufacturing
  yields 1.0 .. 0.70;

and checks the paper's claims: the re-test penalty is worst at shallow
memories / low contact yields and shrinks with depth, and the abort-on-fail
benefit disappears beyond about four sites even at 70% yield.
"""

from conftest import run_once
from repro.experiments.figure7 import (
    run_figure7a,
    run_figure7b,
    summarize_figure7,
)
from repro.reporting.series import series_table


def test_figure7a_benchmark(benchmark, pnx8550, paper_probe):
    result = run_once(benchmark, run_figure7a, soc=pnx8550, probe_station=paper_probe)

    perfect = result.series(1.0)
    worst = result.series(min(result.contact_yields))
    # Lower contact yield never helps.
    for contact_yield in result.contact_yields:
        series = result.series(contact_yield)
        for x, y in series.points:
            assert y <= perfect.y_at(x) + 1e-9
    # The relative drop shrinks as the memory gets deeper (fewer channels).
    drop_shallow = 1 - worst.ys[0] / perfect.ys[0]
    drop_deep = 1 - worst.ys[-1] / perfect.ys[-1]
    assert drop_deep < drop_shallow
    assert drop_shallow > 0.2  # the paper shows a severe drop at 5 M / p_c=0.99

    benchmark.extra_info["drop_at_5M_pc0.99"] = round(drop_shallow, 3)
    benchmark.extra_info["drop_at_14M_pc0.99"] = round(drop_deep, 3)

    print()
    print(series_table([result.series(y) for y in result.contact_yields]))


def test_figure7b_benchmark(benchmark, pnx8550, paper_ate, paper_probe):
    result = run_once(
        benchmark, run_figure7b, soc=pnx8550, ate=paper_ate, probe_station=paper_probe
    )

    low_yield = result.series(min(result.manufacturing_yields))
    # Expected test time grows towards the full time as sites are added.
    assert low_yield.is_nondecreasing()
    # Single-site abort-on-fail saves a lot at 70% yield ...
    assert low_yield.ys[0] < 0.80 * result.full_test_time_s
    # ... but the benefit is essentially gone at four or more sites.
    assert low_yield.y_at(4.0) > 0.98 * result.full_test_time_s
    assert low_yield.ys[-1] > 0.99 * result.full_test_time_s

    benchmark.extra_info["full_test_time_s"] = round(result.full_test_time_s, 3)
    benchmark.extra_info["t_1site_pm0.7"] = round(low_yield.ys[0], 3)
    benchmark.extra_info["t_8site_pm0.7"] = round(low_yield.ys[-1], 3)

    figure7a = run_figure7a(
        soc=pnx8550, probe_station=paper_probe, depth_sweep_m=(5, 14), channels=512
    )
    print()
    print(summarize_figure7(figure7a, result))
    print()
    print(series_table([result.series(y) for y in result.manufacturing_yields]))
