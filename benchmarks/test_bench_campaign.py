"""Benchmark: streaming campaign resume (the grid/run_iter/store showcase).

The acceptance benchmark of the campaign layer: a cold multi-SOC sweep
is compared against the same sweep interrupted partway and resumed from
its store.  The resumed run must recompute only the abandoned scenarios,
reproduce the cold run's results **bit-identically** (order-insensitive
digest over the exact values) and come in at least twice as fast -- in
practice far faster, since it swaps most optimisations for JSON decoding.
"""

from __future__ import annotations

from repro.bench.campaign import campaign_grid, run_campaign

from conftest import run_once


def test_resumed_campaign_at_least_2x_faster(benchmark, tmp_path):
    record = run_once(benchmark, run_campaign, tmp_path)
    benchmark.extra_info.update(record)

    grid = campaign_grid()
    assert record["scenarios"] == len(grid)
    # The interruption left exactly the consumed prefix in the store ...
    assert 0 < record["interrupted_after"] < record["scenarios"]
    assert record["resume_store_hits"] == record["interrupted_after"]
    # ... so the resume recomputed only the abandoned remainder ...
    assert record["resume_recomputed"] == (
        record["scenarios"] - record["interrupted_after"]
    )
    # ... reproduced the cold results bit-identically ...
    assert record["digests_match"], (
        f"cold digest {record['cold_digest']} != resumed {record['resumed_digest']}"
    )
    # ... and at least halved the wall clock.
    assert record["speedup"] >= 2.0, (
        f"resume speedup {record['speedup']:.2f}x below the 2x floor "
        f"(cold {record['cold_seconds']:.3f}s, resume {record['resume_seconds']:.3f}s)"
    )
    print(
        f"\ncampaign: {record['scenarios']} scenarios, interrupted after "
        f"{record['interrupted_after']}; cold {record['cold_seconds']:.3f}s, "
        f"resume {record['resume_seconds']:.3f}s ({record['speedup']:.1f}x)"
    )


def test_smoke_campaign_grid_collects():
    """The smoke variant stays small (CI budget) but still interruptible."""
    assert 4 <= len(campaign_grid(smoke=True)) <= 8
    assert len(campaign_grid()) > len(campaign_grid(smoke=True))
