"""Configuration of the two-step multi-site optimisation.

The paper's Problems 1 and 2 come in several variants (Section 5):

1. **stimuli broadcast** on or off: with broadcast the stimulus channels are
   shared by all sites (``n*k/2 + k/2 <= N``); without it every site gets
   its own stimulus and response channels (``n*k <= N``);
2. **abort-on-fail** on or off: whether the test time entering the
   throughput is the plain ``t_c + t_m`` or the Eq. 4.4 expectation;
3. **re-test** on or off: whether the objective is the raw throughput
   ``D_th`` or the unique-device throughput ``D^u_th``.

:class:`OptimizationConfig` captures those switches together with the yield
parameters they need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.core.exceptions import ConfigurationError
from repro.core.fingerprint import pickle_state


class Objective(Enum):
    """What Step 2 maximises."""

    THROUGHPUT = "throughput"
    UNIQUE_THROUGHPUT = "unique_throughput"


@dataclass(frozen=True)
class OptimizationConfig:
    """Switches and yields for the two-step optimisation.

    Attributes
    ----------
    broadcast:
        ``True`` when the ATE broadcasts stimuli to all sites (shared
        stimulus channels).
    abort_on_fail:
        ``True`` to use the Eq. 4.4 abort-on-fail test time in the
        throughput computation.
    objective:
        Whether Step 2 maximises ``D_th`` or ``D^u_th``.
    manufacturing_yield:
        Per-device manufacturing yield ``p_m`` (only relevant with
        abort-on-fail).
    min_sites, max_sites:
        Optional clamp on the site counts Step 2 may consider, e.g. when the
        prober hardware cannot handle more than a given number of sites.
    """

    broadcast: bool = False
    abort_on_fail: bool = False
    objective: Objective = Objective.THROUGHPUT
    manufacturing_yield: float = 1.0
    min_sites: int = 1
    max_sites: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.manufacturing_yield <= 1.0:
            raise ConfigurationError(
                f"manufacturing yield must be within [0, 1], got {self.manufacturing_yield}"
            )
        if self.min_sites <= 0:
            raise ConfigurationError(f"min_sites must be positive, got {self.min_sites}")
        if self.max_sites is not None and self.max_sites < self.min_sites:
            raise ConfigurationError(
                f"max_sites ({self.max_sites}) must be >= min_sites ({self.min_sites})"
            )

    def __hash__(self) -> int:
        # Structural hash cached on first use; see repro.core.fingerprint.
        fingerprint = self.__dict__.get("_fingerprint")
        if fingerprint is None:
            fingerprint = hash(
                (
                    self.broadcast,
                    self.abort_on_fail,
                    self.objective,
                    self.manufacturing_yield,
                    self.min_sites,
                    self.max_sites,
                )
            )
            object.__setattr__(self, "_fingerprint", fingerprint)
        return fingerprint

    __getstate__ = pickle_state

    def with_broadcast(self, broadcast: bool) -> "OptimizationConfig":
        """Return a copy with the broadcast switch changed."""
        return replace(self, broadcast=broadcast)

    def with_abort_on_fail(self, abort_on_fail: bool) -> "OptimizationConfig":
        """Return a copy with the abort-on-fail switch changed."""
        return replace(self, abort_on_fail=abort_on_fail)

    def with_site_limit(self, max_sites: int | None) -> "OptimizationConfig":
        """Return a copy with a different maximum site count."""
        return replace(self, max_sites=max_sites)

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"broadcast={'on' if self.broadcast else 'off'}, "
            f"abort-on-fail={'on' if self.abort_on_fail else 'off'}, "
            f"objective={self.objective.value}, p_m={self.manufacturing_yield:g}"
        )
