"""Result types of the two-step multi-site optimisation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ate.spec import AteSpec
from repro.ate.probe_station import ProbeStation
from repro.multisite.throughput import MultiSiteScenario
from repro.optimize.config import OptimizationConfig
from repro.rpct.wrapper import ErpctWrapper
from repro.tam.architecture import TestArchitecture


@dataclass(frozen=True)
class Step1Result:
    """Outcome of Step 1: the minimum-channel architecture and the max multi-site.

    Attributes
    ----------
    architecture:
        The channel-group architecture designed against the full ATE depth.
    erpct:
        The chip-level E-RPCT wrapper matching the architecture's channel
        requirement.
    channels_per_site:
        ATE channels one site needs (``k = 2 *`` total TAM width).
    max_sites:
        The maximum multi-site ``n_max`` for the configured broadcast mode.
    ate, probe_station, config:
        The inputs the result was computed for (kept for traceability).
    """

    architecture: TestArchitecture
    erpct: ErpctWrapper
    channels_per_site: int
    max_sites: int
    ate: AteSpec
    probe_station: ProbeStation
    config: OptimizationConfig

    @property
    def test_time_cycles(self) -> int:
        """SOC test application time of the Step-1 architecture in cycles."""
        return self.architecture.test_time_cycles

    @property
    def test_time_seconds(self) -> float:
        """SOC test application time of the Step-1 architecture in seconds."""
        return self.ate.cycles_to_seconds(self.test_time_cycles)

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"step1[{self.architecture.soc.name}]: k={self.channels_per_site}, "
            f"n_max={self.max_sites}, t_m={self.test_time_cycles} cycles"
        )


@dataclass(frozen=True)
class SitePoint:
    """One candidate site count evaluated by Step 2.

    Attributes
    ----------
    sites:
        Number of sites ``n``.
    channels_per_site:
        ATE channels actually used per site after redistribution.
    architecture:
        The (possibly widened) architecture used at this site count.
    scenario:
        The multi-site scenario (timing + yields) at this site count.
    throughput:
        Value of the configured objective (``D_th`` or ``D^u_th``) at this
        site count.
    """

    sites: int
    channels_per_site: int
    architecture: TestArchitecture
    scenario: MultiSiteScenario
    throughput: float

    @property
    def test_time_cycles(self) -> int:
        """SOC test time in cycles at this site count."""
        return self.architecture.test_time_cycles

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"n={self.sites}: k={self.channels_per_site}, "
            f"t_m={self.test_time_cycles} cycles, objective={self.throughput:.1f}/h"
        )


@dataclass(frozen=True)
class TwoStepResult:
    """Outcome of the full two-step algorithm.

    Attributes
    ----------
    step1:
        The Step-1 result (maximum multi-site and its architecture).
    points:
        Every site count evaluated by Step 2, ordered by decreasing site
        count (the order of the linear search).
    best:
        The point with maximum objective value -- the "optimal multi-site".
    """

    step1: Step1Result
    points: tuple[SitePoint, ...]
    best: SitePoint

    @property
    def optimal_sites(self) -> int:
        """The throughput-optimal number of sites ``n_opt``."""
        return self.best.sites

    @property
    def optimal_throughput(self) -> float:
        """The objective value at ``n_opt``."""
        return self.best.throughput

    @property
    def max_sites(self) -> int:
        """The Step-1 maximum multi-site ``n_max``."""
        return self.step1.max_sites

    def point_at(self, sites: int) -> SitePoint:
        """Return the evaluated point for a specific site count."""
        for point in self.points:
            if point.sites == sites:
                return point
        raise KeyError(f"no evaluated point for {sites} sites")

    def gain_over_step1(self, site_limit: int | None = None) -> float:
        """Relative throughput gain of Step 1+2 over Step 1 alone.

        When ``site_limit`` is given the comparison is made at the largest
        site count not exceeding the limit, reproducing the paper's example
        of equipment-limited multi-site (34% gain at ``n = 8`` for the
        PNX8550 with broadcast).

        This figure-level comparison is defined for the paper's throughput
        objective only (larger is better, devices/hour on both sides of
        the ratio); for a result computed under another registered
        objective the ratio would mix senses and units -- re-run the
        scenario with the default objective to report a gain.
        """
        candidates = [
            point
            for point in self.points
            if site_limit is None or point.sites <= site_limit
        ]
        if not candidates:
            raise KeyError(f"no evaluated point at or below {site_limit} sites")
        best_bounded = max(candidates, key=lambda point: point.throughput)
        step1_bounded = max(
            (point for point in candidates),
            key=lambda point: point.sites,
        )
        # Step-1-only throughput at the largest allowed site count uses the
        # un-widened Step-1 architecture; the evaluated points already carry
        # widened architectures, so recompute from the Step-1 scenario.
        from repro.optimize.step2 import step1_only_throughput  # local import, avoids cycle

        baseline = step1_only_throughput(self.step1, step1_bounded.sites)
        if baseline <= 0:
            return 0.0
        return best_bounded.throughput / baseline - 1.0

    def describe(self) -> str:
        """Multi-line summary used by reports and the CLI."""
        lines = [
            f"two-step result for {self.step1.architecture.soc.name} "
            f"({self.step1.config.describe()})",
            f"  step 1: {self.step1.describe()}",
            f"  optimal: n_opt={self.optimal_sites}, "
            f"k={self.best.channels_per_site}, objective={self.optimal_throughput:.1f}/h",
        ]
        return "\n".join(lines)
