"""Step 1: design the minimum-channel test infrastructure (Section 6, Step 1).

Step 1 answers the question "what is the smallest number of ATE channels
``k`` with which one SOC can be tested within the ATE's vector-memory depth,
and what infrastructure achieves it?".  The channel-group assignment itself
lives in :mod:`repro.tam.assignment`; this module wraps it with

* the chip-level E-RPCT wrapper sizing,
* the maximum multi-site computation for the configured broadcast mode, and
* the infeasibility checks the paper's procedure performs.
"""

from __future__ import annotations

from repro.ate.probe_station import ProbeStation
from repro.ate.spec import AteSpec
from repro.core.exceptions import InfeasibleDesignError
from repro.optimize.channels import max_sites
from repro.optimize.config import OptimizationConfig
from repro.optimize.result import Step1Result
from repro.rpct.wrapper import design_erpct_wrapper
from repro.soc.soc import Soc
from repro.tam.architecture import TestArchitecture
from repro.tam.assignment import design_architecture


def step1_result_from_architecture(
    soc: Soc,
    architecture: TestArchitecture,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
) -> Step1Result:
    """Package a designed architecture as a :class:`Step1Result`.

    Performs the paper's Step-1 feasibility checks, computes the maximum
    multi-site for the configured broadcast mode and sizes the chip-level
    E-RPCT wrapper.  Solver backends that produce architectures through
    other search strategies share this packaging with :func:`run_step1`.

    Raises
    ------
    InfeasibleDesignError
        When the architecture does not fit the target ATE.
    """
    channels_per_site = architecture.ate_channels

    if channels_per_site > ate.channels:
        raise InfeasibleDesignError(
            f"SOC {soc.name!r} needs {channels_per_site} channels but the ATE "
            f"only has {ate.channels}"
        )
    if architecture.test_time_cycles > ate.depth:
        raise InfeasibleDesignError(
            f"SOC {soc.name!r} needs {architecture.test_time_cycles} vectors of depth "
            f"but the ATE only has {ate.depth}"
        )

    sites = max_sites(ate.channels, channels_per_site, config.broadcast)
    if sites < 1:
        raise InfeasibleDesignError(
            f"SOC {soc.name!r} cannot be tested on {ate.channels} channels even single-site"
        )

    erpct = design_erpct_wrapper(
        soc,
        ate_channels_per_site=channels_per_site,
        internal_tam_width=architecture.total_width,
    )

    return Step1Result(
        architecture=architecture,
        erpct=erpct,
        channels_per_site=channels_per_site,
        max_sites=sites,
        ate=ate,
        probe_station=probe_station,
        config=config,
    )


def run_step1(
    soc: Soc,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig | None = None,
) -> Step1Result:
    """Design the Step-1 infrastructure and compute the maximum multi-site.

    Parameters
    ----------
    soc:
        The SOC to design the on-chip test infrastructure for.
    ate:
        The fixed target ATE.
    probe_station:
        The fixed target probe station.
    config:
        Optimisation switches; only the broadcast flag matters for Step 1.

    Raises
    ------
    InfeasibleDesignError
        When the SOC's test data cannot be made to fit the ATE at all.
    """
    config = config or OptimizationConfig()
    architecture = design_architecture(soc, ate.channels, ate.depth)
    return step1_result_from_architecture(soc, architecture, ate, probe_station, config)
