"""Step 2: find the throughput-optimal number of sites (Section 6, Step 2).

Step 1 maximises the number of sites; Step 2 recognises that the maximum
multi-site is not necessarily the *optimal* multi-site.  Giving up a site
frees ATE channels, which -- when redistributed over the remaining sites'
bottleneck channel groups -- shortens the test time per SOC and can raise the
overall throughput.  Step 2 therefore linearly searches the site count from
``n_max`` down to 1, widens the Step-1 architecture to each site count's
channel budget, evaluates the throughput model, and returns the best point.

In the registry layering this module is shared infrastructure, not an entry
point: solver backends (:mod:`repro.solvers.goel05`,
:mod:`repro.solvers.restart`) call :func:`run_step2` on their Step-1
candidates, and the figure experiments call :func:`step1_only_throughput`
for the paper's reference curves.  Per-point evaluation goes through the
shared memoized kernel in :mod:`repro.solvers.evaluate`, so repeated
``(design, sites)`` points -- within one sweep or across experiments and
solver backends -- are computed once per process.
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError
from repro.objectives.registry import DEFAULT_OBJECTIVE, get_objective
from repro.optimize.result import SitePoint, Step1Result, TwoStepResult
from repro.solvers.evaluate import EvaluatedPoint, evaluate_batch, evaluate_points


def _site_point(point: EvaluatedPoint) -> SitePoint:
    """Adapt a kernel :class:`EvaluatedPoint` to the Step-2 result shape."""
    return SitePoint(
        sites=point.sites,
        channels_per_site=point.architecture.ate_channels,
        architecture=point.architecture,
        scenario=point.scenario,
        throughput=point.objective,
    )


def evaluate_site_count(
    step1: Step1Result, sites: int, objective: str = DEFAULT_OBJECTIVE
) -> SitePoint:
    """Evaluate one candidate site count, redistributing freed channels.

    The per-site channel budget follows from the site count and the
    broadcast mode; any budget beyond the Step-1 requirement (at least one
    full TAM wire, i.e. two channels) is spent widening the bottleneck
    channel groups.  ``objective`` names the registered objective
    (:mod:`repro.objectives`) the point is valued under.  This is the
    single-point shim over the batch kernel's
    :func:`~repro.solvers.evaluate.evaluate_points`.
    """
    return _site_point(evaluate_points(step1, (sites,), objective)[0])


def step1_only_throughput(
    step1: Step1Result, sites: int, objective: str = DEFAULT_OBJECTIVE
) -> float:
    """Objective value at ``sites`` sites using the *un-widened* Step-1 design.

    This is the dashed reference line of the paper's Figure 5: what the
    throughput would be for a given multi-site if only Step 1 had been run.
    """
    if sites <= 0:
        raise ConfigurationError(f"site count must be positive, got {sites}")
    return evaluate_batch(
        [(step1.architecture, sites)],
        step1.ate,
        step1.probe_station,
        step1.config,
        objective,
    )[0].objective


def run_step2(step1: Step1Result, objective: str = DEFAULT_OBJECTIVE) -> TwoStepResult:
    """Linear search for the objective-optimal site count.

    Returns a :class:`TwoStepResult` containing every evaluated site count
    (largest first, mirroring the paper's search direction) and the best
    point.  ``objective`` names the registered objective the search
    optimises; its sense decides whether "best" means largest or smallest
    value (the comparison runs on the sense-signed score).  Ties are
    resolved towards the larger site count, because more sites at equal
    value means fewer touchdowns per wafer.

    The whole range is evaluated in one pass through the batch kernel
    (:func:`~repro.solvers.evaluate.evaluate_points`): the descending
    search order makes the incremental channel redistribution exact, so
    each site count only widens the previous architecture.
    """
    spec = get_objective(objective)
    config = step1.config
    upper = step1.max_sites
    if config.max_sites is not None:
        upper = min(upper, config.max_sites)
    lower = max(1, config.min_sites)
    if lower > upper:
        raise ConfigurationError(
            f"no feasible site count: search range [{lower}, {upper}] is empty"
        )

    evaluated = evaluate_points(step1, range(upper, lower - 1, -1), objective)
    points = tuple(_site_point(point) for point in evaluated)
    best = max(points, key=lambda point: (spec.signed(point.throughput), point.sites))
    return TwoStepResult(step1=step1, points=points, best=best)
