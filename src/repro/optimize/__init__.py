"""The paper's two-step multi-site optimisation algorithm."""

from repro.optimize.config import Objective, OptimizationConfig
from repro.optimize.channels import (
    even_floor,
    max_sites,
    max_channels_per_site,
    total_channels_used,
)
from repro.optimize.result import Step1Result, SitePoint, TwoStepResult
from repro.optimize.step1 import run_step1
from repro.optimize.step2 import run_step2, evaluate_site_count, step1_only_throughput
from repro.optimize.two_step import optimize_multisite, design_step1_only

__all__ = [
    "Objective",
    "OptimizationConfig",
    "even_floor",
    "max_sites",
    "max_channels_per_site",
    "total_channels_used",
    "Step1Result",
    "SitePoint",
    "TwoStepResult",
    "run_step1",
    "run_step2",
    "evaluate_site_count",
    "step1_only_throughput",
    "optimize_multisite",
    "design_step1_only",
]
