"""Multi-site ATE channel arithmetic.

The mapping between the per-site channel requirement ``k``, the ATE channel
count ``N`` and the achievable number of sites ``n`` depends on whether the
ATE broadcasts stimuli:

* **without broadcast** every site needs its own ``k`` channels::

      n * k <= N            ->   n_max = floor(N / k)
                                 k_max(n) = even_floor(N / n)

* **with broadcast** the ``k/2`` stimulus channels are shared::

      k/2 + n * k/2 <= N    ->   n_max = floor((N - k/2) / (k/2))
                                 k_max(n) = 2 * floor(N / (n + 1))

Channel counts per site are always even (half stimulus, half response).
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError


def _check(channels: int, per_site: int | None = None) -> None:
    if channels <= 0:
        raise ConfigurationError(f"ATE channel count must be positive, got {channels}")
    if per_site is not None:
        if per_site <= 0 or per_site % 2 != 0:
            raise ConfigurationError(
                f"per-site channel count must be a positive even number, got {per_site}"
            )


def even_floor(value: int) -> int:
    """Largest even number not exceeding ``value`` (at least 0)."""
    return max(0, (value // 2) * 2)


def max_sites(channels: int, channels_per_site: int, broadcast: bool) -> int:
    """Maximum number of sites the ATE can drive for a per-site requirement ``k``."""
    _check(channels, channels_per_site)
    if broadcast:
        half = channels_per_site // 2
        return max(0, (channels - half) // half)
    return channels // channels_per_site


def max_channels_per_site(channels: int, sites: int, broadcast: bool) -> int:
    """Largest even per-site channel count supportable for ``sites`` sites."""
    _check(channels)
    if sites <= 0:
        raise ConfigurationError(f"site count must be positive, got {sites}")
    if broadcast:
        return 2 * (channels // (sites + 1))
    return even_floor(channels // sites)


def total_channels_used(channels_per_site: int, sites: int, broadcast: bool) -> int:
    """ATE channels consumed when testing ``sites`` sites at ``k`` channels each."""
    if channels_per_site <= 0 or channels_per_site % 2 != 0:
        raise ConfigurationError(
            f"per-site channel count must be a positive even number, got {channels_per_site}"
        )
    if sites <= 0:
        raise ConfigurationError(f"site count must be positive, got {sites}")
    half = channels_per_site // 2
    if broadcast:
        return half + sites * half
    return sites * channels_per_site
