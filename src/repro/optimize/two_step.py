"""The complete two-step algorithm (Section 6) as a single entry point.

:func:`optimize_multisite` is the library's classic headline API: given an
SOC, a fixed target ATE and probe station, and the variant switches of
Section 5, it designs the on-chip test infrastructure (module wrappers,
TAMs/channel groups, chip-level E-RPCT wrapper) and returns the
throughput-optimal multi-site configuration.

This module is a thin compatibility shim kept for that classic signature.
It no longer contains any algorithm: it builds a
:class:`~repro.solvers.problem.TestInfraProblem` and dispatches it through
the solver registry (:mod:`repro.solvers.registry`).  The paper's heuristic
itself lives in :mod:`repro.solvers.goel05` (the default backend), and the
``solver`` parameter selects any other registered backend
(``"exhaustive"``, ``"restart"``, ...).  New code should prefer the
scenario API -- ``Engine().run(Scenario(...))`` -- which adds memoisation,
parallel batches and the persistent result store on top of the same
backends.
"""

from __future__ import annotations

from repro.ate.probe_station import ProbeStation, reference_probe_station
from repro.ate.spec import AteSpec
from repro.optimize.config import OptimizationConfig
from repro.optimize.result import Step1Result, TwoStepResult
from repro.optimize.step1 import run_step1
from repro.soc.soc import Soc
from repro.solvers.problem import make_problem
from repro.solvers.registry import DEFAULT_SOLVER, solve


def optimize_multisite(
    soc: Soc,
    ate: AteSpec,
    probe_station: ProbeStation | None = None,
    config: OptimizationConfig | None = None,
    solver: str = DEFAULT_SOLVER,
) -> TwoStepResult:
    """Run the two-step optimisation for ``soc`` on the given test cell.

    Parameters
    ----------
    soc:
        The SOC to design the on-chip test infrastructure for.  Both modular
        (core-based) SOCs and flattened SOCs (a single module) are handled;
        the flattened case is the degenerate Problem 2 of the paper.
    ate:
        The fixed target ATE (channel count, vector-memory depth, clock).
    probe_station:
        The fixed target probe station (index time, contact-test time,
        contact yield).  Defaults to the paper's reference prober.
    config:
        Variant switches (broadcast, abort-on-fail, objective, yields).
        Defaults to the paper's base case: no broadcast, no abort-on-fail,
        maximise raw throughput.
    solver:
        Registered solver backend to use; defaults to the paper's greedy
        two-step heuristic (``"goel05"``).

    Returns
    -------
    TwoStepResult
        The Step-1 design, every site count Step 2 evaluated, and the
        optimal point.

    Raises
    ------
    InfeasibleDesignError
        When the SOC cannot be tested on the target ATE at all.

    Example
    -------
    >>> from repro.ate import reference_ate
    >>> from repro.itc02 import load_benchmark
    >>> soc = load_benchmark("d695")
    >>> result = optimize_multisite(soc, reference_ate(channels=128, depth_m=1))
    >>> result.optimal_sites >= 1
    True
    """
    problem = make_problem(soc, ate, probe_station, config)
    return solve(solver, problem).result


def design_step1_only(
    soc: Soc,
    ate: AteSpec,
    probe_station: ProbeStation | None = None,
    config: OptimizationConfig | None = None,
) -> Step1Result:
    """Run only Step 1 (maximum multi-site), as the baseline comparison does."""
    config = config or OptimizationConfig()
    probe_station = probe_station or reference_probe_station()
    return run_step1(soc, ate, probe_station, config)
