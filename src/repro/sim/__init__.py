"""Simulation substrate: scan-shift simulator, wafer map, Monte-Carlo flow."""

from repro.sim.scan_sim import (
    ShiftTrace,
    GroupTrace,
    ArchitectureTrace,
    simulate_module_test,
    simulate_module_at_width,
    simulate_architecture,
)
from repro.sim.wafer import WaferMap, TouchdownPlan
from repro.sim.montecarlo import FlowParameters, FlowResult, simulate_flow

__all__ = [
    "ShiftTrace",
    "GroupTrace",
    "ArchitectureTrace",
    "simulate_module_test",
    "simulate_module_at_width",
    "simulate_architecture",
    "WaferMap",
    "TouchdownPlan",
    "FlowParameters",
    "FlowResult",
    "simulate_flow",
]
