"""Wafer map and multi-site touchdown model.

Wafer-level multi-site testing steps a probe card carrying ``n`` sites over
the wafer; every touchdown contacts ``n`` dies at once (fewer at the wafer
edge, a loss the paper explicitly ignores).  This module provides

* a simple circular wafer map (which dies exist on a square grid inside a
  circular wafer),
* the touchdown plan for an ``n``-site probe card stepping over that map,
* utilisation statistics (how many probe sites land on non-existent dies at
  the edge), which quantify the loss the paper ignores.

The Monte-Carlo flow simulator uses the touchdown plan to turn per-device
times into per-wafer times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class WaferMap:
    """Dies of one wafer laid out on a square grid inside a circle.

    Attributes
    ----------
    diameter_mm:
        Wafer diameter (300 mm is typical for the paper's era onwards).
    die_width_mm, die_height_mm:
        Die dimensions including scribe lines.
    edge_exclusion_mm:
        Ring at the wafer edge that carries no product dies.
    """

    diameter_mm: float = 300.0
    die_width_mm: float = 10.0
    die_height_mm: float = 10.0
    edge_exclusion_mm: float = 3.0

    def __post_init__(self) -> None:
        if self.diameter_mm <= 0 or self.die_width_mm <= 0 or self.die_height_mm <= 0:
            raise ConfigurationError("wafer and die dimensions must be positive")
        if self.edge_exclusion_mm < 0 or 2 * self.edge_exclusion_mm >= self.diameter_mm:
            raise ConfigurationError("edge exclusion must be non-negative and smaller than the radius")

    @property
    def usable_radius_mm(self) -> float:
        """Radius of the area that can carry complete dies."""
        return self.diameter_mm / 2.0 - self.edge_exclusion_mm

    def die_positions(self) -> tuple[tuple[int, int], ...]:
        """Grid coordinates (column, row) of every complete die on the wafer.

        A die is kept when all four of its corners lie within the usable
        radius.
        """
        radius = self.usable_radius_mm
        columns = int(math.ceil(self.diameter_mm / self.die_width_mm))
        rows = int(math.ceil(self.diameter_mm / self.die_height_mm))
        positions: list[tuple[int, int]] = []
        for row in range(-rows, rows + 1):
            for column in range(-columns, columns + 1):
                x_left = column * self.die_width_mm
                y_bottom = row * self.die_height_mm
                corners = (
                    (x_left, y_bottom),
                    (x_left + self.die_width_mm, y_bottom),
                    (x_left, y_bottom + self.die_height_mm),
                    (x_left + self.die_width_mm, y_bottom + self.die_height_mm),
                )
                if all(math.hypot(x, y) <= radius for x, y in corners):
                    positions.append((column, row))
        return tuple(positions)

    @property
    def dies_per_wafer(self) -> int:
        """Number of complete dies on the wafer."""
        return len(self.die_positions())


@dataclass(frozen=True)
class TouchdownPlan:
    """Touchdown plan of an ``n``-site probe card over a wafer map.

    The probe card is modelled as a 1 x n horizontal array of sites; the
    prober steps it column-block by column-block, row by row.
    """

    wafer: WaferMap
    sites: int

    def __post_init__(self) -> None:
        if self.sites <= 0:
            raise ConfigurationError(f"site count must be positive, got {self.sites}")

    def touchdowns(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """Return the dies probed by each touchdown.

        Each element is the tuple of die coordinates contacted by one
        touchdown; at the wafer edge a touchdown may contact fewer than
        ``sites`` dies.
        """
        dies = self.wafer.die_positions()
        by_row: dict[int, list[int]] = {}
        for column, row in dies:
            by_row.setdefault(row, []).append(column)
        plan: list[tuple[tuple[int, int], ...]] = []
        for row in sorted(by_row):
            columns = sorted(by_row[row])
            for start in range(0, len(columns), self.sites):
                block = columns[start : start + self.sites]
                plan.append(tuple((column, row) for column in block))
        return tuple(plan)

    @property
    def num_touchdowns(self) -> int:
        """Number of touchdowns needed to cover the wafer."""
        return len(self.touchdowns())

    @property
    def site_utilisation(self) -> float:
        """Fraction of probe-card sites that land on real dies, averaged."""
        plan = self.touchdowns()
        if not plan:
            return 0.0
        used = sum(len(block) for block in plan)
        return used / (len(plan) * self.sites)

    def wafer_test_time_s(self, index_time_s: float, test_time_s: float) -> float:
        """Total time to test the whole wafer (index + test per touchdown)."""
        if index_time_s < 0 or test_time_s < 0:
            raise ConfigurationError("times must be non-negative")
        return self.num_touchdowns * (index_time_s + test_time_s)
