"""Monte-Carlo simulation of the multi-site wafer-test flow.

The analytic model of Section 4 makes several simplifications (at most one
failing terminal contact per device, at most one re-test, zero test time for
failing devices in the abort-on-fail bound).  This simulator replays the
flow stochastically -- drawing per-terminal contact failures, per-device
manufacturing failures and first-failing-pattern positions -- and measures
the realised throughput and unique throughput.  The validation tests check
that the analytic model and the simulation agree where the assumptions hold
(high contact yield) and document where they diverge (very low contact
yield, where the paper's linearised re-test model becomes pessimistic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.core.rng import DeterministicRng
from repro.multisite.cost_model import TestTiming
from repro.multisite.throughput import SECONDS_PER_HOUR


@dataclass(frozen=True)
class FlowParameters:
    """Parameters of one simulated multi-site flow."""

    sites: int
    timing: TestTiming
    terminals_per_site: int
    contact_yield: float = 1.0
    manufacturing_yield: float = 1.0
    abort_on_fail: bool = False
    retest_contact_failures: bool = True

    def __post_init__(self) -> None:
        if self.sites <= 0:
            raise ConfigurationError(f"site count must be positive, got {self.sites}")
        if self.terminals_per_site <= 0:
            raise ConfigurationError("terminals per site must be positive")
        for label, value in (
            ("contact yield", self.contact_yield),
            ("manufacturing yield", self.manufacturing_yield),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{label} must be within [0, 1], got {value}")


@dataclass(frozen=True)
class FlowResult:
    """Aggregated outcome of a Monte-Carlo flow run."""

    touchdowns: int
    devices_tested: int
    unique_devices: int
    retests: int
    total_time_s: float

    @property
    def throughput_per_hour(self) -> float:
        """Measured devices per hour (slots, including re-tests)."""
        if self.total_time_s <= 0:
            return 0.0
        return self.devices_tested * SECONDS_PER_HOUR / self.total_time_s

    @property
    def unique_throughput_per_hour(self) -> float:
        """Measured unique devices per hour."""
        if self.total_time_s <= 0:
            return 0.0
        return self.unique_devices * SECONDS_PER_HOUR / self.total_time_s


def _site_contact_ok(rng: DeterministicRng, params: FlowParameters) -> bool:
    """Draw whether one site makes contact on all of its terminals.

    Drawing one uniform against ``p_c^terminals`` is statistically identical
    to drawing every terminal independently and far cheaper for sites with
    dozens of channels.
    """
    site_yield = params.contact_yield ** params.terminals_per_site
    return rng.uniform(0.0, 1.0) <= site_yield


def simulate_flow(
    params: FlowParameters,
    devices: int,
    seed: int = 1,
) -> FlowResult:
    """Simulate testing ``devices`` unique devices and return flow statistics.

    Devices are processed in touchdowns of ``sites`` devices.  Devices that
    fail only the contact test are queued for one re-test (when enabled),
    occupying slots in later touchdowns exactly as on a real test floor.
    """
    if devices <= 0:
        raise ConfigurationError(f"device count must be positive, got {devices}")
    rng = DeterministicRng(seed)

    pending_retests = 0
    unique_remaining = devices
    touchdowns = 0
    devices_tested = 0
    unique_tested = 0
    retests_done = 0
    total_time_s = 0.0

    while unique_remaining > 0 or pending_retests > 0:
        touchdowns += 1
        # Fill the touchdown with re-tests first, then fresh devices.
        slots = params.sites
        retest_slots = min(slots, pending_retests)
        fresh_slots = min(slots - retest_slots, unique_remaining)
        pending_retests -= retest_slots
        unique_remaining -= fresh_slots
        occupied = retest_slots + fresh_slots
        if occupied == 0:
            break

        site_contacts = [_site_contact_ok(rng, params) for _ in range(occupied)]
        site_good = [
            rng.uniform(0.0, 1.0) <= params.manufacturing_yield for _ in range(occupied)
        ]

        # Touchdown time: index + contact test; the manufacturing test is
        # applied unless abort-on-fail kicks in because no contacted site is
        # a good device (the paper's optimistic bound: failing devices take
        # no time).
        touchdown_time = params.timing.index_time_s + params.timing.contact_test_time_s
        any_contact = any(site_contacts)
        any_good = any(
            contact and good for contact, good in zip(site_contacts, site_good)
        )
        if not params.abort_on_fail:
            touchdown_time += params.timing.manufacturing_test_time_s
        elif any_contact and any_good:
            touchdown_time += params.timing.manufacturing_test_time_s
        total_time_s += touchdown_time

        devices_tested += occupied
        unique_tested += fresh_slots
        retests_done += retest_slots

        # Fresh devices that failed only on contact get one re-test.
        if params.retest_contact_failures:
            for position in range(retest_slots, occupied):
                if not site_contacts[position]:
                    pending_retests += 1

    return FlowResult(
        touchdowns=touchdowns,
        devices_tested=devices_tested,
        unique_devices=unique_tested,
        retests=retests_done,
        total_time_s=total_time_s,
    )
