"""Cycle-level scan/TAM test-application simulator.

The analytic test-time formula ``t = (1 + max(si, so)) * p + min(si, so)``
is used everywhere in the optimisation.  This simulator provides an
independent check: it "applies" a module's test pattern by pattern through a
wrapper design, counting shift and capture cycles explicitly, and -- for a
whole channel group -- by concatenating the module tests in schedule order.
The property-based tests assert that the simulated cycle counts equal the
analytic formula for arbitrary modules and widths, and the integration tests
use it to validate complete architectures.

The simulator also supports *abort-on-fail* runs: given a (simulated) map of
which pattern first fails on which device, it reports how many cycles a
touchdown actually consumed, which backs the Monte-Carlo flow model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.soc.module import Module
from repro.tam.architecture import TestArchitecture
from repro.wrapper.combine import design_wrapper
from repro.wrapper.design import WrapperDesign


@dataclass(frozen=True)
class ShiftTrace:
    """Cycle accounting of one module test applied through one wrapper.

    Attributes
    ----------
    module_name:
        Module whose test was simulated.
    patterns_applied:
        Number of patterns actually applied (smaller than the module's
        pattern count when the run was aborted early).
    shift_cycles:
        Total cycles spent shifting.
    capture_cycles:
        Total capture cycles (one per applied pattern).
    aborted:
        True when the run stopped early because of a failing pattern.
    """

    module_name: str
    patterns_applied: int
    shift_cycles: int
    capture_cycles: int
    aborted: bool

    @property
    def total_cycles(self) -> int:
        """Total cycles consumed by the simulated test."""
        return self.shift_cycles + self.capture_cycles


def simulate_module_test(
    design: WrapperDesign, fail_at_pattern: int | None = None
) -> ShiftTrace:
    """Simulate applying a module test through ``design``, cycle by cycle.

    Parameters
    ----------
    design:
        The wrapper design to shift through.
    fail_at_pattern:
        When given (1-based pattern index), the test aborts right after the
        capture of that pattern plus the scan-out of its response,
        modelling abort-on-fail at module granularity.

    Returns
    -------
    ShiftTrace
        Cycle accounting.  Without ``fail_at_pattern`` the total equals the
        analytic ``(1 + max(si, so)) * p + min(si, so)``.
    """
    patterns = design.module.patterns
    if fail_at_pattern is not None and fail_at_pattern <= 0:
        raise ConfigurationError("fail_at_pattern must be positive (1-based) or None")

    scan_in = design.max_scan_in
    scan_out = design.max_scan_out
    overlap = max(scan_in, scan_out)

    shift_cycles = 0
    capture_cycles = 0
    applied = 0
    aborted = False

    # First pattern: plain scan-in (nothing to shift out yet).
    shift_cycles += scan_in
    for pattern_index in range(1, patterns + 1):
        capture_cycles += 1
        applied += 1
        last = pattern_index == patterns
        failed = fail_at_pattern is not None and pattern_index >= fail_at_pattern
        if failed or last:
            # Shift out the final (or failing) response only.
            shift_cycles += scan_out
            aborted = failed and not last
            break
        # Overlapped scan-out of this response with scan-in of the next.
        shift_cycles += overlap

    return ShiftTrace(
        module_name=design.module.name,
        patterns_applied=applied,
        shift_cycles=shift_cycles,
        capture_cycles=capture_cycles,
        aborted=aborted,
    )


def simulate_module_at_width(
    module: Module, width: int, fail_at_pattern: int | None = None
) -> ShiftTrace:
    """Convenience wrapper: design the wrapper with COMBINE, then simulate."""
    return simulate_module_test(design_wrapper(module, width), fail_at_pattern)


@dataclass(frozen=True)
class GroupTrace:
    """Cycle accounting of a whole channel group (modules in schedule order)."""

    group_index: int
    width: int
    module_traces: tuple[ShiftTrace, ...]

    @property
    def total_cycles(self) -> int:
        """Total cycles the group keeps its ATE channels busy."""
        return sum(trace.total_cycles for trace in self.module_traces)


@dataclass(frozen=True)
class ArchitectureTrace:
    """Cycle accounting of a complete test architecture."""

    soc_name: str
    group_traces: tuple[GroupTrace, ...]

    @property
    def test_time_cycles(self) -> int:
        """SOC test time: the busiest group's cycle count."""
        return max(trace.total_cycles for trace in self.group_traces)

    @property
    def total_channel_cycles(self) -> int:
        """Sum over groups of ``2 * width * cycles`` (ATE occupation)."""
        return sum(
            2 * trace.width * trace.total_cycles for trace in self.group_traces
        )


def simulate_architecture(architecture: TestArchitecture) -> ArchitectureTrace:
    """Simulate every channel group of ``architecture`` and return the trace.

    The simulated SOC test time is expected to be slightly *below or equal*
    to the analytic :attr:`TestArchitecture.test_time_cycles`: the analytic
    group fill sums the per-module formula, which the cycle-accurate
    simulation reproduces exactly, so in practice the two are equal.  The
    integration tests assert exact agreement.
    """
    group_traces = []
    for group in architecture.groups:
        module_traces = tuple(
            simulate_module_at_width(module, group.width) for module in group.modules
        )
        group_traces.append(
            GroupTrace(
                group_index=group.index,
                width=group.width,
                module_traces=module_traces,
            )
        )
    return ArchitectureTrace(
        soc_name=architecture.soc.name, group_traces=tuple(group_traces)
    )
