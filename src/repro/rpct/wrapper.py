"""E-RPCT (Enhanced Reduced-Pin-Count Test) chip-level wrapper model.

Reduced-Pin-Count Test narrows the SOC-ATE interface to the scan-chain
terminals, test-control and clock pins; functional pins are reached through
the boundary-scan chain.  *Enhanced* RPCT (Vranken et al., ITC 2001) also
routes the internal scan chains through the boundary-scan architecture, so a
chip with ``w`` internal TAM wires can be tested through any ``k/2`` external
test inputs and ``k/2`` external test outputs with ``k/2 <= w``.

For this reproduction the E-RPCT wrapper is an accounting object: it records
how many pads the ATE must probe per site (the ``k`` test channels plus a
fixed overhead of test-control and clock pads), which feeds the contact-test
yield model and the multi-site channel arithmetic.  The structural view
(which TAM wires map to which external pads) is kept so the scan-shift
simulator can exercise the full path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.soc.soc import Soc

#: Default number of always-probed control pads: test clock, reset, test
#: enable, TAP controller signals (TCK/TMS/TDI/TDO are already part of the
#: test channels in E-RPCT, so the overhead is small).
DEFAULT_CONTROL_PADS = 4

#: Default number of power/ground pads that must be contacted per site.
DEFAULT_POWER_PADS = 8


@dataclass(frozen=True)
class ErpctWrapper:
    """Chip-level E-RPCT wrapper converting ``k`` ATE channels into TAM wires.

    Attributes
    ----------
    soc_name:
        Name of the SOC the wrapper is designed for.
    external_inputs:
        Number of external test-input pads (``k/2``).
    external_outputs:
        Number of external test-output pads (``k/2``).
    internal_tam_width:
        Total internal TAM width ``w`` the wrapper fans out to; the E-RPCT
        definition requires ``external_inputs <= w``.
    control_pads:
        Test-control and clock pads probed in addition to the test channels.
    power_pads:
        Power/ground pads probed per site.
    """

    soc_name: str
    external_inputs: int
    external_outputs: int
    internal_tam_width: int
    control_pads: int = DEFAULT_CONTROL_PADS
    power_pads: int = DEFAULT_POWER_PADS

    def __post_init__(self) -> None:
        if self.external_inputs <= 0 or self.external_outputs <= 0:
            raise ConfigurationError("E-RPCT wrapper needs at least one input and one output pad")
        if self.internal_tam_width <= 0:
            raise ConfigurationError("internal TAM width must be positive")
        if self.external_inputs > self.internal_tam_width:
            raise ConfigurationError(
                f"E-RPCT requires external inputs ({self.external_inputs}) <= "
                f"internal TAM width ({self.internal_tam_width})"
            )
        if self.control_pads < 0 or self.power_pads < 0:
            raise ConfigurationError("pad overheads must be non-negative")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def ate_channels(self) -> int:
        """ATE channels required to drive this wrapper (``k``)."""
        return self.external_inputs + self.external_outputs

    @property
    def probed_pads(self) -> int:
        """Pads the prober must contact per site (signal + control + power)."""
        return self.ate_channels + self.control_pads + self.power_pads

    @property
    def probed_signal_pads(self) -> int:
        """Signal pads only (the ``k`` test channels); used by Eq. 4.2."""
        return self.ate_channels

    def pin_reduction(self, functional_pins: int) -> int:
        """How many pins the wrapper removes from the ATE interface."""
        if functional_pins < 0:
            raise ConfigurationError("functional pin count must be non-negative")
        return max(0, functional_pins - self.probed_pads)

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"E-RPCT({self.soc_name}): {self.external_inputs} in + "
            f"{self.external_outputs} out test pads -> TAM width {self.internal_tam_width}, "
            f"{self.probed_pads} probed pads per site"
        )


def design_erpct_wrapper(
    soc: Soc,
    ate_channels_per_site: int,
    internal_tam_width: int | None = None,
    control_pads: int = DEFAULT_CONTROL_PADS,
    power_pads: int = DEFAULT_POWER_PADS,
) -> ErpctWrapper:
    """Design the chip-level E-RPCT wrapper for a per-site channel budget.

    Parameters
    ----------
    soc:
        The SOC being wrapped.
    ate_channels_per_site:
        Number of ATE channels one site uses (``k``); must be an even,
        positive number because channels split evenly into stimulus and
        response.
    internal_tam_width:
        Total internal TAM width behind the wrapper.  Defaults to ``k/2``
        (the degenerate flat case where the E-RPCT wrapper and the TAM have
        equal width).
    """
    if ate_channels_per_site <= 0 or ate_channels_per_site % 2 != 0:
        raise ConfigurationError(
            f"per-site channel count must be a positive even number, got {ate_channels_per_site}"
        )
    half = ate_channels_per_site // 2
    width = internal_tam_width if internal_tam_width is not None else half
    return ErpctWrapper(
        soc_name=soc.name,
        external_inputs=half,
        external_outputs=half,
        internal_tam_width=width,
        control_pads=control_pads,
        power_pads=power_pads,
    )
