"""Boundary-scan chain model used by the RPCT / E-RPCT wrappers.

RPCT relies on the chip's boundary-scan chain to reach functional pins that
are not contacted by the prober.  For this reproduction the boundary-scan
chain is a simple accounting structure: the number of boundary cells, how
many of them can be accessed serially through the test pads, and the extra
shift cycles a boundary-scan-applied pattern would cost.  The figures are
used by the scan-shift simulator and by reports that break down where the
pin-count reduction comes from; they do not influence the TAM optimisation
(the paper likewise treats boundary scan as given infrastructure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.soc.soc import Soc


@dataclass(frozen=True)
class BoundaryScanChain:
    """The chip-level boundary-scan chain.

    Attributes
    ----------
    cells:
        Number of boundary-scan cells (one per functional pin).
    segments:
        Number of independently accessible segments the chain is split into
        by the E-RPCT wrapper; more segments shorten the access path at the
        cost of more internal routing.
    """

    cells: int
    segments: int = 1

    def __post_init__(self) -> None:
        if self.cells < 0:
            raise ConfigurationError(f"boundary cell count must be non-negative, got {self.cells}")
        if self.segments <= 0:
            raise ConfigurationError(f"segment count must be positive, got {self.segments}")
        if self.cells and self.segments > self.cells:
            raise ConfigurationError("cannot split a boundary chain into more segments than cells")

    @property
    def longest_segment(self) -> int:
        """Length of the longest segment (balanced split)."""
        if self.cells == 0:
            return 0
        base, extra = divmod(self.cells, self.segments)
        return base + (1 if extra else 0)

    def access_cycles(self) -> int:
        """Shift cycles needed to load every boundary cell once."""
        return self.longest_segment

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"boundary scan: {self.cells} cells in {self.segments} segment(s), "
            f"longest {self.longest_segment}"
        )


def boundary_scan_for(soc: Soc, segments: int = 1) -> BoundaryScanChain:
    """Build the boundary-scan chain for ``soc`` (one cell per functional pin)."""
    return BoundaryScanChain(cells=soc.estimated_functional_pins, segments=segments)
