"""E-RPCT chip-level wrapper and boundary-scan models."""

from repro.rpct.wrapper import (
    ErpctWrapper,
    design_erpct_wrapper,
    DEFAULT_CONTROL_PADS,
    DEFAULT_POWER_PADS,
)
from repro.rpct.boundary_scan import BoundaryScanChain, boundary_scan_for

__all__ = [
    "ErpctWrapper",
    "design_erpct_wrapper",
    "DEFAULT_CONTROL_PADS",
    "DEFAULT_POWER_PADS",
    "BoundaryScanChain",
    "boundary_scan_for",
]
