"""Flat campaign records: one row per solved scenario, whatever the source.

The campaign layer leaves results behind in two persistent shapes: the
content-addressed :class:`~repro.store.ResultStore` directories that
``--store`` runs fill, and the JSONL files ``repro sweep --output`` streams.
Analysis needs one columnar view over both, so this module normalises
either source (plus in-memory :class:`~repro.api.engine.ScenarioResult`
batches) into :class:`AnalysisRecord` rows -- plain frozen values carrying
the scenario's identity axes (SOC, solver, objective, operating point) and
its optimal-point metrics.

Loading is deterministic: records are sorted by their identity axes and
deduplicated by scenario key (first occurrence wins), so the same inputs
always produce the same table no matter the completion or file order they
were written in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.exceptions import ConfigurationError
from repro.objectives.registry import DEFAULT_OBJECTIVE
from repro.optimize.channels import total_channels_used
from repro.store.factory import open_store
from repro.store.packed import PackedResultStore
from repro.store.result_store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import ScenarioResult
    from repro.optimize.result import TwoStepResult


@dataclass(frozen=True)
class AnalysisRecord:
    """One solved scenario, flattened for analysis.

    Attributes
    ----------
    key:
        The scenario's content key, normalised to the short exported form
        (the first 16 hex chars of the canonical digest) whatever the
        source, so the same scenario loaded from a store and from a sweep
        JSONL deduplicates onto one row.
    soc, solver, objective:
        Identity axes of the scenario.
    channels, depth, broadcast:
        The operating point (ATE channels, vector-memory depth, broadcast
        switch).
    optimal_sites, channels_per_site, test_time_cycles:
        The optimal point's multi-site configuration.
    value:
        The objective value at the optimal point (devices/hour for the
        default objective; whatever the registered objective measures
        otherwise).
    lower_bound:
        The certified bound on the achievable objective value
        (:mod:`repro.solvers.bounds`), or ``None`` when the source carries
        no certificate (e.g. a sweep JSONL written before bounds existed).
    """

    key: str
    soc: str
    solver: str
    objective: str
    channels: int
    depth: int
    broadcast: bool
    optimal_sites: int
    channels_per_site: int
    test_time_cycles: int
    value: float
    lower_bound: float | None = None

    @property
    def gap(self) -> float | None:
        """Relative optimality gap against the certificate (0.0 = proven optimal)."""
        from repro.solvers.bounds import relative_gap

        return relative_gap(self.value, self.lower_bound, self.objective)

    @property
    def employed_channels(self) -> int:
        """ATE channels the optimal configuration actually consumes.

        Broadcast-aware: under broadcast the sites share one set of
        stimulus channels, so the count is ``k/2 + sites * k/2`` rather
        than ``sites * k`` -- the same accounting the
        ``cost_per_good_die`` and ``channel_budget`` objectives use.
        """
        return total_channels_used(
            self.channels_per_site, self.optimal_sites, self.broadcast
        )

    def sort_key(self) -> tuple:
        """Deterministic ordering: identity axes first, then the key."""
        return (
            self.soc,
            self.solver,
            self.objective,
            self.channels,
            self.depth,
            self.broadcast,
            self.key,
        )


def _record_from_result(outcome: "ScenarioResult") -> AnalysisRecord:
    scenario = outcome.scenario
    result = outcome.result
    return AnalysisRecord(
        key=scenario.key,
        soc=scenario.soc_name,
        solver=scenario.solver,
        objective=scenario.objective,
        channels=scenario.test_cell.ate.channels,
        depth=scenario.test_cell.ate.depth,
        broadcast=scenario.config.broadcast,
        optimal_sites=result.optimal_sites,
        channels_per_site=result.best.channels_per_site,
        test_time_cycles=result.best.test_time_cycles,
        value=result.optimal_throughput,
        lower_bound=outcome.lower_bound,
    )


def records_from_results(results: Iterable["ScenarioResult"]) -> tuple[AnalysisRecord, ...]:
    """Normalise in-memory engine results into analysis records."""
    return _finalize(_record_from_result(outcome) for outcome in results)


def records_from_store(
    store: "ResultStore | PackedResultStore | str | Path",
) -> tuple[AnalysisRecord, ...]:
    """Scan a persistent result store into analysis records.

    Accepts a store object or the path of one (either backend -- legacy
    directory or packed; see :func:`repro.store.open_store`).  Corrupt
    records are skipped, exactly as the store's own readers do.
    """
    from repro.solvers.bounds import certificate

    store = open_store(store)
    rows = []
    for entry, result in store.records():
        step1 = result.step1
        cert = certificate(
            step1.architecture.soc, step1.ate, step1.probe_station,
            step1.config, entry.objective,
        )
        rows.append(
            AnalysisRecord(
                key=entry.key[:16],
                soc=entry.soc_name,
                solver=entry.solver,
                objective=entry.objective,
                channels=result.step1.ate.channels,
                depth=result.step1.ate.depth,
                broadcast=result.step1.config.broadcast,
                optimal_sites=result.optimal_sites,
                channels_per_site=result.best.channels_per_site,
                test_time_cycles=result.best.test_time_cycles,
                value=result.optimal_throughput,
                lower_bound=None if cert is None else cert.value,
            )
        )
    return _finalize(rows)


def _record_from_sweep_row(row: dict[str, Any]) -> AnalysisRecord:
    optimal = row["optimal"]
    bound = row.get("lower_bound")
    return AnalysisRecord(
        key=str(row["scenario_key"]),
        soc=str(row["soc"]),
        solver=str(row.get("solver", "")),
        objective=str(row.get("objective_name", DEFAULT_OBJECTIVE)),
        channels=int(row["ate_channels"]),
        depth=int(row["ate_depth"]),
        broadcast=bool(row["broadcast"]),
        optimal_sites=int(optimal["sites"]),
        channels_per_site=int(optimal["channels_per_site"]),
        test_time_cycles=int(optimal["test_time_cycles"]),
        value=float(optimal["throughput_per_hour"]),
        lower_bound=None if bound is None else float(bound),
    )


def records_from_jsonl(path: str | Path) -> tuple[AnalysisRecord, ...]:
    """Parse a ``repro sweep --output`` JSONL file into analysis records.

    Raises
    ------
    ConfigurationError
        When a line is not valid JSON or lacks the sweep-record fields --
        unlike store corruption, a malformed input *file* is a user error
        worth surfacing.
    """
    path = Path(path)
    rows = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as error:
        raise ConfigurationError(f"cannot read sweep JSONL {path}: {error}") from error
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            rows.append(_record_from_sweep_row(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"{path}:{number} is not a sweep record: {error}"
            ) from error
    return _finalize(rows)


def load_records(
    store: "ResultStore | PackedResultStore | str | Path | None" = None,
    jsonl_paths: Sequence[str | Path] = (),
) -> tuple[AnalysisRecord, ...]:
    """Load and merge records from a store and/or sweep JSONL files.

    Raises
    ------
    ConfigurationError
        When no source is given, or a JSONL file is malformed.
    """
    if store is None and not jsonl_paths:
        raise ConfigurationError(
            "analysis needs at least one source: a --store directory or sweep JSONL files"
        )
    rows: list[AnalysisRecord] = []
    if store is not None:
        rows.extend(records_from_store(store))
    for path in jsonl_paths:
        rows.extend(records_from_jsonl(path))
    return _finalize(rows)


def _finalize(rows: Iterable[AnalysisRecord]) -> tuple[AnalysisRecord, ...]:
    """Dedup by key (first occurrence wins) and sort deterministically."""
    seen: dict[str, AnalysisRecord] = {}
    for row in rows:
        seen.setdefault(row.key, row)
    return tuple(sorted(seen.values(), key=AnalysisRecord.sort_key))
