"""Flat campaign records: one row per solved scenario, whatever the source.

The campaign layer leaves results behind in two persistent shapes: the
content-addressed :class:`~repro.store.ResultStore` directories that
``--store`` runs fill, and the JSONL files ``repro sweep --output`` streams.
Analysis needs one columnar view over both, so this module normalises
either source (plus in-memory :class:`~repro.api.engine.ScenarioResult`
batches) into :class:`AnalysisRecord` rows -- plain frozen values carrying
the scenario's identity axes (SOC, solver, objective, operating point) and
its optimal-point metrics.

Loading is deterministic: records are sorted by their identity axes and
deduplicated by scenario key (first occurrence wins), so the same inputs
always produce the same table no matter the completion or file order they
were written in.

Store scans prefer the **columnar sidecars** the store layer maintains
(:mod:`repro.store.columns`): packed segments are scanned sidecar-first --
optionally in parallel, one segment per process-pool task -- and only the
rows a sidecar cannot answer fall back to full-record decode, so the
output is identical either way, row for row and bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.core.exceptions import ConfigurationError
from repro.objectives.registry import DEFAULT_OBJECTIVE
from repro.optimize.channels import total_channels_used
from repro.store import columns as columns_module
from repro.store.factory import open_store
from repro.store.packed import PackedResultStore
from repro.store.result_store import ResultStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import ScenarioResult
    from repro.optimize.result import TwoStepResult

#: Callback type of the optional scan progress reporter: called with one
#: human-readable line per unit of progress (segment scanned, decode batch).
ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class AnalysisRecord:
    """One solved scenario, flattened for analysis.

    Attributes
    ----------
    key:
        The scenario's content key, normalised to the short exported form
        (the first 16 hex chars of the canonical digest) whatever the
        source, so the same scenario loaded from a store and from a sweep
        JSONL deduplicates onto one row.
    soc, solver, objective:
        Identity axes of the scenario.
    channels, depth, broadcast:
        The operating point (ATE channels, vector-memory depth, broadcast
        switch).
    optimal_sites, channels_per_site, test_time_cycles:
        The optimal point's multi-site configuration.
    value:
        The objective value at the optimal point (devices/hour for the
        default objective; whatever the registered objective measures
        otherwise).
    lower_bound:
        The certified bound on the achievable objective value
        (:mod:`repro.solvers.bounds`), or ``None`` when the source carries
        no certificate (e.g. a sweep JSONL written before bounds existed).
    """

    key: str
    soc: str
    solver: str
    objective: str
    channels: int
    depth: int
    broadcast: bool
    optimal_sites: int
    channels_per_site: int
    test_time_cycles: int
    value: float
    lower_bound: float | None = None

    @property
    def gap(self) -> float | None:
        """Relative optimality gap against the certificate (0.0 = proven optimal)."""
        from repro.solvers.bounds import relative_gap

        return relative_gap(self.value, self.lower_bound, self.objective)

    @property
    def employed_channels(self) -> int:
        """ATE channels the optimal configuration actually consumes.

        Broadcast-aware: under broadcast the sites share one set of
        stimulus channels, so the count is ``k/2 + sites * k/2`` rather
        than ``sites * k`` -- the same accounting the
        ``cost_per_good_die`` and ``channel_budget`` objectives use.
        """
        return total_channels_used(
            self.channels_per_site, self.optimal_sites, self.broadcast
        )

    def sort_key(self) -> tuple:
        """Deterministic ordering: identity axes first, then the key."""
        return (
            self.soc,
            self.solver,
            self.objective,
            self.channels,
            self.depth,
            self.broadcast,
            self.key,
        )


def _record_from_result(outcome: "ScenarioResult") -> AnalysisRecord:
    scenario = outcome.scenario
    result = outcome.result
    return AnalysisRecord(
        key=scenario.key,
        soc=scenario.soc_name,
        solver=scenario.solver,
        objective=scenario.objective,
        channels=scenario.test_cell.ate.channels,
        depth=scenario.test_cell.ate.depth,
        broadcast=scenario.config.broadcast,
        optimal_sites=result.optimal_sites,
        channels_per_site=result.best.channels_per_site,
        test_time_cycles=result.best.test_time_cycles,
        value=result.optimal_throughput,
        lower_bound=outcome.lower_bound,
    )


def records_from_results(results: Iterable["ScenarioResult"]) -> tuple[AnalysisRecord, ...]:
    """Normalise in-memory engine results into analysis records."""
    return _finalize(_record_from_result(outcome) for outcome in results)


def records_from_store(
    store: "ResultStore | PackedResultStore | str | Path",
    *,
    columns: bool = True,
    workers: int | None = None,
    progress: "ProgressFn | None" = None,
) -> tuple[AnalysisRecord, ...]:
    """Scan a persistent result store into analysis records.

    Accepts a store object or the path of one (either backend -- legacy
    directory or packed; see :func:`repro.store.open_store`).  Corrupt
    records are skipped, exactly as the store's own readers do.

    With ``columns`` (the default) the scan reads the store's columnar
    sidecars where they are valid and decodes record payloads only where
    they are not, producing bit-identical records either way; packed
    stores additionally accept ``workers`` to scan segments in a process
    pool (one task per segment, merged deterministically).  ``progress``
    receives one stderr-style line per scanned segment / decode batch.
    """
    store = open_store(store)
    if columns and isinstance(store, PackedResultStore):
        return _finalize(_packed_column_rows(store, workers=workers, progress=progress))
    if columns and isinstance(store, ResultStore):
        rows = columns_module.read_dir_sidecar(store)
        if rows is not None:
            if progress is not None:
                progress(f"[1/1] {columns_module.DIR_SIDECAR}: {len(rows)} row(s)")
            return _finalize(AnalysisRecord(*row) for row in rows)
    return _finalize(_decoded_rows(store, progress=progress))


def _decoded_rows(
    store: "ResultStore | PackedResultStore", progress: "ProgressFn | None" = None
) -> Iterable[AnalysisRecord]:
    """Full-record decode of a store (the reference scan both backends share)."""
    from repro.solvers.bounds import certificate

    rows = []
    for entry, result in store.records():
        step1 = result.step1
        if entry.has_lower_bound:
            bound = entry.lower_bound
        else:
            cert = certificate(
                step1.architecture.soc, step1.ate, step1.probe_station,
                step1.config, entry.objective,
            )
            bound = None if cert is None else cert.value
        rows.append(
            AnalysisRecord(
                key=entry.key[:16],
                soc=entry.soc_name,
                solver=entry.solver,
                objective=entry.objective,
                channels=result.step1.ate.channels,
                depth=result.step1.ate.depth,
                broadcast=result.step1.config.broadcast,
                optimal_sites=result.optimal_sites,
                channels_per_site=result.best.channels_per_site,
                test_time_cycles=result.best.test_time_cycles,
                value=result.optimal_throughput,
                lower_bound=bound,
            )
        )
        if progress is not None and len(rows) % 1000 == 0:
            progress(f"[{len(rows)}] record(s) decoded")
    if progress is not None:
        progress(f"decoded {len(rows)} record(s) from {store.root}")
    return rows


def _packed_column_rows(
    store: PackedResultStore,
    workers: int | None = None,
    progress: "ProgressFn | None" = None,
) -> Iterable[AnalysisRecord]:
    """Sidecar-first scan of a packed store, one segment at a time.

    The live ``(offset, length)`` work list comes from the store's index,
    so this reads exactly the record copies the full-decode path reads
    (superseded and evicted lines excluded).  Segments are scanned
    serially or across a process pool and always merged in sorted segment
    order, then by offset -- parallel and serial scans are
    indistinguishable byte for byte.
    """
    locations = store.record_locations()
    names = sorted(locations)
    scans: "list[columns_module.SegmentScan] | None" = None
    if workers is not None and workers > 1 and len(names) > 1:
        scans = _scan_parallel(store, names, locations, workers, progress)
    if scans is None:
        scans = []
        for number, name in enumerate(names, start=1):
            scan = columns_module.scan_segment(
                store._segment_path(name), locations[name]
            )
            scans.append(scan)
            if progress is not None:
                progress(_segment_progress(number, len(names), scan))
    rows = []
    for scan in scans:
        for _offset, values in scan.rows:
            rows.append(AnalysisRecord(*values))
    return rows


def _scan_parallel(
    store: PackedResultStore,
    names: "list[str]",
    locations: "dict[str, list[tuple[int, int]]]",
    workers: int,
    progress: "ProgressFn | None",
) -> "list[columns_module.SegmentScan] | None":
    """Fan segment scans out to a process pool; ``None`` falls back to serial.

    Pool construction or task failure (sandboxed platforms without working
    ``fork``/semaphores, broken pools) degrades to the serial scan rather
    than failing the analysis.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(names))) as pool:
            futures = {
                pool.submit(
                    columns_module.scan_segment,
                    str(store._segment_path(name)),
                    locations[name],
                ): name
                for name in names
            }
            done = 0
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    done += 1
                    if progress is not None:
                        progress(_segment_progress(done, len(names), future.result()))
            by_name = {futures[future]: future.result() for future in futures}
            return [by_name[name] for name in names]
    except (OSError, ImportError, RuntimeError, ValueError):
        return None


def _segment_progress(done: int, total: int, scan: "columns_module.SegmentScan") -> str:
    source = "columns" if scan.used_sidecar else "decoded"
    line = f"[{done}/{total}] {scan.segment}: {len(scan.rows)} row(s) [{source}]"
    if scan.corrupt:
        line += f" ({scan.corrupt} corrupt skipped)"
    return line


def _record_from_sweep_row(row: dict[str, Any]) -> AnalysisRecord:
    optimal = row["optimal"]
    bound = row.get("lower_bound")
    return AnalysisRecord(
        key=str(row["scenario_key"]),
        soc=str(row["soc"]),
        solver=str(row.get("solver", "")),
        objective=str(row.get("objective_name", DEFAULT_OBJECTIVE)),
        channels=int(row["ate_channels"]),
        depth=int(row["ate_depth"]),
        broadcast=bool(row["broadcast"]),
        optimal_sites=int(optimal["sites"]),
        channels_per_site=int(optimal["channels_per_site"]),
        test_time_cycles=int(optimal["test_time_cycles"]),
        value=float(optimal["throughput_per_hour"]),
        lower_bound=None if bound is None else float(bound),
    )


def records_from_jsonl(
    path: str | Path, *, progress: "ProgressFn | None" = None
) -> tuple[AnalysisRecord, ...]:
    """Parse a ``repro sweep --output`` JSONL file into analysis records.

    The file is streamed line by line (never read whole), so a multi-GB
    sweep output analyzes in memory bounded by its record count, not its
    payload size.

    Raises
    ------
    ConfigurationError
        When a line is not valid JSON or lacks the sweep-record fields --
        unlike store corruption, a malformed input *file* is a user error
        worth surfacing.
    """
    path = Path(path)
    rows = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    rows.append(_record_from_sweep_row(json.loads(line)))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                    raise ConfigurationError(
                        f"{path}:{number} is not a sweep record: {error}"
                    ) from error
                if progress is not None and len(rows) % 10000 == 0:
                    progress(f"[{len(rows)}] sweep row(s) read from {path}")
    except OSError as error:
        raise ConfigurationError(f"cannot read sweep JSONL {path}: {error}") from error
    if progress is not None:
        progress(f"read {len(rows)} sweep row(s) from {path}")
    return _finalize(rows)


def load_records(
    store: "ResultStore | PackedResultStore | str | Path | None" = None,
    jsonl_paths: Sequence[str | Path] = (),
    *,
    columns: bool = True,
    workers: int | None = None,
    progress: "ProgressFn | None" = None,
) -> tuple[AnalysisRecord, ...]:
    """Load and merge records from a store and/or sweep JSONL files.

    ``columns``/``workers``/``progress`` thread through to
    :func:`records_from_store` (and ``progress`` to
    :func:`records_from_jsonl`).

    Raises
    ------
    ConfigurationError
        When no source is given, or a JSONL file is malformed.
    """
    if store is None and not jsonl_paths:
        raise ConfigurationError(
            "analysis needs at least one source: a --store directory or sweep JSONL files"
        )
    rows: list[AnalysisRecord] = []
    if store is not None:
        rows.extend(
            records_from_store(store, columns=columns, workers=workers, progress=progress)
        )
    for path in jsonl_paths:
        rows.extend(records_from_jsonl(path, progress=progress))
    return _finalize(rows)


def _finalize(rows: Iterable[AnalysisRecord]) -> tuple[AnalysisRecord, ...]:
    """Dedup by key (first occurrence wins) and sort deterministically."""
    seen: dict[str, AnalysisRecord] = {}
    for row in rows:
        seen.setdefault(row.key, row)
    return tuple(sorted(seen.values(), key=AnalysisRecord.sort_key))
