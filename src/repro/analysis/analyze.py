"""Campaign analysis: metrics, group-by summaries, best-per-SOC, Pareto.

Everything here is a pure, deterministic function from
:class:`~repro.analysis.records.AnalysisRecord` tuples to either record
selections or :class:`~repro.reporting.tables.Table` views, so the same
campaign data always renders the same report -- the property the pinned
d695 analysis tests rely on.

Metrics are named extractors with an optimisation sense, mirroring the
objective registry one level down: ``time`` and ``cost`` are minimised,
``throughput`` and ``sites`` maximised.  The ``cost`` metric values the
employed ATE capacity (optimal sites x channels per site, at the machine's
vector depth) with the Section-7 street prices -- the same valuation the
``cost_per_good_die`` objective uses -- so objective sweeps and analysis
agree on what a configuration costs.

The aggregations (:func:`group_summary`, :func:`best_per_soc`,
:func:`pareto_front`) run numpy-vectorised when numpy is importable and
fall back to pure-Python scalar implementations otherwise.  Both paths are
**bit-identical**: the vector code replays the scalar arithmetic exactly
(same IEEE-754 operation order for the cost model, ``math.fsum`` means,
first-minimum tie-breaks), which the cross-implementation tests pin.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

try:  # numpy is an accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar tests
    _np = None

from repro.analysis.records import AnalysisRecord
from repro.ate.pricing import AtePricing
from repro.core.exceptions import ConfigurationError
from repro.reporting.tables import Table

#: Street-price model the ``cost`` metric values employed capacity with.
_PRICING = AtePricing()


@dataclass(frozen=True)
class Metric:
    """One named per-record metric with an optimisation sense."""

    name: str
    title: str
    sense: str  # "max" | "min"
    extract: Callable[[AnalysisRecord], float]

    def signed(self, record: AnalysisRecord) -> float:
        """The metric in minimise convention (used by Pareto dominance)."""
        value = self.extract(record)
        return -value if self.sense == "max" else value


METRICS: dict[str, Metric] = {
    metric.name: metric
    for metric in (
        Metric(
            "time",
            title="optimal test time (cycles)",
            sense="min",
            extract=lambda record: float(record.test_time_cycles),
        ),
        Metric(
            "cost",
            title="employed ATE capital (USD)",
            sense="min",
            extract=lambda record: _PRICING.capital_cost_usd(
                record.employed_channels, record.depth
            ),
        ),
        Metric(
            "throughput",
            title="objective value at the optimum",
            sense="max",
            extract=lambda record: record.value,
        ),
        Metric(
            "sites",
            title="optimal number of sites",
            sense="max",
            extract=lambda record: float(record.optimal_sites),
        ),
        Metric(
            "channels",
            title="ATE channels of the operating point",
            sense="min",
            extract=lambda record: float(record.channels),
        ),
        Metric(
            "depth",
            title="vector-memory depth of the operating point",
            sense="min",
            extract=lambda record: float(record.depth),
        ),
    )
}

#: Record fields a summary can group on, with their accessors.
GROUP_COLUMNS: dict[str, Callable[[AnalysisRecord], object]] = {
    "soc": lambda record: record.soc,
    "solver": lambda record: record.solver,
    "objective": lambda record: record.objective,
    "channels": lambda record: record.channels,
    "depth": lambda record: record.depth,
    "broadcast": lambda record: record.broadcast,
}


def _extract_array(metric: Metric, records: Sequence[AnalysisRecord]):
    """The metric over ``records`` as a float64 array, or ``None`` to fall back.

    Each branch replays the corresponding scalar extractor bit for bit:
    int-to-float64 casts are exact (every field fits in 53 bits), and the
    ``cost`` branch evaluates the pricing polynomial in the same operation
    order as :meth:`AtePricing.capital_cost_usd` over the same
    broadcast-aware employed-channel count.
    """
    if _np is None:
        return None
    count = len(records)
    name = metric.name
    if name == "time":
        return _np.fromiter(
            (record.test_time_cycles for record in records), _np.float64, count
        )
    if name == "throughput":
        return _np.fromiter((record.value for record in records), _np.float64, count)
    if name == "sites":
        return _np.fromiter(
            (record.optimal_sites for record in records), _np.float64, count
        )
    if name == "channels":
        return _np.fromiter((record.channels for record in records), _np.float64, count)
    if name == "depth":
        return _np.fromiter((record.depth for record in records), _np.float64, count)
    if name == "cost":
        per_site = _np.fromiter(
            (record.channels_per_site for record in records), _np.int64, count
        )
        sites = _np.fromiter(
            (record.optimal_sites for record in records), _np.int64, count
        )
        broadcast = _np.fromiter(
            (record.broadcast for record in records), _np.bool_, count
        )
        depth = _np.fromiter((record.depth for record in records), _np.float64, count)
        half = per_site // 2
        employed = _np.where(broadcast, half + sites * half, sites * per_site)
        return employed.astype(_np.float64) * (
            _PRICING.price_per_channel() + depth * _PRICING.price_per_vector_per_channel()
        )
    return None


def get_metric(name: str) -> Metric:
    """Look a metric up by name.

    Raises
    ------
    ConfigurationError
        When no metric of that name exists.
    """
    if name not in METRICS:
        known = ", ".join(sorted(METRICS))
        raise ConfigurationError(f"unknown metric {name!r}; available: {known}")
    return METRICS[name]


def records_table(records: Sequence[AnalysisRecord], title: str = "Campaign records") -> Table:
    """The full columnar view: one row per record, in deterministic order."""
    table = Table(
        title=title,
        columns=[
            "SOC",
            "solver",
            "objective",
            "N",
            "depth",
            "bcast",
            "n_opt",
            "k",
            "t (cycles)",
            "value",
            "gap",
            "cost (USD)",
        ],
    )
    cost = METRICS["cost"]
    for record in records:
        gap = record.gap
        table.add_row(
            [
                record.soc,
                record.solver,
                record.objective,
                record.channels,
                record.depth,
                "on" if record.broadcast else "off",
                record.optimal_sites,
                record.channels_per_site,
                record.test_time_cycles,
                f"{record.value:.4g}",
                "-" if gap is None else f"{gap:.2%}",
                round(cost.extract(record), 2),
            ]
        )
    return table


def group_summary(
    records: Sequence[AnalysisRecord], by: str, metric_name: str = "throughput"
) -> Table:
    """Group records by a column and summarise one metric per group.

    Groups are emitted in sorted order; each row carries the group's record
    count and the metric's min / mean / max.
    """
    if by not in GROUP_COLUMNS:
        known = ", ".join(sorted(GROUP_COLUMNS))
        raise ConfigurationError(f"cannot group by {by!r}; available: {known}")
    metric = get_metric(metric_name)
    accessor = GROUP_COLUMNS[by]
    table = Table(
        title=f"{metric.title} by {by}",
        columns=[by, "records", "min", "mean", "max"],
    )
    values = _extract_array(metric, records) if records else None
    if values is None:
        return _group_summary_scalar(records, accessor, metric, table)
    groups: dict[object, list[int]] = {}
    for index, record in enumerate(records):
        groups.setdefault(accessor(record), []).append(index)
    for group in sorted(groups, key=repr):
        members = values[_np.array(groups[group], dtype=_np.intp)]
        # math.fsum over the exact member floats reproduces
        # statistics.fmean bit for bit (fmean is fsum / n).
        mean = math.fsum(members.tolist()) / len(members)
        table.add_row(
            [
                group,
                len(members),
                f"{float(members.min()):.4g}",
                f"{mean:.4g}",
                f"{float(members.max()):.4g}",
            ]
        )
    return table


def _group_summary_scalar(
    records: Sequence[AnalysisRecord],
    accessor: Callable[[AnalysisRecord], object],
    metric: Metric,
    table: Table,
) -> Table:
    """Pure-Python :func:`group_summary` body (no-numpy fallback, pinned equal)."""
    groups: dict[object, list[AnalysisRecord]] = {}
    for record in records:
        groups.setdefault(accessor(record), []).append(record)
    for group in sorted(groups, key=repr):
        values = [metric.extract(record) for record in groups[group]]
        table.add_row(
            [
                group,
                len(values),
                f"{min(values):.4g}",
                f"{statistics.fmean(values):.4g}",
                f"{max(values):.4g}",
            ]
        )
    return table


def best_per_soc(
    records: Sequence[AnalysisRecord], metric_name: str = "throughput"
) -> tuple[AnalysisRecord, ...]:
    """The metric-best record of every SOC, one row per SOC, sorted by SOC.

    Ties resolve towards the record that sorts first in the deterministic
    record order, so the selection never depends on input order.
    """
    metric = get_metric(metric_name)
    ordered = sorted(records, key=AnalysisRecord.sort_key)
    values = _extract_array(metric, ordered) if ordered else None
    if values is None:
        return _best_per_soc_scalar(ordered, metric)
    signed = -values if metric.sense == "max" else values
    groups: dict[str, list[int]] = {}
    for index, record in enumerate(ordered):
        groups.setdefault(record.soc, []).append(index)
    best = {}
    for soc, indices in groups.items():
        # argmin keeps the first minimum, matching the scalar strict-<
        # incumbent test over the deterministically ordered records.
        member = _np.array(indices, dtype=_np.intp)
        best[soc] = ordered[int(member[int(_np.argmin(signed[member]))])]
    return tuple(best[name] for name in sorted(best))


def _best_per_soc_scalar(
    ordered: Sequence[AnalysisRecord], metric: Metric
) -> tuple[AnalysisRecord, ...]:
    """Pure-Python :func:`best_per_soc` body (no-numpy fallback, pinned equal)."""
    best: dict[str, AnalysisRecord] = {}
    for record in ordered:
        incumbent = best.get(record.soc)
        if incumbent is None or metric.signed(record) < metric.signed(incumbent):
            best[record.soc] = record
    return tuple(best[name] for name in sorted(best))


def pareto_front(
    records: Sequence[AnalysisRecord], x_metric: str, y_metric: str
) -> tuple[AnalysisRecord, ...]:
    """The 2-D Pareto front of the records under two named metrics.

    A record is on the front when no other record is at least as good in
    both metrics and strictly better in one (each metric's sense decides
    what "better" means).  Records with identical metric pairs are all
    kept.  The front is returned in deterministic order: ascending in the
    x metric's minimise convention, ties broken by the y value and then by
    the record sort order.
    """
    if x_metric == y_metric:
        raise ConfigurationError("pareto needs two different metrics")
    x_spec, y_spec = get_metric(x_metric), get_metric(y_metric)
    ordered = sorted(records, key=AnalysisRecord.sort_key)
    front = _pareto_candidates(ordered, x_spec, y_spec)
    front.sort(key=lambda item: (item[0], item[1], item[2].sort_key()))
    return tuple(record for _, _, record in front)


def _pareto_candidates(
    ordered: Sequence[AnalysisRecord], x_spec: Metric, y_spec: Metric
) -> list[tuple[float, float, AnalysisRecord]]:
    """Non-dominated ``(x, y, record)`` triples of the ordered records.

    The vector path replaces the O(n^2) dominance scan with a sort-based
    sweep: after ordering by (x, y) in minimise convention, a point is
    dominated iff the minimum y over strictly-smaller x is <= its y, or
    the minimum y within its own x-run is < its y -- the same strict/weak
    split the scalar predicate expresses, so ties (identical metric
    pairs) are all kept on both paths.
    """
    x_values = _extract_array(x_spec, ordered) if ordered else None
    y_values = _extract_array(y_spec, ordered) if ordered else None
    if x_values is None or y_values is None:
        valued = [
            (x_spec.signed(record), y_spec.signed(record), record)
            for record in ordered
        ]
        return [
            (x, y, record)
            for x, y, record in valued
            if not any(
                (ox <= x and oy < y) or (ox < x and oy <= y) for ox, oy, _ in valued
            )
        ]
    if x_spec.sense == "max":
        x_values = -x_values
    if y_spec.sense == "max":
        y_values = -y_values
    count = len(ordered)
    order = _np.lexsort((y_values, x_values))
    xs, ys = x_values[order], y_values[order]
    new_run = _np.empty(count, dtype=bool)
    new_run[0] = True
    new_run[1:] = xs[1:] != xs[:-1]
    run_start = _np.maximum.accumulate(
        _np.where(new_run, _np.arange(count), 0)
    )
    prefix_min = _np.minimum.accumulate(ys)
    has_smaller_x = run_start > 0
    best_smaller = prefix_min[_np.maximum(run_start - 1, 0)]
    best_same = ys[run_start]
    dominated_sorted = (has_smaller_x & (best_smaller <= ys)) | (best_same < ys)
    keep = _np.empty(count, dtype=bool)
    keep[order] = ~dominated_sorted
    return [
        (float(x_values[index]), float(y_values[index]), ordered[index])
        for index in range(count)
        if keep[index]
    ]


def pareto_table(
    records: Sequence[AnalysisRecord], x_metric: str, y_metric: str
) -> Table:
    """Render :func:`pareto_front` as a table (front order, raw values)."""
    x_spec, y_spec = get_metric(x_metric), get_metric(y_metric)
    table = Table(
        title=f"Pareto front: {x_metric} ({x_spec.sense}) vs {y_metric} ({y_spec.sense})",
        columns=["SOC", "solver", "objective", "N", "depth", "n_opt", "k",
                 x_metric, y_metric],
    )
    for record in pareto_front(records, x_metric, y_metric):
        table.add_row(
            [
                record.soc,
                record.solver,
                record.objective,
                record.channels,
                record.depth,
                record.optimal_sites,
                record.channels_per_site,
                f"{x_spec.extract(record):.4g}",
                f"{y_spec.extract(record):.4g}",
            ]
        )
    return table


def best_table(
    records: Sequence[AnalysisRecord], metric_name: str = "throughput"
) -> Table:
    """Render :func:`best_per_soc` as a table."""
    metric = get_metric(metric_name)
    table = Table(
        title=f"Best per SOC by {metric_name} ({metric.sense})",
        columns=["SOC", "solver", "objective", "N", "depth", "n_opt", "k", metric_name],
    )
    for record in best_per_soc(records, metric_name):
        table.add_row(
            [
                record.soc,
                record.solver,
                record.objective,
                record.channels,
                record.depth,
                record.optimal_sites,
                record.channels_per_site,
                f"{metric.extract(record):.4g}",
            ]
        )
    return table
