"""Campaign analysis over persisted results (``repro analyze``).

The campaign layer (PR 4) streams sweeps into :class:`~repro.store.
ResultStore` directories and JSONL files; this package turns those
artifacts back into answers.  :mod:`repro.analysis.records` normalises
either source (or in-memory engine results) into flat, deterministic
:class:`AnalysisRecord` rows; :mod:`repro.analysis.analyze` provides the
views -- full columnar tables, group-by summaries, best-per-SOC selection
and 2-D Pareto-front extraction -- all rendered through
:class:`~repro.reporting.tables.Table`.  The CLI surface is ``python -m
repro analyze`` (see docs/cli.md).
"""

from repro.analysis.analyze import (
    GROUP_COLUMNS,
    METRICS,
    Metric,
    best_per_soc,
    best_table,
    get_metric,
    group_summary,
    pareto_front,
    pareto_table,
    records_table,
)
from repro.analysis.records import (
    AnalysisRecord,
    load_records,
    records_from_jsonl,
    records_from_results,
    records_from_store,
)

__all__ = [
    "GROUP_COLUMNS",
    "METRICS",
    "Metric",
    "AnalysisRecord",
    "best_per_soc",
    "best_table",
    "get_metric",
    "group_summary",
    "load_records",
    "pareto_front",
    "pareto_table",
    "records_from_jsonl",
    "records_from_results",
    "records_from_store",
    "records_table",
]
