"""Persistent result store: the on-disk caching tier.

The scenario :class:`~repro.api.engine.Engine` memoises results in memory,
but every new process starts cold.  This package adds the tier below it:

* :class:`~repro.store.result_store.ResultStore` -- a content-addressed
  on-disk store (one JSON record per solved scenario, keyed by the
  scenario's solver-aware canonical digest) with atomic writes and
  corruption-tolerant reads;
* :class:`~repro.store.packed.PackedResultStore` -- the same records
  packed into append-only segment files behind a SQLite index, for
  million-record campaign stores (indexed lookups, sub-second ``info``,
  ``compact``/``reindex`` maintenance);
* :func:`~repro.store.factory.open_store` /
  :func:`~repro.store.factory.migrate_store` -- backend detection by
  on-disk layout, and digest-verified legacy-to-packed migration;
* :mod:`~repro.store.serialize` -- the exact JSON codec for the result
  graph (registered frozen dataclasses only, with sub-object interning).

Attach a store to an engine with ``Engine(store=...)`` (or ``--store DIR``
on the CLI): scenario results computed in any process using the same
directory are reused everywhere, which is what makes repeated design-space
sweeps (Table 1, Figures 5-7) cheap across runs.  See ARCHITECTURE.md for
the full three-tier caching story.
"""

from repro.store.factory import MigrationReport, is_packed, migrate_store, open_store
from repro.store.packed import (
    PACKED_MANIFEST,
    CompactStats,
    PackedResultStore,
    SegmentStat,
)
from repro.store.result_store import (
    RECORD_SUFFIX,
    STORE_FORMAT,
    ResultStore,
    StoreEntry,
    StoreInfo,
    decode_record,
    make_record,
)
from repro.store.serialize import (
    decode_result,
    encode_result,
    register_storable,
    storable_names,
)

__all__ = [
    "PACKED_MANIFEST",
    "RECORD_SUFFIX",
    "STORE_FORMAT",
    "CompactStats",
    "MigrationReport",
    "PackedResultStore",
    "ResultStore",
    "SegmentStat",
    "StoreEntry",
    "StoreInfo",
    "decode_record",
    "decode_result",
    "encode_result",
    "is_packed",
    "make_record",
    "migrate_store",
    "open_store",
    "register_storable",
    "storable_names",
]
