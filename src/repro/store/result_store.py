"""Content-addressed on-disk store for solved scenarios.

:class:`ResultStore` persists one JSON record per solved ``(scenario,
solver)`` point, keyed by the scenario's solver-aware canonical digest
(:attr:`repro.api.scenario.Scenario.digest` -- the SHA-256 of the resolved
canonical key, so the same operating point hits the same record no matter
how the SOC was referenced or which process computed it).  It is the third
caching tier of the system, and the only one that survives the process:

1. the per-process evaluation kernel (:mod:`repro.solvers.evaluate`)
   memoises ``(design, sites)`` points;
2. the :class:`~repro.api.engine.Engine` memoises whole scenario results
   in memory;
3. this store memoises scenario results **on disk**, amortising repeated
   CLI invocations, CI runs and benchmark sessions.

Records are written atomically (temp file + ``os.replace`` in the store
directory), so concurrent writers -- parallel ``run_batch`` drivers or
several engines sharing one directory -- can never expose a half-written
record to a reader; the worst case is that the same record is computed and
written twice.  Reads are corruption-tolerant: a truncated file, a
hash/format mismatch or a payload that fails validation counts as a miss
(and is reported in :meth:`ResultStore.info`), never as an error or a wrong
result.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.core.exceptions import ConfigurationError, ReproError, StoreError
from repro.objectives.registry import DEFAULT_OBJECTIVE
from repro.store.serialize import decode_result, encode_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scenario import Scenario
    from repro.optimize.result import TwoStepResult

#: Version of the on-disk record layout.  Bump on incompatible changes;
#: records written under another format version are treated as misses.
STORE_FORMAT = 1

#: File-name suffix of store records.
RECORD_SUFFIX = ".json"

#: Per-process counter making staging file names unique, so concurrent
#: writers (threads of one process as well as separate processes, which
#: differ by pid) never share a temp file.
_STAGING_IDS = itertools.count()


def make_record(scenario: "Scenario", result: "TwoStepResult") -> dict:
    """Build the JSON record dict every store backend persists for a scenario.

    This is the single wire/disk format of the store layer: the directory
    backend writes one such dict per file, the packed backend appends them
    as segment lines, and the campaign service ships them over HTTP.  The
    record is self-describing (``key`` is the scenario's full digest), so a
    consumer can verify it against the scenario that requested it.

    The ``analysis`` block carries the flat metric columns analysis needs
    (plus the certified lower bound, computed here -- once per problem
    structure, thanks to the certificate cache -- rather than on every
    future scan), so the packed backend can fill its columnar sidecar and
    the analysis layer can skip decoding the payload entirely.
    """
    from repro import __version__
    from repro.solvers.bounds import scenario_lower_bound

    return {
        "format": STORE_FORMAT,
        "package_version": __version__,
        "key": scenario.digest,
        "created_at": time.time(),
        "scenario": {
            "soc": scenario.soc_name,
            "solver": scenario.solver,
            "objective": scenario.objective,
            "description": scenario.describe(),
        },
        "result": encode_result(result),
        "analysis": {
            "channels": result.step1.ate.channels,
            "depth": result.step1.ate.depth,
            "broadcast": result.step1.config.broadcast,
            "optimal_sites": result.optimal_sites,
            "channels_per_site": result.best.channels_per_site,
            "test_time_cycles": result.best.test_time_cycles,
            "value": result.optimal_throughput,
            "lower_bound": scenario_lower_bound(scenario),
        },
    }


def record_lower_bound(record: object) -> tuple[bool, float | None]:
    """The persisted lower bound of a record dict, as ``(present, value)``.

    ``present`` is ``True`` only when the record's ``analysis`` block
    carries a well-typed ``lower_bound`` entry (``None`` counts: it means
    "no certificate exists for this family", which is worth persisting).
    Readers fall back to recomputing the certificate when it is absent --
    the pre-sidecar behaviour.
    """
    if not isinstance(record, dict):
        return False, None
    block = record.get("analysis")
    if not isinstance(block, dict) or "lower_bound" not in block:
        return False, None
    bound = block["lower_bound"]
    if bound is None:
        return True, None
    if isinstance(bound, (int, float)) and not isinstance(bound, bool):
        return True, float(bound)
    return False, None


def decode_record(record: object, expected_key: str | None = None) -> "TwoStepResult":
    """Validate a parsed record dict and rebuild its result payload.

    Shared read-path validation of both store backends: the record must be
    a dict carrying the current :data:`STORE_FORMAT`, its recorded ``key``
    must match ``expected_key`` (when given), and its payload must decode
    into a :class:`~repro.optimize.result.TwoStepResult`.

    Raises
    ------
    StoreError
        On any violation; store readers treat it as a corrupt-record miss.
    """
    from repro.optimize.result import TwoStepResult

    if not isinstance(record, dict):
        raise StoreError("record is not a JSON object")
    if record.get("format") != STORE_FORMAT:
        raise StoreError(f"unsupported store format {record.get('format')!r}")
    if expected_key is not None and record.get("key") != expected_key:
        raise StoreError("record key does not match the scenario digest")
    if "result" not in record:
        raise StoreError("record has no result payload")
    result = decode_result(record["result"])
    if not isinstance(result, TwoStepResult):
        raise StoreError(
            f"record payload is a {type(result).__name__}, not a TwoStepResult"
        )
    return result


def entry_from_record(record: object, path: Path, size_bytes: int) -> StoreEntry:
    """Build the :class:`StoreEntry` metadata row of a parsed record dict.

    Raises :class:`StoreError` when the record is not a current-format
    record dict with a key; metadata fields degrade to empty defaults.
    """
    if not isinstance(record, dict) or record.get("format") != STORE_FORMAT:
        raise StoreError("not a current-format record")
    if "key" not in record:
        raise StoreError("record has no key")
    scenario = record.get("scenario") or {}
    has_lower_bound, lower_bound = record_lower_bound(record)
    return StoreEntry(
        key=str(record["key"]),
        path=path,
        soc_name=str(scenario.get("soc", "")),
        solver=str(scenario.get("solver", "")),
        package_version=str(record.get("package_version", "")),
        size_bytes=size_bytes,
        created_at=float(record.get("created_at", 0.0)),
        objective=str(scenario.get("objective", DEFAULT_OBJECTIVE)),
        lower_bound=lower_bound,
        has_lower_bound=has_lower_bound,
    )


def record_key(record: object) -> str:
    """The safe record key of a record dict destined for storage.

    Raises
    ------
    StoreError
        When the record carries no key, or the key could escape the store
        (path separators, dots) -- raw ingestion (the campaign service, the
        migration tool) must never let a payload name a file outside the
        store.
    """
    if not isinstance(record, dict):
        raise StoreError("record is not a JSON object")
    key = record.get("key")
    if not isinstance(key, str) or not key:
        raise StoreError("record has no key")
    if not all(ch.isalnum() or ch in "-_" for ch in key):
        raise StoreError(f"record key {key!r} is not a plain token")
    return key


@dataclass(frozen=True)
class StoreEntry:
    """One record found by :meth:`ResultStore.scan`.

    Attributes
    ----------
    key:
        The scenario's full canonical digest (also the file stem).
    path:
        Location of the record file.
    soc_name, solver, objective:
        Scenario metadata recorded at :meth:`ResultStore.put` time.
        ``objective`` falls back to the default objective name for records
        written before the objective axis existed.
    package_version:
        ``repro.__version__`` of the writer.
    size_bytes:
        Size of the record file.
    created_at:
        POSIX timestamp recorded at write time.
    lower_bound, has_lower_bound:
        The certified objective bound persisted in the record's
        ``analysis`` block at write time.  ``has_lower_bound`` separates
        "persisted as None" (no certificate exists for the family) from
        "written before bounds were persisted" (readers recompute).
    """

    key: str
    path: Path
    soc_name: str
    solver: str
    package_version: str
    size_bytes: int
    created_at: float
    objective: str = DEFAULT_OBJECTIVE
    lower_bound: float | None = None
    has_lower_bound: bool = False


@dataclass(frozen=True)
class StoreInfo:
    """Session statistics of one result-store instance.

    ``hits``/``misses`` count :meth:`ResultStore.get` outcomes; ``corrupt``
    counts reads that found a record file but could not use it (bad JSON,
    format or key mismatch, failed validation) -- each such read is also a
    miss.  ``puts`` counts written records, ``size`` is the current number
    of records on disk.  ``backend`` names the on-disk layout (``"dir"``
    for the one-file-per-record :class:`ResultStore`, ``"packed"`` for the
    segmented :class:`~repro.store.packed.PackedResultStore`), ``format``
    the record format version, and ``segments`` the number of segment
    files (always 0 for the directory backend).
    """

    hits: int
    misses: int
    puts: int
    corrupt: int
    size: int
    backend: str = "dir"
    format: int = STORE_FORMAT
    segments: int = 0


class ResultStore:
    """Content-addressed persistent cache of scenario results.

    Parameters
    ----------
    root:
        Directory holding the record files (created when missing).  One
        store directory can be shared by any number of engines and
        processes; the atomic-write discipline keeps readers safe.

    Examples
    --------
    >>> from repro import Engine, Scenario, reference_test_cell   # doctest: +SKIP
    >>> store = ResultStore("~/.cache/repro-store")               # doctest: +SKIP
    >>> engine = Engine(store=store)                              # doctest: +SKIP

    The second process running the same scenario gets a store hit instead
    of re-solving it.
    """

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root).expanduser()
        if self._root.exists() and not self._root.is_dir():
            raise ConfigurationError(f"store path {self._root} exists and is not a directory")
        try:
            self._root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ConfigurationError(f"cannot create store directory {self._root}: {error}") from error
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._corrupt = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    def path_for(self, scenario: "Scenario") -> Path:
        """Record file a scenario's result is (or would be) stored at."""
        return self._root / f"{scenario.digest}{RECORD_SUFFIX}"

    def info(self) -> StoreInfo:
        """Hit/miss/put/corruption statistics of this store instance."""
        size = len(self)
        with self._lock:
            return StoreInfo(
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                corrupt=self._corrupt,
                size=size,
            )

    def __len__(self) -> int:
        return sum(1 for _ in self._record_paths())

    def __contains__(self, scenario: "Scenario") -> bool:
        return self.path_for(scenario).is_file()

    def contains_key(self, key: str) -> bool:
        """Presence test by digest (no record bytes are read or validated).

        Keys that could not name a record file of this store (path
        separators, dots) are simply absent, never an error.
        """
        candidate = self._root / f"{key}{RECORD_SUFFIX}"
        return candidate.parent == self._root and candidate.is_file()

    def missing_keys(self, keys: "Iterator[str] | list[str] | tuple[str, ...]") -> tuple[str, ...]:
        """The subset of ``keys`` the store does not hold, in input order.

        The batch presence test the campaign service answers worker dedup
        queries with; duplicated input keys are reported once.  Same
        semantics as :meth:`PackedResultStore.missing_keys
        <repro.store.packed.PackedResultStore.missing_keys>`, so the
        service works over either backend.
        """
        seen: dict[str, None] = {}
        for key in keys:
            if key not in seen:
                seen[key] = None
        return tuple(key for key in seen if not self.contains_key(key))

    def _record_paths(self) -> Iterator[Path]:
        try:
            yield from sorted(self._root.glob(f"*{RECORD_SUFFIX}"))
        except OSError:
            return

    def record_files(self) -> Iterator[Path]:
        """The store's record files, sorted by key (one ``.json`` per record)."""
        return self._record_paths()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, scenario: "Scenario") -> "TwoStepResult | None":
        """Return the stored result for ``scenario``, or ``None`` on a miss.

        A record only counts as a hit when it parses, carries the current
        :data:`STORE_FORMAT`, its recorded key matches the scenario's
        digest, and its payload rebuilds into a valid result.  Everything
        else -- including a record written under a different store format
        or moved to the wrong file name -- is a miss.
        """
        path = self.path_for(scenario)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._count(misses=1)
            return None
        except OSError:
            self._count(misses=1, corrupt=1)
            return None
        try:
            result = decode_record(json.loads(raw), expected_key=scenario.digest)
        except (json.JSONDecodeError, KeyError, ReproError, TypeError, ValueError):
            self._count(misses=1, corrupt=1)
            return None
        self._count(hits=1)
        return result

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, scenario: "Scenario", result: "TwoStepResult") -> Path:
        """Persist ``result`` under ``scenario``'s digest; returns the path.

        The record is staged in a sibling temp file and moved into place
        with :func:`os.replace`, which is atomic on POSIX and Windows:
        readers (including engine process-pool drivers sharing the
        directory) either see the previous record or the complete new one.
        """
        return self.put_record(make_record(scenario, result))

    def put_record(self, record: dict) -> Path:
        """Persist an already-built record dict under its own ``key``.

        The raw-ingestion path: the campaign service stores records shipped
        by remote workers through here, and so does store migration.  The
        key is validated to be a plain token (it can never name a file
        outside the store directory), but the payload is deliberately *not*
        re-decoded -- the read path validates on every :meth:`get`, so a
        bad payload becomes a corrupt-record miss, exactly like a
        truncated file.
        """
        key = record_key(record)
        path = self._root / f"{key}{RECORD_SUFFIX}"
        staging = path.with_name(f".{path.stem}.{os.getpid()}.{next(_STAGING_IDS)}.tmp")
        try:
            staging.write_text(
                json.dumps(record, separators=(",", ":")) + "\n", encoding="utf-8"
            )
            os.replace(staging, path)
        except BaseException:
            staging.unlink(missing_ok=True)
            raise
        self._count(puts=1)
        return path

    def put_records(self, records: "list[dict] | tuple[dict, ...]") -> tuple[Path, ...]:
        """Persist a batch of records; returns their paths in input order.

        The bulk form the engine's buffered flush and the campaign
        service's batched upload endpoint write through.  On this
        directory backend each record is still one atomic file replace
        (there is no cheaper multi-file primitive), so batching here only
        saves call overhead -- the packed backend is where ``put_records``
        turns a batch into a single segment append and one index
        transaction.
        """
        return tuple(self.put_record(record) for record in records)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def scan(self) -> tuple[StoreEntry, ...]:
        """List every readable record, sorted by key.

        Unreadable or malformed record files are skipped (and counted as
        ``corrupt`` in :meth:`info`); scanning never raises on a dirty
        directory.
        """
        entries: list[StoreEntry] = []
        for path in self._record_paths():
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                entries.append(entry_from_record(record, path, path.stat().st_size))
            except (OSError, json.JSONDecodeError, KeyError, ValueError, ReproError):
                self._count(corrupt=1)
        return tuple(sorted(entries, key=lambda entry: entry.key))

    def records(self) -> "Iterator[tuple[StoreEntry, TwoStepResult]]":
        """Yield every readable ``(entry, result)`` pair, sorted by key.

        The bulk read the analysis layer (:mod:`repro.analysis`) scans a
        store with: one pass over the record files parses each file once
        and yields both the :class:`StoreEntry` metadata and the decoded
        :class:`~repro.optimize.result.TwoStepResult` payload.  Records
        that fail to parse or decode are skipped and counted as
        ``corrupt``, exactly like :meth:`scan`; no record digest
        re-verification happens here (the scenario that wrote the record
        is not being rebuilt), so a renamed record file still yields its
        payload.
        """
        for path in self._record_paths():
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                entry = entry_from_record(record, path, path.stat().st_size)
                result = decode_record(record)
            except (OSError, json.JSONDecodeError, KeyError, ReproError, TypeError, ValueError):
                self._count(corrupt=1)
                continue
            yield entry, result

    def reindex_columns(self) -> int:
        """(Re)build the ``analysis.cols`` columnar snapshot; returns its rows.

        The directory backend has no write-path hook for the sidecar (each
        ``put`` is an independent atomic file replace), so its sidecar is
        an explicit snapshot: valid only while the record file set stays
        exactly as recorded, invalidated by any write or evict.  See
        :mod:`repro.store.columns`.
        """
        from repro.store.columns import rebuild_dir_sidecar

        return rebuild_dir_sidecar(self)

    def evict(self, keys: "Iterator[str] | list[str] | tuple[str, ...] | None" = None) -> int:
        """Delete records; returns how many files were removed.

        ``keys=None`` empties the store; otherwise only the named digests
        are removed.  Missing keys are ignored (another process may have
        evicted them first), and so are keys that do not name a plain
        record file inside the store directory (path separators, ``..``) --
        evict can only ever delete the store's own records.
        """
        if keys is None:
            targets = list(self._record_paths())
        else:
            targets = []
            for key in keys:
                candidate = self._root / f"{key}{RECORD_SUFFIX}"
                if candidate.parent == self._root:
                    targets.append(candidate)
        removed = 0
        for path in targets:
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue
            except OSError:
                continue
        return removed

    def _count(self, hits: int = 0, misses: int = 0, puts: int = 0, corrupt: int = 0) -> None:
        with self._lock:
            self._hits += hits
            self._misses += misses
            self._puts += puts
            self._corrupt += corrupt
