"""JSON codec for optimisation results (frozen dataclasses in, JSON out).

The persistent :class:`~repro.store.result_store.ResultStore` keeps one JSON
record per solved scenario.  The record payload is the full
:class:`~repro.optimize.result.TwoStepResult` graph -- nested frozen
dataclasses (architectures, channel groups, modules, wrappers, scenarios)
plus tuples and one enum.  This module converts that graph to and from
JSON-compatible data **exactly**: every ``int``/``float``/``str``/``bool``
field round-trips bit-identically (Python's ``json`` encodes floats via
``repr``, which round-trips), so a result read back from disk is equal to
the result that was written.

Two design points:

* **Type allowlist.**  Only classes registered with
  :func:`register_storable` are encoded/decoded (the whole result graph is
  pre-registered).  Decoding never imports arbitrary code paths from the
  payload -- an unknown type name raises :class:`~repro.core.exceptions.
  StoreError`, which the store treats as a corrupt record.
* **Interning.**  Identical sub-objects are emitted once and back-referenced
  afterwards.  A Step-2 result carries one architecture per evaluated site
  count and each architecture carries the full SOC; interning keeps the
  record small (tens of KB instead of MBs for a d695 result) and makes
  decoding fast enough that a warm store read is far cheaper than re-solving.

The codec is deliberately independent of the scenario layer: it serialises
*results*; scenario identity is handled by the store via the scenario's
canonical digest.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import Any

from repro.core.exceptions import StoreError

#: Reserved marker keys of the wire format.  Encoded dataclasses are tagged
#: ``__dataclass__`` (+ ``__id__`` for back-references), tuples
#: ``__tuple__``, enums ``__enum__``, and repeated objects ``__ref__``.
MARKER_KEYS = ("__dataclass__", "__enum__", "__tuple__", "__ref__", "__id__")

_STORABLE: dict[str, type] = {}


def register_storable(cls: type) -> type:
    """Register ``cls`` (a dataclass or :class:`~enum.Enum`) as storable.

    Registration is by class name, which therefore must be unique among
    storable types.  Returns ``cls`` so it can be used as a decorator by
    extensions that persist their own result types.
    """
    name = cls.__name__
    registered = _STORABLE.get(name)
    if registered is not None and registered is not cls:
        raise StoreError(f"storable type name {name!r} is already registered")
    _STORABLE[name] = cls
    return cls


def _ensure_builtin_storables() -> None:
    """Register the full result graph (imported lazily to avoid cycles)."""
    if "TwoStepResult" in _STORABLE:
        return
    from repro.ate.probe_station import ProbeStation
    from repro.ate.spec import AteSpec
    from repro.multisite.cost_model import TestTiming
    from repro.multisite.throughput import MultiSiteScenario
    from repro.optimize.config import Objective, OptimizationConfig
    from repro.optimize.result import SitePoint, Step1Result, TwoStepResult
    from repro.rpct.wrapper import ErpctWrapper
    from repro.soc.module import Module, ScanChain
    from repro.soc.soc import Soc
    from repro.tam.architecture import TestArchitecture
    from repro.tam.channel_group import ChannelGroup

    for cls in (
        AteSpec,
        ChannelGroup,
        ErpctWrapper,
        Module,
        MultiSiteScenario,
        Objective,
        OptimizationConfig,
        ProbeStation,
        ScanChain,
        SitePoint,
        Soc,
        Step1Result,
        TestArchitecture,
        TestTiming,
        TwoStepResult,
    ):
        register_storable(cls)


def storable_names() -> tuple[str, ...]:
    """Names of every registered storable type, sorted."""
    _ensure_builtin_storables()
    return tuple(sorted(_STORABLE))


class _Encoder:
    """One encoding pass; owns the interning memo."""

    def __init__(self) -> None:
        self._ids: dict[int, int] = {}
        # Keeps encoded objects alive so CPython cannot recycle an id()
        # for a different object within this pass.
        self._keepalive: list[Any] = []

    def encode(self, obj: Any) -> Any:
        if obj is None or isinstance(obj, (bool, int, str)):
            return obj
        if isinstance(obj, float):
            return obj
        if isinstance(obj, tuple):
            return {"__tuple__": [self.encode(item) for item in obj]}
        if isinstance(obj, Enum):
            name = type(obj).__name__
            if _STORABLE.get(name) is not type(obj):
                raise StoreError(f"enum type {name!r} is not registered as storable")
            return {"__enum__": name, "value": obj.value}
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            name = type(obj).__name__
            if _STORABLE.get(name) is not type(obj):
                raise StoreError(f"type {name!r} is not registered as storable")
            ref = self._ids.get(id(obj))
            if ref is not None:
                return {"__ref__": ref}
            ident = len(self._ids)
            self._ids[id(obj)] = ident
            self._keepalive.append(obj)
            fields = {
                field.name: self.encode(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
                if field.init
            }
            return {"__dataclass__": name, "__id__": ident, "fields": fields}
        raise StoreError(f"cannot encode object of type {type(obj).__name__}")


class _Decoder:
    """One decoding pass; resolves back-references as they appear."""

    def __init__(self) -> None:
        self._table: dict[int, Any] = {}

    def decode(self, data: Any) -> Any:
        if data is None or isinstance(data, (bool, int, float, str)):
            return data
        if not isinstance(data, dict):
            raise StoreError(f"malformed payload node of type {type(data).__name__}")
        if "__ref__" in data:
            ref = data["__ref__"]
            if ref not in self._table:
                raise StoreError(f"dangling back-reference {ref!r}")
            return self._table[ref]
        if "__tuple__" in data:
            items = data["__tuple__"]
            if not isinstance(items, list):
                raise StoreError("malformed tuple payload")
            return tuple(self.decode(item) for item in items)
        if "__enum__" in data:
            cls = _STORABLE.get(data["__enum__"])
            if cls is None or not issubclass(cls, Enum):
                raise StoreError(f"unknown enum type {data.get('__enum__')!r}")
            try:
                return cls(data["value"])
            except (KeyError, ValueError) as error:
                raise StoreError(f"invalid enum payload: {error}") from error
        if "__dataclass__" in data:
            cls = _STORABLE.get(data["__dataclass__"])
            if cls is None or not dataclasses.is_dataclass(cls):
                raise StoreError(f"unknown storable type {data.get('__dataclass__')!r}")
            fields = data.get("fields")
            if not isinstance(fields, dict):
                raise StoreError(f"malformed fields payload for {cls.__name__}")
            try:
                obj = cls(**{name: self.decode(value) for name, value in fields.items()})
            except TypeError as error:
                raise StoreError(f"cannot rebuild {cls.__name__}: {error}") from error
            if "__id__" in data:
                self._table[data["__id__"]] = obj
            return obj
        raise StoreError(f"malformed payload node with keys {sorted(data)!r}")


def encode_result(obj: Any) -> Any:
    """Encode a result graph into JSON-compatible data.

    Raises
    ------
    StoreError
        When the graph contains an object whose type is not registered.
    """
    _ensure_builtin_storables()
    return _Encoder().encode(obj)


def decode_result(data: Any) -> Any:
    """Rebuild a result graph encoded by :func:`encode_result`.

    Dataclass invariants are re-validated on construction (every storable
    type is a frozen dataclass with ``__post_init__`` checks), so a tampered
    payload fails with :class:`~repro.core.exceptions.StoreError` or the
    library's own validation errors -- both of which the store treats as
    corruption, never as a valid hit.
    """
    _ensure_builtin_storables()
    return _Decoder().decode(data)
