"""Store factory and migration: one entry point for both store backends.

Everything above the store layer (the engine, the analysis loaders, the
bench runner, the CLI, the campaign service) opens persistent stores
through :func:`open_store`, which detects the on-disk layout:

* a directory holding a ``packed.manifest`` opens as a
  :class:`~repro.store.packed.PackedResultStore` (segment files + SQLite
  index);
* anything else opens as the legacy one-file-per-record
  :class:`~repro.store.result_store.ResultStore` -- including a fresh
  empty directory, so the default backend (and every existing workflow)
  is unchanged.

:func:`migrate_store` converts a legacy directory into the packed format,
verifying every record's digest on the way and preserving the record
bytes verbatim -- analysis over a migrated store is byte-identical to
analysis over the original directory.  Migration writes through the
packed ``put_records`` path, so the new segments get their columnar
``.cols`` analysis sidecars (:mod:`repro.store.columns`) as they are
built: full column rows for records carrying a write-time ``analysis``
block, short decode-at-read rows for older records (``repro store
reindex --columns`` upgrades those once, by decoding each record a single
time).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.exceptions import ConfigurationError, StoreError
from repro.store.packed import PACKED_MANIFEST, PackedResultStore
from repro.store.result_store import RECORD_SUFFIX, ResultStore, record_key

#: Union type every store consumer works against (duck-typed: ``get``,
#: ``put``, ``put_record``, ``scan``, ``records``, ``evict``, ``info``).
AnyStore = "ResultStore | PackedResultStore"


def is_packed(root: str | Path) -> bool:
    """True when ``root`` is (marked as) a packed store directory."""
    return (Path(root).expanduser() / PACKED_MANIFEST).is_file()


def open_store(store) -> "ResultStore | PackedResultStore":
    """Open a persistent result store, whatever its backend.

    Accepts an already-open store object (returned unchanged, so call
    sites can be handed either a path or a store), or a directory path:
    packed layouts open packed, everything else opens as the legacy
    directory backend.
    """
    if isinstance(store, (ResultStore, PackedResultStore)):
        return store
    if not isinstance(store, (str, Path)):
        raise ConfigurationError(
            f"cannot open a store from a {type(store).__name__}; "
            "pass a directory path or a store object"
        )
    if is_packed(store):
        return PackedResultStore(store)
    return ResultStore(store)


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one :func:`migrate_store` run.

    ``migrated`` records were verified and packed; ``corrupt`` legacy
    files failed parsing or digest verification and were left behind
    (in-place migration moves on without them -- exactly the records the
    legacy read path would have treated as misses anyway).
    """

    source: Path
    destination: Path
    migrated: int
    corrupt: int
    bytes_before: int
    bytes_after: int
    in_place: bool


def migrate_store(
    source: str | Path, destination: str | Path | None = None
) -> MigrationReport:
    """Convert a legacy record directory into a packed store.

    With ``destination=None`` the migration is **in place**: the packed
    layout is built inside ``source`` and the legacy record files are
    removed only after every record has been packed -- a crash mid-way
    leaves the legacy records intact (the half-built packed layout is
    rebuilt by rerunning the migration; ``put_records`` supersedes
    cleanly).  With a destination directory the source is left untouched.

    Every record is **digest-verified** before packing: the file must
    parse, its recorded ``key`` must be a safe token matching the file
    stem, and the record dict is carried over as-is (the result payload is
    never decoded and re-encoded), so reading the packed store yields
    payloads identical to the legacy files'.

    Raises
    ------
    ConfigurationError
        When the source is already packed, the destination is a legacy
        store, or either path is unusable.
    """
    source = Path(source).expanduser()
    if not source.is_dir():
        raise ConfigurationError(f"store migrate: {source} is not a directory")
    if is_packed(source):
        raise ConfigurationError(f"store migrate: {source} is already a packed store")
    in_place = destination is None
    destination = source if in_place else Path(destination).expanduser()

    record_paths = sorted(source.glob(f"*{RECORD_SUFFIX}"))
    records: list[dict] = []
    keep_paths: list[Path] = []
    corrupt = 0
    bytes_before = 0
    for path in record_paths:
        try:
            raw = path.read_text(encoding="utf-8")
            record = json.loads(raw)
            if record_key(record) != path.stem:
                raise StoreError(f"{path.name}: recorded key does not match the file name")
        except (OSError, json.JSONDecodeError, StoreError, ValueError):
            corrupt += 1
            continue
        bytes_before += path.stat().st_size
        records.append(record)
        keep_paths.append(path)

    # Build the packed layout first and commit the manifest marker last:
    # until the marker exists the directory still opens as a legacy store,
    # so a crash mid-migration loses nothing.
    packed = PackedResultStore(destination, manifest=False)
    try:
        if records:
            packed.put_records(records)
        # Verify the packed store can answer for every migrated key before
        # the marker is committed or any legacy file is deleted.
        missing = packed.missing_keys(path.stem for path in keep_paths)
        if missing:
            raise ConfigurationError(
                f"store migrate: {len(missing)} record(s) missing from the packed "
                f"index after migration (first: {missing[0]}); source left untouched"
            )
        packed.write_manifest()
        if in_place:
            for path in keep_paths:
                try:
                    path.unlink()
                except OSError:
                    pass
        bytes_after = sum(stat.file_bytes for stat in packed.segment_stats())
    finally:
        packed.close()

    return MigrationReport(
        source=source,
        destination=destination,
        migrated=len(records),
        corrupt=corrupt,
        bytes_before=bytes_before,
        bytes_after=bytes_after,
        in_place=in_place,
    )
