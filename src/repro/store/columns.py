"""Columnar analysis sidecars: the derived metrics index of the store layer.

``repro analyze`` needs ~12 scalar columns per record (the
:class:`~repro.analysis.records.AnalysisRecord` fields), but a store
record's payload is the full encoded ``TwoStepResult`` graph -- ~27 KB of
JSON whose decode cost dwarfs the aggregation it feeds.  This module
defines a **columnar sidecar** holding exactly those columns, written at
``put`` time when the producer still holds the live objects (so nothing is
ever decoded to build it) and scanned at analysis time instead of the
record payloads.

Two layouts share one row format:

* **Packed stores** carry one ``seg-<...>.cols`` file per segment file,
  appended in the same ``put_records`` flush as the segment lines (before
  the index transaction commits, extending the flush-before-index
  ordering).  Each line is a JSON array ``[offset, length, *columns]``
  mirroring one segment line; a **short row** ``[offset, length]`` means
  "no columns were available at write time -- decode this line instead"
  (raw ingestion of legacy records takes this path).
* **Directory stores** carry a single ``analysis.cols`` snapshot at the
  store root, built only by ``repro store reindex --columns``.  Each line
  is ``[key, size_bytes, *columns]`` (or the short form ``[key,
  size_bytes]``); the snapshot is valid only while the ``*.json`` file set
  it recorded is exactly the one on disk.

Sidecars are **derived data with a fail-open contract**: a sidecar that is
missing, unparseable or *stale* (its rows do not cover the segment byte
range contiguously / its file map does not match the directory) is ignored
and the reader falls back to full-record decode.  The segments (or record
files) remain the source of truth; ``reindex --columns`` rebuilds sidecars
from them, and in-place byte edits that keep sizes unchanged are the one
corruption this staleness rule cannot see (the full-decode path, compact
and reindex all notice).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.exceptions import ReproError
from repro.objectives.registry import DEFAULT_OBJECTIVE
from repro.store.result_store import (
    RECORD_SUFFIX,
    STORE_FORMAT,
    decode_record,
    record_lower_bound,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimize.result import TwoStepResult
    from repro.store.result_store import ResultStore

#: Version of the sidecar layout.  A sidecar written under another format
#: version is treated as stale (full-decode fallback), never as an error.
COLUMNS_FORMAT = 1

#: File-name suffix of per-segment sidecars (``seg-<...>.cols``).
SIDECAR_SUFFIX = ".cols"

#: File name of the directory-backend snapshot sidecar.
DIR_SIDECAR = "analysis.cols"

#: The column order of every full sidecar row -- exactly the
#: :class:`~repro.analysis.records.AnalysisRecord` constructor order.
ANALYSIS_COLUMNS = (
    "key",
    "soc",
    "solver",
    "objective",
    "channels",
    "depth",
    "broadcast",
    "optimal_sites",
    "channels_per_site",
    "test_time_cycles",
    "value",
    "lower_bound",
)


def sidecar_path(segment_path: Path) -> Path:
    """The ``.cols`` sidecar path of a segment file."""
    return segment_path.with_suffix(SIDECAR_SUFFIX)


def sidecar_header(**extra: object) -> bytes:
    """The self-describing first line of every sidecar file."""
    header = {"format": COLUMNS_FORMAT, "columns": list(ANALYSIS_COLUMNS)}
    header.update(extra)
    return json.dumps(header, separators=(",", ":")).encode("utf-8") + b"\n"


# ----------------------------------------------------------------------
# Row construction (write path)
# ----------------------------------------------------------------------
def row_from_record(record: object) -> list | None:
    """Sidecar columns of a record dict, from its write-time analysis block.

    Returns ``None`` (meaning: write a short row, decode at read time)
    unless the record carries a complete, well-typed ``analysis`` block --
    the block :func:`~repro.store.result_store.make_record` embeds.  No
    payload decode ever happens here; raw ingestion of records produced by
    older writers stays exactly as cheap as before the sidecar existed.
    """
    if not isinstance(record, dict) or record.get("format") != STORE_FORMAT:
        return None
    key = record.get("key")
    block = record.get("analysis")
    if not isinstance(key, str) or not key or not isinstance(block, dict):
        return None
    scenario = record.get("scenario") or {}
    if not isinstance(scenario, dict):
        return None
    try:
        channels = block["channels"]
        depth = block["depth"]
        broadcast = block["broadcast"]
        sites = block["optimal_sites"]
        per_site = block["channels_per_site"]
        cycles = block["test_time_cycles"]
        value = block["value"]
        bound = block["lower_bound"]
    except KeyError:
        return None
    for count in (channels, depth, sites, per_site, cycles):
        if not isinstance(count, int) or isinstance(count, bool):
            return None
    if not isinstance(broadcast, bool):
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return None
    if bound is not None and (not isinstance(bound, (int, float)) or isinstance(bound, bool)):
        return None
    return [
        key[:16],
        str(scenario.get("soc", "")),
        str(scenario.get("solver", "")),
        str(scenario.get("objective", DEFAULT_OBJECTIVE)),
        channels,
        depth,
        broadcast,
        sites,
        per_site,
        cycles,
        float(value),
        None if bound is None else float(bound),
    ]


def row_from_decoded(record: dict, result: "TwoStepResult") -> list:
    """Sidecar columns computed from a decoded result (rebuild/fallback path).

    Bit-identical to what the analysis full-decode scan produces for the
    same record: the lower bound comes from the record's persisted
    ``analysis`` block when present and is recomputed through the (cached)
    certificate otherwise.
    """
    from repro.solvers.bounds import certificate

    scenario = record.get("scenario") or {}
    if not isinstance(scenario, dict):
        scenario = {}
    objective = str(scenario.get("objective", DEFAULT_OBJECTIVE))
    step1 = result.step1
    has_bound, bound = record_lower_bound(record)
    if not has_bound:
        cert = certificate(
            step1.architecture.soc, step1.ate, step1.probe_station,
            step1.config, objective,
        )
        bound = None if cert is None else cert.value
    return [
        str(record.get("key", ""))[:16],
        str(scenario.get("soc", "")),
        str(scenario.get("solver", "")),
        objective,
        step1.ate.channels,
        step1.ate.depth,
        step1.config.broadcast,
        result.optimal_sites,
        result.best.channels_per_site,
        result.best.test_time_cycles,
        result.optimal_throughput,
        bound,
    ]


def normalize_row(row: object) -> tuple | None:
    """Validate a sidecar row read back from disk into the column tuple.

    Returns ``None`` when the row is not a well-typed full column row --
    the reader then decodes the underlying record instead, so a tampered
    sidecar can degrade performance but never analysis output.
    """
    if not isinstance(row, (list, tuple)) or len(row) != len(ANALYSIS_COLUMNS):
        return None
    key, soc, solver, objective, channels, depth, broadcast, sites, per_site, cycles, value, bound = row
    for label in (key, soc, solver, objective):
        if not isinstance(label, str):
            return None
    for count in (channels, depth, sites, per_site, cycles):
        if not isinstance(count, int) or isinstance(count, bool):
            return None
    if not isinstance(broadcast, bool):
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return None
    if bound is not None and (not isinstance(bound, (int, float)) or isinstance(bound, bool)):
        return None
    return (
        key, soc, solver, objective, channels, depth, broadcast,
        sites, per_site, cycles, float(value),
        None if bound is None else float(bound),
    )


def encode_segment_entries(entries: Iterable[tuple[int, int, "list | None"]]) -> bytes:
    """Encode ``(offset, length, columns-or-None)`` entries as sidecar lines."""
    payload = bytearray()
    for offset, length, row in entries:
        item: list = [offset, length]
        if row is not None:
            item += row
        payload += json.dumps(item, separators=(",", ":")).encode("utf-8") + b"\n"
    return bytes(payload)


# ----------------------------------------------------------------------
# Packed-store sidecars (read path)
# ----------------------------------------------------------------------
def read_segment_sidecar(segment_path: Path) -> "list[tuple[int, int, list | None]] | None":
    """Parse and validate one segment's sidecar; ``None`` means fall back.

    Staleness rule: the rows must tile the segment's byte range exactly --
    the first row starts at offset 0, each row starts where the previous
    line (plus its newline) ended, and the last row ends at the segment's
    current size.  Any gap, overlap or size mismatch (e.g. segment lines
    appended after the sidecar stopped growing) invalidates the whole
    sidecar, and the caller decodes the segment instead.
    """
    path = sidecar_path(segment_path)
    try:
        raw = path.read_bytes()
        segment_size = segment_path.stat().st_size
    except OSError:
        return None
    lines = raw.split(b"\n")
    if not lines or not lines[0]:
        return None
    try:
        header = json.loads(lines[0])
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if (
        not isinstance(header, dict)
        or header.get("format") != COLUMNS_FORMAT
        or header.get("columns") != list(ANALYSIS_COLUMNS)
    ):
        return None
    entries: list[tuple[int, int, list | None]] = []
    expected = 0
    for line in lines[1:]:
        if not line:
            continue
        try:
            item = json.loads(line)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if (
            not isinstance(item, list)
            or len(item) not in (2, 2 + len(ANALYSIS_COLUMNS))
            or not isinstance(item[0], int)
            or not isinstance(item[1], int)
            or isinstance(item[0], bool)
            or isinstance(item[1], bool)
        ):
            return None
        offset, length = item[0], item[1]
        if offset != expected or length < 0:
            return None
        entries.append((offset, length, item[2:] if len(item) > 2 else None))
        expected = offset + length + 1
    if expected != segment_size:
        return None
    return entries


@dataclass
class SegmentScan:
    """Outcome of scanning one segment for analysis columns."""

    segment: str
    rows: list = field(default_factory=list)  # (offset, column-tuple) pairs
    corrupt: int = 0
    used_sidecar: bool = False


def scan_segment(
    segment_path: "str | Path",
    locations: Sequence[tuple[int, int]],
    use_sidecar: bool = True,
) -> SegmentScan:
    """Extract analysis columns for the live ``(offset, length)`` pairs of one segment.

    The per-segment unit of work of the parallel analysis scan (top-level,
    so it pickles into a process pool).  Rows the sidecar covers are taken
    from it; everything else -- short rows, stale/missing sidecar, offsets
    the sidecar does not know -- is decoded from the segment bytes with
    exactly the full-decode path's semantics (unreadable rows are skipped
    and counted, never raised).  Output rows therefore never depend on
    whether the sidecar was usable.
    """
    path = Path(segment_path)
    scan = SegmentScan(segment=path.name)
    by_offset: dict[int, tuple[int, "list | None"]] = {}
    if use_sidecar:
        entries = read_segment_sidecar(path)
        if entries is not None:
            scan.used_sidecar = True
            by_offset = {offset: (length, row) for offset, length, row in entries}
    pending: list[tuple[int, int]] = []
    for offset, length in locations:
        hit = by_offset.get(offset)
        if hit is not None and hit[0] == length and hit[1] is not None:
            columns = normalize_row(hit[1])
            if columns is not None:
                scan.rows.append((offset, columns))
                continue
        pending.append((offset, length))
    if pending:
        _decode_locations(path, sorted(pending), scan)
    scan.rows.sort(key=lambda item: item[0])
    return scan


def _decode_locations(path: Path, pending: Sequence[tuple[int, int]], scan: SegmentScan) -> None:
    """Decode segment lines the sidecar could not answer (fallback path)."""
    try:
        handle = open(path, "rb")
    except OSError:
        scan.corrupt += len(pending)
        return
    with handle:
        for offset, length in pending:
            try:
                handle.seek(offset)
                raw = handle.read(length)
                if len(raw) != length:
                    raise ValueError("segment is shorter than the index claims")
                record = json.loads(raw.decode("utf-8"))
                if not isinstance(record, dict) or "key" not in record:
                    raise ValueError("segment line is not a record")
                result = decode_record(record)
                scan.rows.append((offset, tuple(row_from_decoded(record, result))))
            except (OSError, ReproError, KeyError, TypeError, ValueError):
                scan.corrupt += 1


# ----------------------------------------------------------------------
# Rebuild (``repro store reindex --columns``)
# ----------------------------------------------------------------------
def rebuild_segment_sidecar(segment_path: Path) -> int:
    """Rebuild one segment's sidecar from its bytes; returns rows written.

    Every segment line gets a full column row (decoding legacy records and
    recomputing their certificates once, here, rather than on every future
    scan); unparseable lines keep a short row so the read path re-checks
    them.  The rebuilt file replaces the old one atomically.
    """
    raw = segment_path.read_bytes()
    entries: list[tuple[int, int, list | None]] = []
    offset = 0
    for line in raw.split(b"\n"):
        length = len(line)
        if line:
            row: list | None = None
            try:
                record = json.loads(line.decode("utf-8"))
                result = decode_record(record)
                row = row_from_decoded(record, result)
            except (ReproError, KeyError, TypeError, ValueError):
                row = None
            entries.append((offset, length, row))
        offset += length + 1
    payload = sidecar_header(segment=segment_path.name) + encode_segment_entries(entries)
    target = sidecar_path(segment_path)
    staging = target.with_name(target.name + f".{os.getpid()}.tmp")
    try:
        staging.write_bytes(payload)
        os.replace(staging, target)
    except BaseException:
        staging.unlink(missing_ok=True)
        raise
    return len(entries)


# ----------------------------------------------------------------------
# Directory-store sidecar (snapshot form)
# ----------------------------------------------------------------------
def rebuild_dir_sidecar(store: "ResultStore") -> int:
    """Build the directory backend's ``analysis.cols`` snapshot; returns rows.

    One entry per ``*.json`` record file: ``[key, size_bytes, *columns]``
    for records that decode, the short form ``[key, size_bytes]`` for ones
    that do not (the read path decodes -- and skips -- those itself, so a
    corrupt file degrades the snapshot's speed, not its validity).
    """
    entries: list[list] = []
    for path in store.record_files():
        try:
            size = path.stat().st_size
        except OSError:
            continue
        item: list = [path.stem, size]
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            result = decode_record(record)
            item += row_from_decoded(record, result)
        except (OSError, json.JSONDecodeError, ReproError, KeyError, TypeError, ValueError):
            pass
        entries.append(item)
    payload = bytearray(sidecar_header(backend="dir"))
    for item in entries:
        payload += json.dumps(item, separators=(",", ":")).encode("utf-8") + b"\n"
    target = store.root / DIR_SIDECAR
    staging = target.with_name(target.name + f".{os.getpid()}.tmp")
    try:
        staging.write_bytes(bytes(payload))
        os.replace(staging, target)
    except BaseException:
        staging.unlink(missing_ok=True)
        raise
    return len(entries)


def read_dir_sidecar(store: "ResultStore") -> "list[tuple] | None":
    """Column rows from a directory store's snapshot; ``None`` means fall back.

    Staleness rule: the snapshot's ``{key: size_bytes}`` map must equal the
    store's current ``*.json`` file set exactly -- any record written,
    evicted or resized since the snapshot invalidates it (the directory
    backend has no write-path hook, so the snapshot only stays valid on a
    store that has not changed since ``repro store reindex --columns``).
    """
    path = store.root / DIR_SIDECAR
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    lines = raw.split(b"\n")
    if not lines or not lines[0]:
        return None
    try:
        header = json.loads(lines[0])
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if (
        not isinstance(header, dict)
        or header.get("format") != COLUMNS_FORMAT
        or header.get("columns") != list(ANALYSIS_COLUMNS)
    ):
        return None
    entries: dict[str, tuple[int, "list | None"]] = {}
    for line in lines[1:]:
        if not line:
            continue
        try:
            item = json.loads(line)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if (
            not isinstance(item, list)
            or len(item) not in (2, 2 + len(ANALYSIS_COLUMNS))
            or not isinstance(item[0], str)
            or not isinstance(item[1], int)
            or isinstance(item[1], bool)
        ):
            return None
        entries[item[0]] = (item[1], item[2:] if len(item) > 2 else None)
    actual: dict[str, int] = {}
    for record_path in store.record_files():
        try:
            actual[record_path.stem] = record_path.stat().st_size
        except OSError:
            return None
    if {key: size for key, (size, _) in entries.items()} != actual:
        return None
    rows: list[tuple] = []
    for key in sorted(entries):
        _, row = entries[key]
        columns = normalize_row(row) if row is not None else None
        if columns is not None:
            rows.append(columns)
            continue
        record_path = store.root / f"{key}{RECORD_SUFFIX}"
        try:
            record = json.loads(record_path.read_text(encoding="utf-8"))
            if not isinstance(record, dict) or "key" not in record:
                raise ValueError("not a record")
            result = decode_record(record)
            rows.append(tuple(row_from_decoded(record, result)))
        except (OSError, json.JSONDecodeError, ReproError, KeyError, TypeError, ValueError):
            continue
    return rows
