"""Packed result store: append-only segments + a SQLite index.

The directory backend (:class:`~repro.store.result_store.ResultStore`)
writes one ~27 KB JSON file per record, which is fine for a d695 sweep and
hopeless for million-scenario campaigns: directory scans dominate, inodes
run out, and ``store info`` degrades linearly.  :class:`PackedResultStore`
keeps the exact same record dicts (see
:func:`~repro.store.result_store.make_record`) but packs them into a small
number of **append-only segment files** (one JSON record per line) and
finds them again through a **SQLite index** keyed by the scenario's
canonical digest -- lookups are one indexed query plus one ranged read,
independent of how many records the store holds.

Layout of a packed store directory::

    root/
      packed.manifest      # {"backend": "packed", "format": 1, ...}
      index.sqlite         # records(key PRIMARY KEY, segment, offset, ...)
      segments/
        seg-<pid>-<n>.jsonl
        seg-<pid>-<n>.cols  # columnar analysis sidecar (derived, optional)

Invariants the format maintains:

* **Segments are the source of truth.**  The index is a derived
  accelerator: it can always be rebuilt by re-reading the segment lines
  (:meth:`PackedResultStore.reindex`), so index durability is relaxed for
  speed (WAL journaling, no fsync per record).
* **One writer per segment file.**  Every store instance appends to its
  own segment (named after its pid plus an instance counter), so
  concurrent processes never interleave bytes within a file; the index
  row for a record is inserted only after its segment line is flushed,
  so the index never points at bytes that were not written.
* **Reads are corruption-tolerant.**  A record whose segment line is
  missing, truncated or fails validation counts as a miss (and as
  ``corrupt`` in :meth:`info`), never as an error -- exactly like the
  directory backend.  Such rows are *orphans*; :meth:`orphans` finds them
  and :meth:`compact` drops them.
* **Eviction is logical.**  :meth:`evict` deletes index rows; dead segment
  bytes are reclaimed by :meth:`compact`, which rewrites all live records
  into one fresh segment.
* **Sidecars are derived.**  Each segment may carry a ``.cols`` columnar
  sidecar (:mod:`repro.store.columns`) appended in the same
  ``put_records`` flush, before the index transaction commits.  Readers
  validate it against the segment's byte range and silently fall back to
  decoding the segment when it is missing or stale;
  :meth:`reindex_columns` rebuilds sidecars from the segments.

The class is call-compatible with :class:`ResultStore` (``get``/``put``/
``put_record``/``scan``/``records``/``evict``/``info``/``__len__``/
``__contains__``), so the engine, the analysis layer and the campaign
service use either backend interchangeably -- :func:`repro.store.factory.
open_store` picks the right one by looking for the manifest.
"""

from __future__ import annotations

import itertools
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.exceptions import ConfigurationError, ReproError, StoreError
from repro.store import columns as columns_module
from repro.store.result_store import (
    STORE_FORMAT,
    StoreEntry,
    StoreInfo,
    decode_record,
    entry_from_record,
    make_record,
    record_key,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scenario import Scenario
    from repro.optimize.result import TwoStepResult

#: Manifest file marking a directory as a packed store.  Deliberately not
#: ``*.json`` so a legacy directory scan never mistakes it for a record.
PACKED_MANIFEST = "packed.manifest"

#: SQLite index file name.
INDEX_FILE = "index.sqlite"

#: Directory the segment files live in.
SEGMENT_DIR = "segments"

#: Suffix of segment files (JSON records, one per line).
SEGMENT_SUFFIX = ".jsonl"

#: Per-process counter so several store instances in one process append to
#: distinct segment files.
_SEGMENT_IDS = itertools.count()

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key TEXT PRIMARY KEY,
    segment TEXT NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL,
    soc TEXT NOT NULL DEFAULT '',
    solver TEXT NOT NULL DEFAULT '',
    objective TEXT NOT NULL DEFAULT '',
    package_version TEXT NOT NULL DEFAULT '',
    created_at REAL NOT NULL DEFAULT 0.0
)
"""


@dataclass(frozen=True)
class SegmentStat:
    """Per-segment statistics reported by ``repro store info``.

    ``file_bytes`` is the size of the segment file on disk, ``live_bytes``
    the portion still referenced by index rows; the difference is dead
    space (evicted or superseded records) that :meth:`PackedResultStore.
    compact` reclaims.  ``missing`` marks an index row's segment file that
    no longer exists on disk -- every record in it is an orphan.
    """

    name: str
    records: int
    file_bytes: int
    live_bytes: int
    missing: bool = False

    @property
    def dead_bytes(self) -> int:
        """Bytes in the file no index row references (0 for missing files)."""
        return max(0, self.file_bytes - self.live_bytes)


@dataclass(frozen=True)
class CompactStats:
    """Outcome of one :meth:`PackedResultStore.compact` run."""

    records: int
    orphans_dropped: int
    segments_before: int
    segments_after: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_reclaimed(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)


class PackedResultStore:
    """Content-addressed result store packed into segments + SQLite index.

    Parameters
    ----------
    root:
        The packed store directory.  An empty or missing directory is
        initialised as a new packed store; a directory holding legacy
        one-file-per-record data is rejected (run ``repro store migrate``
        first), as is anything that is not a directory.
    manifest:
        When ``False``, neither check for nor write the ``packed.manifest``
        marker.  Only the migration tool uses this: it builds the packed
        layout first and commits the marker last, so a crashed in-place
        migration leaves the directory still opening as a legacy store.
    """

    def __init__(self, root: str | Path, *, manifest: bool = True) -> None:
        self._root = Path(root).expanduser()
        if self._root.exists() and not self._root.is_dir():
            raise ConfigurationError(f"store path {self._root} exists and is not a directory")
        try:
            self._root.mkdir(parents=True, exist_ok=True)
            (self._root / SEGMENT_DIR).mkdir(exist_ok=True)
        except OSError as error:
            raise ConfigurationError(f"cannot create store directory {self._root}: {error}") from error
        if manifest and not (self._root / PACKED_MANIFEST).exists():
            if any(self._root.glob("*.json")):
                raise ConfigurationError(
                    f"{self._root} holds legacy one-file-per-record data; "
                    "run 'repro store migrate' to convert it to the packed format"
                )
            self.write_manifest()
        self._lock = threading.Lock()
        self._connection: sqlite3.Connection | None = None
        self._segment_name: str | None = None
        self._segment_handle = None
        self._sidecar_handle = None
        self._sidecar_disabled = False
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._corrupt = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    def write_manifest(self) -> Path:
        """Write the ``packed.manifest`` marker that makes this store packed."""
        manifest = self._root / PACKED_MANIFEST
        manifest.write_text(
            json.dumps(
                {"backend": "packed", "format": STORE_FORMAT, "created_at": time.time()},
                separators=(",", ":"),
            )
            + "\n",
            encoding="utf-8",
        )
        return manifest

    def _connect(self) -> sqlite3.Connection:
        """The store's SQLite connection (lazy; guarded by ``self._lock``)."""
        if self._connection is None:
            connection = sqlite3.connect(
                self._root / INDEX_FILE,
                timeout=30.0,
                check_same_thread=False,
            )
            try:
                # WAL keeps readers and writers from blocking each other and
                # makes commits cheap; NORMAL is safe because the index is
                # rebuildable from the segments.  Both pragmas can fail on
                # exotic filesystems -- the store works (slower) without them.
                connection.execute("PRAGMA journal_mode=WAL")
                connection.execute("PRAGMA synchronous=NORMAL")
            except sqlite3.Error:
                pass
            connection.execute(_SCHEMA)
            connection.commit()
            self._connection = connection
        return self._connection

    def _segment(self):
        """This instance's append handle (lazy; guarded by ``self._lock``)."""
        if self._segment_handle is None:
            name = f"seg-{os.getpid()}-{next(_SEGMENT_IDS)}{SEGMENT_SUFFIX}"
            self._segment_name = name
            self._segment_handle = open(
                self._root / SEGMENT_DIR / name, "ab", buffering=0
            )
        return self._segment_handle

    def _sidecar(self):
        """The segment's ``.cols`` append handle (lazy; guarded by ``self._lock``).

        Returns ``None`` once sidecar writing failed for this instance:
        the sidecar then simply stops covering the segment, which the
        staleness check turns into a full-decode fallback -- record writes
        never fail because their derived index could not be written.
        """
        if self._sidecar_handle is None and not self._sidecar_disabled:
            path = columns_module.sidecar_path(self._segment_path(self._segment_name))
            try:
                handle = open(path, "ab", buffering=0)
                if handle.seek(0, os.SEEK_END) == 0:
                    handle.write(columns_module.sidecar_header(segment=self._segment_name))
                self._sidecar_handle = handle
            except OSError:
                self._sidecar_disabled = True
        return self._sidecar_handle

    def _close_sidecar(self) -> None:
        if self._sidecar_handle is not None:
            try:
                self._sidecar_handle.close()
            except OSError:
                pass
            self._sidecar_handle = None

    def close(self) -> None:
        """Release the index connection and segment handle (idempotent)."""
        with self._lock:
            if self._segment_handle is not None:
                try:
                    self._segment_handle.close()
                except OSError:
                    pass
                self._segment_handle = None
            self._close_sidecar()
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "PackedResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _segment_path(self, name: str) -> Path:
        return self._root / SEGMENT_DIR / name

    def _read_row(self, key: str, segment: str, offset: int, length: int) -> dict:
        """Read and parse one indexed record line; raises StoreError when bad."""
        path = self._segment_path(segment)
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                raw = handle.read(length)
        except OSError as error:
            raise StoreError(f"cannot read segment {segment}: {error}") from error
        if len(raw) != length:
            raise StoreError(f"segment {segment} is shorter than the index claims")
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StoreError(f"segment line for {key} is not JSON: {error}") from error
        return record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def info(self) -> StoreInfo:
        """Hit/miss/put/corruption statistics plus the packed shape.

        Unlike the directory backend this is O(1)-ish in the record count:
        the size is one indexed ``COUNT(*)`` and the segment count one
        directory listing -- no record files are opened.
        """
        with self._lock:
            connection = self._connect()
            size = connection.execute("SELECT COUNT(*) FROM records").fetchone()[0]
            segments = len(self._segment_names())
            return StoreInfo(
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                corrupt=self._corrupt,
                size=size,
                backend="packed",
                format=STORE_FORMAT,
                segments=segments,
            )

    def _segment_names(self) -> list[str]:
        try:
            return sorted(
                path.name
                for path in (self._root / SEGMENT_DIR).glob(f"*{SEGMENT_SUFFIX}")
            )
        except OSError:
            return []

    def __len__(self) -> int:
        with self._lock:
            return self._connect().execute("SELECT COUNT(*) FROM records").fetchone()[0]

    def __contains__(self, scenario: "Scenario") -> bool:
        return self.contains_key(scenario.digest)

    def contains_key(self, key: str) -> bool:
        """Indexed presence test by digest (no record bytes are read)."""
        with self._lock:
            row = self._connect().execute(
                "SELECT 1 FROM records WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def missing_keys(self, keys: Iterable[str]) -> tuple[str, ...]:
        """The subset of ``keys`` the store does not hold, in input order.

        The batch presence test the campaign service answers worker
        dedup queries with; duplicates in the input are preserved-once.
        """
        seen: dict[str, None] = {}
        for key in keys:
            if key not in seen:
                seen[key] = None
        with self._lock:
            connection = self._connect()
            present = set()
            candidates = list(seen)
            for start in range(0, len(candidates), 500):
                chunk = candidates[start : start + 500]
                marks = ",".join("?" for _ in chunk)
                present.update(
                    row[0]
                    for row in connection.execute(
                        f"SELECT key FROM records WHERE key IN ({marks})", chunk
                    )
                )
        return tuple(key for key in seen if key not in present)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, scenario: "Scenario") -> "TwoStepResult | None":
        """Return the stored result for ``scenario``, or ``None`` on a miss.

        One indexed lookup plus one ranged segment read -- latency is
        independent of the store's record count.  Validation matches the
        directory backend exactly: wrong format, key mismatch or a payload
        that fails to decode is a corrupt-record miss, never an error.
        """
        key = scenario.digest
        with self._lock:
            row = self._connect().execute(
                "SELECT segment, offset, length FROM records WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            self._count(misses=1)
            return None
        try:
            record = self._read_row(key, *row)
            result = decode_record(record, expected_key=key)
        except (ReproError, KeyError, TypeError, ValueError):
            self._count(misses=1, corrupt=1)
            return None
        self._count(hits=1)
        return result

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, scenario: "Scenario", result: "TwoStepResult") -> Path:
        """Persist ``result`` under ``scenario``'s digest; returns the segment path."""
        return self.put_record(make_record(scenario, result))

    def put_record(self, record: dict) -> Path:
        """Append one record dict to this instance's segment and index it."""
        return self.put_records([record])

    def put_records(self, records: Iterable[dict]) -> Path:
        """Append many record dicts in one batch (one index transaction).

        The bulk-ingestion path migration and the campaign service use:
        segment lines are flushed before the index transaction commits, so
        a reader that sees the index row can always read the bytes.  A
        record whose key is already present is superseded (the index row
        moves to the new copy; the old line becomes dead bytes for
        :meth:`compact`).

        The same flush appends one line per record to the segment's
        ``.cols`` sidecar -- full analysis columns when the record carries
        a :func:`~repro.store.result_store.make_record` ``analysis`` block,
        a short decode-me row otherwise (raw ingestion of legacy records
        pays no decode here).  The ordering is segment bytes, then sidecar
        bytes, then index commit, so the sidecar a reader accepts as
        covering the segment never references unwritten bytes.
        """
        rows = []
        sidecar_entries: list[tuple[int, int, "list | None"]] = []
        with self._lock:
            handle = self._segment()
            segment = self._segment_name
            offset = handle.seek(0, os.SEEK_END)
            payload = bytearray()
            for record in records:
                key = record_key(record)
                line = json.dumps(record, separators=(",", ":")).encode("utf-8")
                scenario = record.get("scenario") or {}
                rows.append(
                    (
                        key,
                        segment,
                        offset + len(payload),
                        len(line),
                        str(scenario.get("soc", "")),
                        str(scenario.get("solver", "")),
                        str(scenario.get("objective", "")),
                        str(record.get("package_version", "")),
                        float(record.get("created_at", 0.0) or 0.0),
                    )
                )
                sidecar_entries.append(
                    (offset + len(payload), len(line), columns_module.row_from_record(record))
                )
                payload += line + b"\n"
            if not rows:
                return self._segment_path(segment)
            handle.write(bytes(payload))
            sidecar = self._sidecar()
            if sidecar is not None:
                try:
                    sidecar.write(columns_module.encode_segment_entries(sidecar_entries))
                except OSError:
                    self._close_sidecar()
                    self._sidecar_disabled = True
            connection = self._connect()
            connection.executemany(
                "INSERT OR REPLACE INTO records "
                "(key, segment, offset, length, soc, solver, objective, "
                " package_version, created_at) VALUES (?,?,?,?,?,?,?,?,?)",
                rows,
            )
            connection.commit()
            self._puts += len(rows)
        return self._segment_path(segment)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _index_rows(self) -> list[tuple]:
        with self._lock:
            return self._connect().execute(
                "SELECT key, segment, offset, length FROM records ORDER BY key"
            ).fetchall()

    def scan(self) -> tuple[StoreEntry, ...]:
        """List every readable record, sorted by key (like the directory backend).

        Entries point at the record's segment file; ``size_bytes`` is the
        record line's length.  Unreadable rows are skipped and counted as
        ``corrupt``.
        """
        entries: list[StoreEntry] = []
        for key, segment, offset, length in self._index_rows():
            try:
                record = self._read_row(key, segment, offset, length)
                entries.append(
                    entry_from_record(record, self._segment_path(segment), length)
                )
            except (ReproError, KeyError, TypeError, ValueError):
                self._count(corrupt=1)
        return tuple(sorted(entries, key=lambda entry: entry.key))

    def records(self) -> "Iterator[tuple[StoreEntry, TwoStepResult]]":
        """Yield every readable ``(entry, result)`` pair, sorted by key.

        The analysis bulk read; identical semantics to
        :meth:`ResultStore.records <repro.store.result_store.ResultStore.
        records>` so ``repro analyze`` output over a migrated store is
        byte-identical to the legacy directory it came from.
        """
        for key, segment, offset, length in self._index_rows():
            try:
                record = self._read_row(key, segment, offset, length)
                entry = entry_from_record(record, self._segment_path(segment), length)
                result = decode_record(record)
            except (ReproError, KeyError, TypeError, ValueError):
                self._count(corrupt=1)
                continue
            yield entry, result

    def evict(self, keys: "Iterable[str] | None" = None) -> int:
        """Delete index rows; returns how many records were evicted.

        ``keys=None`` empties the store.  Record bytes stay in their
        segments as dead space until :meth:`compact` runs; a following
        :meth:`get` of an evicted key is a plain miss.
        """
        with self._lock:
            connection = self._connect()
            if keys is None:
                removed = connection.execute("SELECT COUNT(*) FROM records").fetchone()[0]
                connection.execute("DELETE FROM records")
            else:
                removed = 0
                for key in keys:
                    cursor = connection.execute(
                        "DELETE FROM records WHERE key = ?", (key,)
                    )
                    removed += cursor.rowcount
            connection.commit()
        return removed

    def total_bytes(self) -> int:
        """Live record bytes (sum of indexed line lengths; one SQL aggregate)."""
        with self._lock:
            total = self._connect().execute("SELECT SUM(length) FROM records").fetchone()[0]
        return int(total or 0)

    def breakdown(self, column: str) -> dict[str, int]:
        """Record counts grouped by an identity column, from the index alone.

        ``column`` is one of ``soc``/``solver``/``objective``.  This is what
        keeps ``repro store info`` sub-second on million-record stores: the
        grouping runs in SQLite without opening any record bytes.
        """
        if column not in ("soc", "solver", "objective"):
            raise ConfigurationError(f"no such breakdown column: {column!r}")
        with self._lock:
            rows = self._connect().execute(
                f"SELECT {column}, COUNT(*) FROM records GROUP BY {column}"
            ).fetchall()
        return {str(name): count for name, count in rows}

    def segment_stats(self) -> tuple[SegmentStat, ...]:
        """Per-segment statistics: live records/bytes vs file size.

        Includes segments no index row references any more (0 records,
        pure dead space) and flags index rows whose segment file is gone
        (``missing=True`` -- their records are orphans).
        """
        with self._lock:
            rows = self._connect().execute(
                "SELECT segment, COUNT(*), SUM(length) FROM records GROUP BY segment"
            ).fetchall()
        live = {segment: (count, int(total or 0)) for segment, count, total in rows}
        stats = []
        names = set(self._segment_names()) | set(live)
        for name in sorted(names):
            count, live_bytes = live.get(name, (0, 0))
            path = self._segment_path(name)
            try:
                file_bytes = path.stat().st_size
                missing = False
            except OSError:
                file_bytes = 0
                missing = True
            stats.append(
                SegmentStat(
                    name=name,
                    records=count,
                    file_bytes=file_bytes,
                    live_bytes=live_bytes,
                    missing=missing,
                )
            )
        return tuple(stats)

    def orphans(self) -> tuple[str, ...]:
        """Keys of index rows whose record bytes are gone or out of range.

        An orphan is an index entry left behind after its record was
        evicted from the segment layer -- the file was deleted or
        truncated underneath the index (e.g. a crashed compact, manual
        cleanup).  Reading an orphan is a corrupt-record miss; ``repro
        store info`` flags them and :meth:`compact` drops them.
        """
        sizes: dict[str, int] = {}
        orphaned = []
        for key, segment, offset, length in self._index_rows():
            if segment not in sizes:
                try:
                    sizes[segment] = self._segment_path(segment).stat().st_size
                except OSError:
                    sizes[segment] = -1
            size = sizes[segment]
            if size < 0 or offset + length > size:
                orphaned.append(key)
        return tuple(orphaned)

    def compact(self) -> CompactStats:
        """Rewrite all live records into one fresh segment; drop the rest.

        Reclaims dead bytes (evicted or superseded records), drops
        orphaned and unreadable index rows, and deletes the old segment
        files.  Safe against concurrent *readers* (the new segment is
        fully written and indexed before old files go away); concurrent
        writers should be stopped first -- records they append to an old
        segment during the rewrite window would be dropped with it.
        """
        rows = self._index_rows()
        segments_before = self._segment_names()
        bytes_before = 0
        for name in segments_before:
            try:
                bytes_before += self._segment_path(name).stat().st_size
            except OSError:
                pass
        keep: list[dict] = []
        orphans_dropped = 0
        for key, segment, offset, length in rows:
            try:
                record = self._read_row(key, segment, offset, length)
                if record_key(record) != key:
                    raise StoreError("segment line key does not match its index row")
            except (ReproError, KeyError, TypeError, ValueError):
                orphans_dropped += 1
                continue
            keep.append(record)
        with self._lock:
            # Retire this instance's current append segment so the rewrite
            # goes to a fresh file that survives the old-file sweep.
            if self._segment_handle is not None:
                try:
                    self._segment_handle.close()
                except OSError:
                    pass
                self._segment_handle = None
                self._segment_name = None
            self._close_sidecar()
            self._sidecar_disabled = False
            connection = self._connect()
            connection.execute("DELETE FROM records")
            connection.commit()
        path = self.put_records(keep) if keep else None
        with self._lock:
            survivor = self._segment_name
            for name in segments_before:
                if name == survivor:
                    continue
                try:
                    self._segment_path(name).unlink()
                except OSError:
                    pass
                try:
                    columns_module.sidecar_path(self._segment_path(name)).unlink()
                except OSError:
                    pass
        bytes_after = 0
        if path is not None:
            try:
                bytes_after = path.stat().st_size
            except OSError:
                pass
        return CompactStats(
            records=len(keep),
            orphans_dropped=orphans_dropped,
            segments_before=len(segments_before),
            segments_after=len(self._segment_names()),
            bytes_before=bytes_before,
            bytes_after=bytes_after,
        )

    def reindex(self) -> int:
        """Rebuild the index from the segment files; returns the row count.

        The recovery path for a lost or corrupted ``index.sqlite``: every
        parseable segment line is re-indexed (later lines supersede
        earlier ones for the same key, matching append order within a
        segment; across segments the lexically-last segment wins, which is
        only ambiguous for records duplicated across processes -- and
        those are identical by construction, being content-addressed).
        """
        rows: list[tuple] = []
        for name in self._segment_names():
            offset = 0
            try:
                raw = self._segment_path(name).read_bytes()
            except OSError:
                continue
            for line in raw.split(b"\n"):
                length = len(line)
                if line:
                    try:
                        record = json.loads(line.decode("utf-8"))
                        key = record_key(record)
                        scenario = record.get("scenario") or {}
                        rows.append(
                            (
                                key,
                                name,
                                offset,
                                length,
                                str(scenario.get("soc", "")),
                                str(scenario.get("solver", "")),
                                str(scenario.get("objective", "")),
                                str(record.get("package_version", "")),
                                float(record.get("created_at", 0.0) or 0.0),
                            )
                        )
                    except (ReproError, ValueError, UnicodeDecodeError):
                        self._count(corrupt=1)
                offset += length + 1
        with self._lock:
            connection = self._connect()
            connection.execute("DELETE FROM records")
            connection.executemany(
                "INSERT OR REPLACE INTO records "
                "(key, segment, offset, length, soc, solver, objective, "
                " package_version, created_at) VALUES (?,?,?,?,?,?,?,?,?)",
                rows,
            )
            connection.commit()
            return connection.execute("SELECT COUNT(*) FROM records").fetchone()[0]

    def record_locations(self) -> dict[str, list[tuple[int, int]]]:
        """Live ``(offset, length)`` pairs per segment, from the index alone.

        The work list of the sidecar analysis scan
        (:func:`repro.analysis.records.records_from_store`): scanning
        exactly these byte ranges -- whichever of the sidecar or the
        segment answers them -- reads the same record copies the
        full-decode path does, superseded and evicted lines excluded.
        """
        with self._lock:
            rows = self._connect().execute(
                "SELECT segment, offset, length FROM records"
            ).fetchall()
        locations: dict[str, list[tuple[int, int]]] = {}
        for segment, offset, length in rows:
            locations.setdefault(str(segment), []).append((int(offset), int(length)))
        for pairs in locations.values():
            pairs.sort()
        return locations

    def reindex_columns(self) -> int:
        """Rebuild every segment's ``.cols`` sidecar; returns rows written.

        The sidecar analogue of :meth:`reindex`: each segment is decoded
        once and a full-column sidecar written beside it (legacy records
        get their certificates computed here instead of on every future
        scan).  This instance's own append handles are retired first so
        later puts continue the rebuilt sidecars coherently.
        """
        with self._lock:
            self._close_sidecar()
            self._sidecar_disabled = False
        total = 0
        for name in self._segment_names():
            try:
                total += columns_module.rebuild_segment_sidecar(self._segment_path(name))
            except OSError:
                continue
        return total

    def _count(self, hits: int = 0, misses: int = 0, puts: int = 0, corrupt: int = 0) -> None:
        with self._lock:
            self._hits += hits
            self._misses += misses
            self._puts += puts
            self._corrupt += corrupt
