"""Lazy sweep grids: declarative scenario spaces for streaming campaigns.

:class:`SweepGrid` is the value form of :meth:`Scenario.sweep
<repro.api.scenario.Scenario.sweep>`: a frozen description of a cartesian
parameter grid (SOCs x channels x depths x broadcast x site limits x
solvers x objectives) that expands into :class:`~repro.api.scenario.Scenario` objects
*lazily*.  Where ``Scenario.sweep`` materialises the whole list up front,
a grid only builds the scenario the consumer is currently looking at, so
campaign-scale spaces (dozens of SOCs x dozens of operating points) cost
O(1) memory to describe, shard and stream through
:meth:`Engine.run_iter <repro.api.engine.Engine.run_iter>`.

Grids compose:

* :meth:`Grid.shard` splits any grid into ``count`` disjoint, jointly
  complete slices for distributed execution (shard ``i`` takes every
  ``count``-th scenario starting at offset ``i``, so the slices stay
  balanced even when the grid orders cheap and expensive scenarios
  together);
* ``grid_a | grid_b`` concatenates grids (duplicate scenarios are fine:
  the engine deduplicates at execution time);
* :meth:`Grid.filter` keeps only the scenarios a predicate accepts.

Iteration order is deterministic for every grid type, which is what makes
sharding well-defined: two processes that build the same grid value see
the same scenario at the same index.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.api.scenario import Scenario
from repro.api.testcell import TestCell
from repro.core.exceptions import ConfigurationError
from repro.objectives.registry import DEFAULT_OBJECTIVE
from repro.optimize.config import OptimizationConfig
from repro.soc.soc import Soc
from repro.solvers.registry import DEFAULT_SOLVER


class Grid:
    """Base of all grid types: a deterministic, lazily-iterated scenario space.

    Subclasses implement ``__iter__`` (and ``__len__`` where the size is
    known without expanding scenarios); everything else -- sharding, union,
    filtering, materialisation -- is shared here.
    """

    def __iter__(self) -> Iterator[Scenario]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def __or__(self, other: "Grid") -> "GridUnion":
        """Concatenate two grids (``self`` first, then ``other``).

        Duplicates are *not* removed -- detecting them would force scenario
        expansion, and the engine already deduplicates equal scenarios at
        execution time.
        """
        if not isinstance(other, Grid):
            return NotImplemented
        parts: list[Grid] = []
        for grid in (self, other):
            parts.extend(grid.parts if isinstance(grid, GridUnion) else (grid,))
        return GridUnion(parts=tuple(parts))

    def filter(self, predicate: Callable[[Scenario], bool]) -> "FilteredGrid":
        """Lazy sub-grid of the scenarios ``predicate`` accepts."""
        return FilteredGrid(source=self, predicate=predicate)

    def shard(self, index: int, count: int) -> "GridShard":
        """Slice ``index`` (0-based) of a disjoint ``count``-way partition.

        Shard ``index`` contains every scenario whose position in the
        grid's deterministic iteration order is congruent to ``index``
        modulo ``count``; the ``count`` shards are pairwise disjoint and
        jointly cover the grid exactly.
        """
        if count <= 0:
            raise ConfigurationError(f"shard count must be positive, got {count}")
        if not 0 <= index < count:
            raise ConfigurationError(
                f"shard index must be in [0, {count}), got {index}"
            )
        return GridShard(source=self, index=index, count=count)

    def scenarios(self) -> list[Scenario]:
        """Materialise the grid as a scenario list (the eager escape hatch)."""
        return list(self)


@dataclass(frozen=True, init=False)
class SweepGrid(Grid):
    """A frozen cartesian scenario grid with named axes.

    The constructor accepts exactly the arguments of :meth:`Scenario.sweep
    <repro.api.scenario.Scenario.sweep>` (scalars are promoted to
    single-value axes, omitted axes keep the base ``test_cell`` /
    ``config`` values) and normalises them into tuples, so two grids built
    from equal arguments compare equal.  Expansion order matches
    ``Scenario.sweep`` exactly: SOCs vary slowest, then channels, depths,
    broadcast, site limits, solvers, and objectives.

    >>> from repro.api.testcell import reference_test_cell
    >>> grid = SweepGrid("d695", reference_test_cell(), channels=[128, 256])
    >>> len(grid)
    2
    >>> [s.test_cell.ate.channels for s in grid]
    [128, 256]
    """

    socs: tuple  # tuple[Soc | str, ...]
    test_cell: TestCell
    channels: tuple = (None,)
    depths: tuple = (None,)
    broadcast: tuple = (None,)
    max_sites: tuple = (None,)
    config: OptimizationConfig = field(default_factory=OptimizationConfig)
    solvers: tuple = (DEFAULT_SOLVER,)
    objectives: tuple = (DEFAULT_OBJECTIVE,)

    def __init__(
        self,
        socs: Soc | str | Sequence[Soc | str],
        test_cell: TestCell,
        *,
        channels: Sequence[int] | None = None,
        depths: Sequence[int] | None = None,
        broadcast: Sequence[bool] | bool | None = None,
        max_sites: Sequence[int | None] | None = None,
        config: OptimizationConfig | None = None,
        solvers: Sequence[str] | str | None = None,
        objectives: Sequence[str] | str | None = None,
    ) -> None:
        base_config = config or OptimizationConfig()
        if isinstance(socs, (Soc, str)):
            soc_axis: tuple = (socs,)
        else:
            soc_axis = tuple(socs)
        if not soc_axis:
            raise ConfigurationError("scenario sweep needs at least one SOC")

        channel_axis = tuple(channels) if channels is not None else (None,)
        depth_axis = tuple(depths) if depths is not None else (None,)
        if broadcast is None:
            broadcast_axis: tuple = (None,)
        elif isinstance(broadcast, bool):
            broadcast_axis = (broadcast,)
        else:
            broadcast_axis = tuple(broadcast)
        sites_axis = (
            tuple(max_sites) if max_sites is not None else (base_config.max_sites,)
        )
        if solvers is None:
            solver_axis: tuple = (DEFAULT_SOLVER,)
        elif isinstance(solvers, str):
            solver_axis = (solvers,)
        else:
            solver_axis = tuple(solvers)
        if objectives is None:
            objective_axis: tuple = (DEFAULT_OBJECTIVE,)
        elif isinstance(objectives, str):
            objective_axis = (objectives,)
        else:
            objective_axis = tuple(objectives)
        for axis, label in (
            (channel_axis, "channels"),
            (depth_axis, "depths"),
            (broadcast_axis, "broadcast"),
            (sites_axis, "max_sites"),
            (solver_axis, "solvers"),
            (objective_axis, "objectives"),
        ):
            if not axis:
                raise ConfigurationError(f"scenario sweep axis {label!r} must not be empty")

        object.__setattr__(self, "socs", soc_axis)
        object.__setattr__(self, "test_cell", test_cell)
        object.__setattr__(self, "channels", channel_axis)
        object.__setattr__(self, "depths", depth_axis)
        object.__setattr__(self, "broadcast", broadcast_axis)
        object.__setattr__(self, "max_sites", sites_axis)
        object.__setattr__(self, "config", base_config)
        object.__setattr__(self, "solvers", solver_axis)
        object.__setattr__(self, "objectives", objective_axis)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def axes(self) -> dict[str, tuple]:
        """The grid's axes by name, slowest-varying first."""
        return {
            "socs": self.socs,
            "channels": self.channels,
            "depths": self.depths,
            "broadcast": self.broadcast,
            "max_sites": self.max_sites,
            "solvers": self.solvers,
            "objectives": self.objectives,
        }

    def __len__(self) -> int:
        total = 1
        for axis in self.axes.values():
            total *= len(axis)
        return total

    def describe(self) -> str:
        """One-line summary used by progress output and logs."""
        shape = " x ".join(str(len(axis)) for axis in self.axes.values())
        names = ",".join(
            soc if isinstance(soc, str) else soc.name for soc in self.socs[:4]
        )
        if len(self.socs) > 4:
            names += f",... ({len(self.socs)} SOCs)"
        return f"grid[{names}; shape {shape} = {len(self)} scenarios]"

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def _build(
        self, soc, channel_count, depth, shared, site_limit, solver, objective
    ) -> Scenario:
        cell = self.test_cell
        if channel_count is not None:
            cell = cell.with_channels(channel_count)
        if depth is not None:
            cell = cell.with_depth(depth)
        run_config = self.config
        if shared is not None and shared != run_config.broadcast:
            run_config = run_config.with_broadcast(shared)
        if site_limit != run_config.max_sites:
            run_config = run_config.with_site_limit(site_limit)
        return Scenario(
            soc=soc,
            test_cell=cell,
            config=run_config,
            solver=solver,
            objective=objective,
        )

    def __iter__(self) -> Iterator[Scenario]:
        for point in itertools.product(*self.axes.values()):
            yield self._build(*point)

    def scenario_at(self, index: int) -> Scenario:
        """Random access: the scenario at ``index`` in iteration order."""
        size = len(self)
        if not 0 <= index < size:
            raise ConfigurationError(f"grid index must be in [0, {size}), got {index}")
        point = []
        for axis in reversed(list(self.axes.values())):
            index, offset = divmod(index, len(axis))
            point.append(axis[offset])
        return self._build(*reversed(point))

    def __getitem__(self, index: int) -> Scenario:
        return self.scenario_at(index)


@dataclass(frozen=True)
class GridUnion(Grid):
    """Concatenation of grids, in order (built by ``grid_a | grid_b``)."""

    parts: tuple  # tuple[Grid, ...]

    def __iter__(self) -> Iterator[Scenario]:
        for part in self.parts:
            yield from part

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)


@dataclass(frozen=True)
class GridShard(Grid):
    """One slice of a ``count``-way strided partition of ``source``.

    Works on any grid type (including unions and filtered grids) because
    it needs nothing but the source's deterministic iteration order.
    """

    source: Grid
    index: int
    count: int

    def __iter__(self) -> Iterator[Scenario]:
        for position, scenario in enumerate(self.source):
            if position % self.count == self.index:
                yield scenario

    def __len__(self) -> int:
        size = len(self.source)  # raises TypeError for unsized sources
        full, rest = divmod(size, self.count)
        return full + (1 if self.index < rest else 0)


@dataclass(frozen=True)
class FilteredGrid(Grid):
    """Lazy sub-grid of the scenarios a predicate accepts.

    The size of a filtered grid is unknowable without expanding it, so it
    deliberately has no ``__len__``; ``len(grid.filter(p).scenarios())``
    is the explicit way to count.
    """

    source: Grid
    predicate: Callable[[Scenario], bool]

    def __iter__(self) -> Iterator[Scenario]:
        for scenario in self.source:
            if self.predicate(scenario):
                yield scenario
