"""The fixed wafer-test cell: ATE + probe station (+ optional pricing).

The paper assumes a *given and fixed* target test cell.  Before this API
existed, every call site passed an :class:`~repro.ate.spec.AteSpec` and a
:class:`~repro.ate.probe_station.ProbeStation` around separately (and the
economics experiment additionally threaded an
:class:`~repro.ate.pricing.AtePricing`).  :class:`TestCell` bundles the
three into one immutable, hashable value so a
:class:`~repro.api.scenario.Scenario` can reference the whole cell at once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ate.pricing import AtePricing
from repro.ate.probe_station import ProbeStation, reference_probe_station
from repro.ate.spec import AteSpec, reference_ate


@dataclass(frozen=True)
class TestCell:
    """A complete wafer-test cell: ATE, probe station and optional pricing.

    Attributes
    ----------
    ate:
        The fixed target ATE (channel count, vector-memory depth, clock).
    probe_station:
        The fixed probe station (index time, contact-test time, contact
        yield).  Defaults to the paper's reference prober.
    pricing:
        Optional upgrade pricing model, needed only by economics scenarios.
    """

    ate: AteSpec
    probe_station: ProbeStation = ProbeStation(name="prober-ref")
    pricing: AtePricing | None = None

    #: Despite the Test* name this is not a test case; keep pytest away.
    __test__ = False

    # ------------------------------------------------------------------
    # Derived configurations (sweep helpers)
    # ------------------------------------------------------------------
    def with_ate(self, ate: AteSpec) -> "TestCell":
        """Return a copy of this cell with a different ATE."""
        return replace(self, ate=ate)

    def with_channels(self, channels: int) -> "TestCell":
        """Return a copy whose ATE has ``channels`` channels."""
        return replace(self, ate=self.ate.with_channels(channels))

    def with_depth(self, depth: int) -> "TestCell":
        """Return a copy whose ATE has a vector-memory depth of ``depth``."""
        return replace(self, ate=self.ate.with_depth(depth))

    def with_probe_station(self, probe_station: ProbeStation) -> "TestCell":
        """Return a copy of this cell with a different probe station."""
        return replace(self, probe_station=probe_station)

    def describe(self) -> str:
        """Multi-line summary used by reports and the CLI."""
        lines = [self.ate.describe(), self.probe_station.describe()]
        if self.pricing is not None:
            lines.append(
                f"pricing: {self.pricing.channel_block_size} channels per block at "
                f"USD {self.pricing.channel_block_price_usd:g}"
            )
        return "\n".join(lines)


def reference_test_cell(
    channels: int = 512,
    depth_m: float = 7,
    frequency_mhz: float = 5.0,
    contact_yield: float = 1.0,
    pricing: AtePricing | None = None,
) -> TestCell:
    """The paper's reference test cell: 512x7M ATE at 5 MHz, 0.5 s prober."""
    return TestCell(
        ate=reference_ate(channels=channels, depth_m=depth_m, frequency_mhz=frequency_mhz),
        probe_station=reference_probe_station(contact_yield=contact_yield),
        pricing=pricing,
    )
