"""Declarative description of one multi-site optimisation run.

A :class:`Scenario` pins down everything the two-step algorithm needs --
the SOC (by registered benchmark name or as a :class:`~repro.soc.soc.Soc`
object), the :class:`~repro.api.testcell.TestCell` and the
:class:`~repro.optimize.config.OptimizationConfig` -- as one immutable,
hashable value.  Two scenarios that describe the same run compare equal and
hash identically even when one references its SOC by name and the other by
object, which is what lets the :class:`~repro.api.engine.Engine` memoise
results across call sites.

:meth:`Scenario.sweep` expands cartesian parameter grids (benchmarks x
channels x depths x sites x broadcast x solvers x objectives) into
scenario lists for batch execution; it is a thin materialising shim over the lazy
:class:`~repro.api.grid.SweepGrid`, which is the streaming-campaign form
of the same grid.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Sequence

from repro.api.testcell import TestCell
from repro.core.exceptions import ConfigurationError
from repro.objectives.registry import DEFAULT_OBJECTIVE
from repro.optimize.config import OptimizationConfig
from repro.soc.soc import Soc
from repro.solvers.registry import DEFAULT_SOLVER


#: Instance-dict slot the computed :attr:`Scenario.digest` is cached in.
#: The digest is a plain hex string -- process-independent -- so unlike
#: the structural fingerprints of :mod:`repro.core.fingerprint` it is
#: deliberately *kept* when a scenario is pickled to pool workers.
_DIGEST_SLOT = "_digest"


def digest_of_key(key: tuple) -> str:
    """SHA-256 hex digest of an already-computed canonical key.

    Exactly :attr:`Scenario.digest`, minus the canonical-key walk -- the
    engine's streaming path holds the key for dedup anyway and uses this
    to derive store addresses without re-resolving the scenario.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def cached_digest(scenario: "Scenario", key: tuple) -> str:
    """Digest of ``scenario`` given its known canonical ``key``, cached.

    Seeds the same per-instance cache :attr:`Scenario.digest` reads, so
    every later ``scenario.digest`` access on the instance is free.
    """
    cached = scenario.__dict__.get(_DIGEST_SLOT)
    if cached is None:
        cached = digest_of_key(key)
        object.__setattr__(scenario, _DIGEST_SLOT, cached)
    return cached


def resolve_soc(soc: Soc | str) -> Soc:
    """Resolve a SOC reference: a :class:`Soc` object or a catalog name.

    String references are resolved through the SOC catalog
    (:mod:`repro.soc.catalog`): registered ITC'02 benchmarks, ``pnx8550``,
    parametric synthetic specs (``synthetic:<seed>:<modules>``) and any
    SOC registered via :func:`~repro.soc.catalog.register_catalog_soc`.

    Raises
    ------
    ConfigurationError
        When a string reference names nothing the catalog can resolve.
    """
    if isinstance(soc, Soc):
        return soc
    # Imported lazily so that building scenario lists does not parse any
    # benchmark file until the SOC is actually needed.
    from repro.soc.catalog import resolve_catalog_soc

    return resolve_catalog_soc(soc)


def normalize_solver_options(options: object) -> tuple:
    """Normalise solver options into a canonical name-sorted tuple of pairs.

    Accepts a mapping, an iterable of ``(name, value)`` pairs, or an
    already-normalised tuple.  Values are restricted to plain scalars
    (bool/int/float/str) so option tuples stay hashable, reprable and
    JSON-round-trippable -- the canonical key and the store depend on all
    three.

    Raises
    ------
    ConfigurationError
        On non-pair items, empty/duplicate/non-string names, or
        non-scalar values.
    """
    if isinstance(options, dict):
        items = list(options.items())
    else:
        try:
            items = [tuple(item) for item in options]  # type: ignore[union-attr]
        except TypeError:
            raise ConfigurationError(
                "solver options must be a mapping or (name, value) pairs, "
                f"got {type(options).__name__}"
            ) from None
    pairs = []
    for item in items:
        if len(item) != 2:
            raise ConfigurationError(
                f"solver option items must be (name, value) pairs, got {item!r}"
            )
        name, value = item
        if not isinstance(name, str) or not name:
            raise ConfigurationError(
                f"solver option names must be non-empty strings, got {name!r}"
            )
        if not isinstance(value, (bool, int, float, str)):
            raise ConfigurationError(
                f"solver option {name!r} must be a scalar (bool/int/float/str), "
                f"got {type(value).__name__}"
            )
        pairs.append((name, value))
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate solver option names in {sorted(names)}")
    return tuple(sorted(pairs))


@dataclass(frozen=True, eq=False)
class Scenario:
    """One declarative optimisation run: SOC + test cell + config.

    Attributes
    ----------
    soc:
        The SOC under test, either as an object or as a reference string
        (a registered ITC'02 benchmark name, or ``"pnx8550"``).
    test_cell:
        The fixed wafer-test cell the run targets.
    config:
        Variant switches of the optimisation (broadcast, abort-on-fail,
        objective, yields, site clamps).
    solver:
        Name of the registered solver backend that executes the scenario
        (see :mod:`repro.solvers`); defaults to the paper's greedy two-step
        heuristic (``"goel05"``).  The name is validated when the scenario
        is run, so declaring scenarios never imports the backends.
    objective:
        Name of the registered objective (:mod:`repro.objectives`) the
        solver optimises; defaults to the paper's throughput
        (``"throughput"``).  Like the solver, the name is validated at run
        time, so declaring scenarios never imports the backends.
    solver_options:
        Backend-specific tuning knobs, e.g. the simulated-annealing
        schedule (``temperature``, ``cooling``, ``moves_per_temp``,
        ``restarts``).  Accepts a mapping or an iterable of ``(name,
        value)`` pairs and is normalised to a name-sorted tuple of pairs,
        so two scenarios passing the same knobs in different forms or
        orders compare equal.  Option names are interpreted by the solver
        backend; unknown options are rejected when the scenario runs.
        Like the objective, the options enter the canonical key (and
        therefore digests and store records) **only when non-empty**, so
        every pre-existing scenario key stays valid.
    """

    soc: Soc | str
    test_cell: TestCell
    config: OptimizationConfig = OptimizationConfig()
    solver: str = DEFAULT_SOLVER
    objective: str = DEFAULT_OBJECTIVE
    solver_options: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.soc, (Soc, str)):
            raise ConfigurationError(
                f"scenario SOC must be a Soc or a benchmark name, got {type(self.soc).__name__}"
            )
        if isinstance(self.soc, str) and not self.soc:
            raise ConfigurationError("scenario SOC reference must be non-empty")
        if not isinstance(self.solver, str) or not self.solver:
            raise ConfigurationError("scenario solver must be a non-empty backend name")
        if not isinstance(self.objective, str) or not self.objective:
            raise ConfigurationError("scenario objective must be a non-empty name")
        object.__setattr__(
            self, "solver_options", normalize_solver_options(self.solver_options)
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def soc_name(self) -> str:
        """Name of the referenced SOC without resolving benchmark files."""
        return self.soc if isinstance(self.soc, str) else self.soc.name

    def resolve(self) -> Soc:
        """Resolve the SOC reference into a :class:`Soc` object."""
        return resolve_soc(self.soc)

    def canonical_key(self) -> tuple:
        """Canonical identity of this scenario.

        The key is built from the *resolved* SOC contents, so referencing a
        benchmark by name and by loaded object yields the same key (and
        therefore the same engine cache entry).  Fields that cannot change
        the optimisation outcome are ignored: the cosmetic ``name`` labels
        of the ATE and probe station, and the cell's ``pricing`` model (it
        only feeds cost reporting) -- two experiments sweeping the same
        operating point under different labels or pricing share one cache
        entry.  The solver name *is* part of the key: two backends may find
        different designs for the same operating point.  So is the
        objective name -- the same backend finds different designs when it
        optimises a different objective -- but only when it deviates from
        the default: scenarios running the paper's throughput objective
        keep the exact keys (and digests, and store records) they had
        before the objective registry existed.
        """
        cell = self.test_cell
        cell = replace(
            cell,
            ate=replace(cell.ate, name=""),
            probe_station=replace(cell.probe_station, name=""),
            pricing=None,
        )
        key = (self.resolve(), cell, self.config, self.solver)
        if self.objective != DEFAULT_OBJECTIVE:
            key += (self.objective,)
        if self.solver_options:
            # Appended only when set, and as a tuple (the objective above
            # appends a string), so option-free scenarios keep their
            # pre-solver-options keys and the two extensions cannot
            # collide.
            key += (self.solver_options,)
        return key

    @property
    def digest(self) -> str:
        """Full SHA-256 hex digest of the canonical key.

        This is the scenario's content address: the persistent
        :class:`~repro.store.ResultStore` names its record files after it,
        so any process that builds an equal scenario -- by benchmark name
        or by loaded object, under any cosmetic labels -- reads and writes
        the same record.

        Computed once per instance and cached (the canonical-key walk
        resolves the SOC and hashes its full repr -- too hot to repeat
        for every store probe of a million-scenario campaign).
        """
        cached = self.__dict__.get(_DIGEST_SLOT)
        if cached is None:
            cached = digest_of_key(self.canonical_key())
            object.__setattr__(self, _DIGEST_SLOT, cached)
        return cached

    @property
    def key(self) -> str:
        """Short (16 hex chars) form of :attr:`digest`, used in exported records."""
        return self.digest[:16]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Scenario):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    # ------------------------------------------------------------------
    # Derived scenarios
    # ------------------------------------------------------------------
    def with_soc(self, soc: Soc | str) -> "Scenario":
        """Return a copy targeting a different SOC (object or catalog name)."""
        return replace(self, soc=soc)

    def with_channels(self, channels: int) -> "Scenario":
        """Return a copy whose ATE has ``channels`` channels."""
        return replace(self, test_cell=self.test_cell.with_channels(channels))

    def with_depth(self, depth: int) -> "Scenario":
        """Return a copy whose ATE has a vector-memory depth of ``depth``."""
        return replace(self, test_cell=self.test_cell.with_depth(depth))

    def with_config(self, config: OptimizationConfig) -> "Scenario":
        """Return a copy with a different optimisation config."""
        return replace(self, config=config)

    def with_solver(self, solver: str) -> "Scenario":
        """Return a copy executed by a different solver backend."""
        return replace(self, solver=solver)

    def with_objective(self, objective: str) -> "Scenario":
        """Return a copy optimising a different registered objective."""
        return replace(self, objective=objective)

    def with_solver_options(self, **options: object) -> "Scenario":
        """Return a copy with the given backend knobs (none: reset to default).

        ``scenario.with_solver_options(temperature=2.0, restarts=2)`` tunes
        the backend; the knob names are validated by the solver when the
        scenario runs.
        """
        return replace(self, solver_options=tuple(options.items()))

    def with_sites(self, max_sites: int | None) -> "Scenario":
        """Return a copy with a different equipment limit on the site count."""
        return replace(self, config=self.config.with_site_limit(max_sites))

    def describe(self) -> str:
        """One-line summary used by reports and logs.

        The solver and the objective are mentioned only when they deviate
        from their defaults (the objective under the ``optimize=`` label,
        to keep it apart from the config's D_th/D^u_th ``objective=``
        switch), so reports of default runs read exactly as before the
        solver and objective layers existed.
        """
        solver = "" if self.solver == DEFAULT_SOLVER else f", solver={self.solver}"
        objective = (
            "" if self.objective == DEFAULT_OBJECTIVE else f", optimize={self.objective}"
        )
        options = ""
        if self.solver_options:
            knobs = " ".join(f"{name}={value}" for name, value in self.solver_options)
            options = f", options[{knobs}]"
        return (
            f"scenario[{self.soc_name} @ {self.test_cell.ate.channels}ch x "
            f"{self.test_cell.ate.depth} vectors, "
            f"{self.config.describe()}{solver}{objective}{options}]"
        )

    # ------------------------------------------------------------------
    # Sweep expansion
    # ------------------------------------------------------------------
    @classmethod
    def sweep(
        cls,
        socs: Soc | str | Sequence[Soc | str],
        test_cell: TestCell,
        *,
        channels: Sequence[int] | None = None,
        depths: Sequence[int] | None = None,
        broadcast: Sequence[bool] | bool | None = None,
        max_sites: Sequence[int | None] | None = None,
        config: OptimizationConfig | None = None,
        solvers: Sequence[str] | str | None = None,
        objectives: Sequence[str] | str | None = None,
    ) -> list["Scenario"]:
        """Expand a cartesian parameter grid into a scenario list.

        Every axis is optional; an omitted axis keeps the corresponding value
        of ``test_cell`` / ``config`` (and the default solver and
        objective).  The expansion order is deterministic: SOCs vary
        slowest, then channels, depths, broadcast, site limits, solvers,
        and objectives.

        >>> from repro.api.testcell import reference_test_cell
        >>> cell = reference_test_cell(channels=256, depth_m=0.0625)
        >>> grid = Scenario.sweep("d695", cell, channels=[128, 256], broadcast=[False, True])
        >>> len(grid)
        4
        >>> len(Scenario.sweep("d695", cell, solvers=["goel05", "restart"]))
        2
        """
        # The grid layer owns expansion now; this shim materialises it so
        # the classic list-returning signature keeps working unchanged.
        from repro.api.grid import SweepGrid

        return list(
            SweepGrid(
                socs,
                test_cell,
                channels=channels,
                depths=depths,
                broadcast=broadcast,
                max_sites=max_sites,
                config=config,
                solvers=solvers,
                objectives=objectives,
            )
        )
