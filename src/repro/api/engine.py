"""Execution engine for scenarios: serial, cached and parallel-batch runs.

:class:`Engine` is the canonical way to execute
:class:`~repro.api.scenario.Scenario` objects:

* :meth:`Engine.run` executes one scenario and memoises the outcome in an
  in-process cache keyed on the scenario's canonical hash, so repeated runs
  of the same scenario (also via different call sites, e.g. two experiments
  sweeping over the same operating point) cost one optimisation;
* :meth:`Engine.run_iter` is the streaming form: it accepts any scenario
  iterable (typically a lazy :class:`~repro.api.grid.SweepGrid`), plans the
  cache misses into structure-sharing chunks (:class:`~repro.api.plan.
  SweepPlan`), fans the chunks out over a ``concurrent.futures`` process
  pool and *yields* results as they complete, flushing them to the
  persistent store in configurable batches (``flush_every``, flushed on
  exit and on exceptions too) -- so a killed campaign is resumable from
  the store;
* :meth:`Engine.run_batch` is the ordered wrapper over :meth:`run_iter`:
  it collects the stream and returns results in input order.  The
  two-step algorithm is deterministic, so batch results are bit-identical
  to serial ones regardless of worker count or completion order.

An engine can additionally be backed by a persistent
:class:`~repro.store.ResultStore` (``Engine(store=...)``): scenarios not in
the in-memory cache are looked up on disk before being computed, and every
computed result is written back, so equal scenarios are solved once *across
processes* -- repeated CLI invocations, CI runs and benchmark sessions.
Store hits are reported separately in :class:`CacheInfo`.

Results are returned as :class:`ScenarioResult` records that convert
directly into the flat structures of :mod:`repro.reporting.export` and the
:class:`~repro.reporting.series.Series` curves of the figure experiments.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.api.plan import AUTO_CHUNK, SweepPlan, normalize_chunk_size
from repro.api.scenario import Scenario, cached_digest
from repro.api.testcell import TestCell
from repro.core.exceptions import ConfigurationError
from repro.optimize.result import Step1Result, TwoStepResult
from repro.reporting.export import result_to_records
from repro.reporting.series import Series
from repro.objectives.registry import DEFAULT_OBJECTIVE
from repro.solvers.problem import make_problem
from repro.solvers.registry import DEFAULT_SOLVER, solve
from repro.store.factory import open_store
from repro.store.packed import PackedResultStore
from repro.store.result_store import ResultStore, make_record

#: Default store-flush granularity of :meth:`Engine.run_iter`: every
#: completed record is flushed immediately, preserving the strongest
#: durability (a hard-killed campaign loses only in-flight work).  Raise
#: ``flush_every`` to batch store writes (one ``put_records`` call per
#: batch -- one index transaction on the packed backend); buffered records
#: are always flushed on stream exit and on exceptions, so ordinary
#: interruptions lose nothing either way.
DEFAULT_FLUSH_EVERY = 1


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one executed scenario.

    Wraps the :class:`~repro.optimize.result.TwoStepResult` together with
    the scenario that produced it, so downstream consumers (reports, series,
    exports) never have to re-thread run parameters alongside results.
    """

    scenario: Scenario
    result: TwoStepResult

    @property
    def soc_name(self) -> str:
        """Name of the SOC the scenario ran on."""
        return self.scenario.soc_name

    @property
    def step1(self) -> Step1Result:
        """The Step-1 design of the underlying two-step result."""
        return self.result.step1

    @property
    def optimal_sites(self) -> int:
        """The throughput-optimal site count."""
        return self.result.optimal_sites

    @property
    def optimal_throughput(self) -> float:
        """Throughput (devices/hour) at the optimal site count."""
        return self.result.optimal_throughput

    def to_record(self) -> dict[str, Any]:
        """Flat record for :mod:`repro.reporting.export` (JSON/CSV).

        On top of the result fields the record carries the scenario's
        identity axes -- its short key, the solver backend and the
        registered objective -- so downstream analysis
        (:mod:`repro.analysis`) can group and compare without re-deriving
        scenario metadata.
        """
        record = result_to_records(self.result)
        record["scenario_key"] = self.scenario.key
        record["solver"] = self.scenario.solver
        record["objective_name"] = self.scenario.objective
        bound = self.lower_bound
        if bound is not None:
            record["lower_bound"] = bound
        return record

    @property
    def lower_bound(self) -> float | None:
        """Certified bound on the scenario's optimal objective value.

        Delegates to the certificate layer (:mod:`repro.solvers.bounds`):
        a literal lower bound for minimised objectives, the symmetric
        certified cap for maximised ones.  ``None`` when no certificate
        exists (e.g. an unregistered objective name in a hand-built
        scenario).
        """
        from repro.solvers.bounds import scenario_lower_bound

        return scenario_lower_bound(self.scenario)

    def describe(self) -> str:
        """One-line summary used by reports and logs."""
        return f"{self.scenario.describe()} -> {self.result.describe().splitlines()[0]}"


def _execute(scenario: Scenario) -> TwoStepResult:
    """Run one scenario's optimisation (top-level so process pools can pickle it)."""
    problem = make_problem(
        scenario.resolve(),
        scenario.test_cell.ate,
        scenario.test_cell.probe_station,
        scenario.config,
        scenario.objective,
        scenario.solver_options,
    )
    return solve(scenario.solver, problem).result


def _execute_chunk(
    scenarios: Sequence[Scenario],
) -> "tuple[list[TwoStepResult], Exception | None]":
    """Run one plan chunk in a single pool task (top-level so it pickles).

    One pickle round-trip ships the whole chunk (structure-sharing
    scenarios pickle their common SOC/config objects once) and one ships
    the whole result list back -- the per-scenario IPC amortisation the
    :class:`~repro.api.plan.SweepPlan` exists for.  A failing scenario
    stops the chunk, but the results computed before it are *returned*,
    not lost: the driver persists them, then re-raises the error with its
    original class -- so exceptions propagate exactly as in serial
    execution while interrupted chunks stay resumable at scenario
    granularity.
    """
    results: list[TwoStepResult] = []
    for scenario in scenarios:
        try:
            results.append(_execute(scenario))
        except Exception as error:  # noqa: BLE001 - re-raised driver-side
            return results, error
    return results, None


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss statistics of an engine's scenario cache.

    ``hits`` counts in-memory cache hits, ``store_hits`` counts scenarios
    served from the engine's persistent :class:`~repro.store.ResultStore`
    tier, and ``misses`` counts scenarios that had to be computed.
    """

    hits: int
    misses: int
    size: int
    evictions: int = 0
    max_entries: int | None = None
    store_hits: int = 0


class Engine:
    """Runs scenarios with in-process memoisation and parallel batches.

    Parameters
    ----------
    cache:
        When ``True`` (default), results are memoised on the scenario's
        canonical hash; re-running an equal scenario is a cache hit.
    workers:
        Default worker count for :meth:`run_batch`.  ``None`` or ``1`` mean
        serial execution; batches can override per call.
    max_entries:
        Upper bound on memoised results.  ``None`` (default) keeps every
        result; with a bound the cache evicts least-recently-used entries,
        so unbounded sweeps cannot grow the engine without limit.  Evictions
        are reported in :meth:`cache_info`.
    store:
        Optional persistent tier: a :class:`~repro.store.ResultStore` or
        :class:`~repro.store.PackedResultStore`, or a directory path one is
        opened at (the backend is detected from the on-disk layout, see
        :func:`repro.store.open_store`).  Scenarios missing from the
        in-memory cache are looked up here before being computed, and
        computed results are written back, so results are shared across
        processes and sessions.  ``None`` (default) keeps the engine fully
        in-process.
    """

    def __init__(
        self,
        cache: bool = True,
        workers: int | None = None,
        max_entries: int | None = None,
        store: "ResultStore | PackedResultStore | str | Path | None" = None,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ConfigurationError(f"worker count must be positive, got {workers}")
        if max_entries is not None and max_entries <= 0:
            raise ConfigurationError(f"max_entries must be positive, got {max_entries}")
        if store is not None:
            store = open_store(store)
        self._cache_enabled = cache
        self._workers = workers
        self._max_entries = max_entries
        self._result_store = store
        self._cache: OrderedDict[tuple, ScenarioResult] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._store_hits = 0

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    @property
    def store(self) -> "ResultStore | PackedResultStore | None":
        """The persistent store tier, or ``None`` for a memory-only engine."""
        return self._result_store

    def cache_info(self) -> CacheInfo:
        """Hit/miss/eviction statistics of the scenario cache."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                size=len(self._cache),
                evictions=self._evictions,
                max_entries=self._max_entries,
                store_hits=self._store_hits,
            )

    def clear_cache(self) -> None:
        """Drop all in-memory memoised results (statistics are reset too).

        The persistent store tier is *not* touched; evict through
        :meth:`ResultStore.evict <repro.store.ResultStore.evict>` when the
        on-disk records should go too.
        """
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._store_hits = 0

    def _lookup(self, key: tuple) -> ScenarioResult | None:
        if not self._cache_enabled:
            return None
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(key)
            return cached

    def _lookup_store(self, key: tuple, scenario: Scenario) -> ScenarioResult | None:
        """Second-tier lookup: rebuild a result from the persistent store."""
        if self._result_store is None:
            return None
        result = self._result_store.get(scenario)
        if result is None:
            return None
        record = ScenarioResult(scenario=scenario, result=result)
        with self._lock:
            self._store_hits += 1
            self._remember(key, record)
        return record

    def _remember(self, key: tuple, result: ScenarioResult) -> None:
        """Insert into the in-memory tier (caller holds the lock)."""
        if not self._cache_enabled:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        if self._max_entries is not None:
            while len(self._cache) > self._max_entries:
                self._cache.popitem(last=False)
                self._evictions += 1

    def _store(self, key: tuple, result: ScenarioResult) -> None:
        """Record a computed result in both tiers, counting the miss.

        The persistent write is best-effort: the store is a cache, so a
        failing disk (full, permissions revoked mid-run) must not destroy a
        computed result -- the batch completes on the in-memory tier alone.
        Misconfigured store *paths* still fail fast, at
        :class:`~repro.store.ResultStore` construction.
        """
        with self._lock:
            self._misses += 1
            self._remember(key, result)
        if self._result_store is not None:
            try:
                self._result_store.put(result.scenario, result.result)
            except OSError:
                pass

    @staticmethod
    def _deliver(scenario: Scenario, cached: ScenarioResult) -> ScenarioResult:
        """Return ``cached`` for ``scenario``, keeping the request's own fields.

        Canonically-equal scenarios may still differ in cosmetic fields (ATE
        or probe-station labels, pricing).  The cached record is returned
        as-is only when the raw fields match; otherwise the shared result is
        rebound to the requested scenario, so callers never see another
        run's labels on ``result.scenario``.
        """
        ours = (
            scenario.soc,
            scenario.test_cell,
            scenario.config,
            scenario.solver,
            scenario.objective,
            scenario.solver_options,
        )
        theirs = (
            cached.scenario.soc,
            cached.scenario.test_cell,
            cached.scenario.config,
            cached.scenario.solver,
            cached.scenario.objective,
            cached.scenario.solver_options,
        )
        if ours == theirs:
            return cached
        return ScenarioResult(scenario=scenario, result=cached.result)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, scenario: Scenario) -> ScenarioResult:
        """Execute one scenario (a repeated run of an equal scenario is a cache hit).

        Lookup order: in-memory cache, then the persistent store tier (when
        configured), then compute -- recording the result in both tiers.
        """
        key = scenario.canonical_key()
        cached = self._lookup(key)
        if cached is not None:
            return self._deliver(scenario, cached)
        stored = self._lookup_store(key, scenario)
        if stored is not None:
            return stored
        result = ScenarioResult(scenario=scenario, result=_execute(scenario))
        self._store(key, result)
        return result

    def run_iter(
        self,
        scenarios: "Iterable[Scenario]",
        workers: int | None = None,
        chunk_size: "int | str" = AUTO_CHUNK,
        flush_every: int | None = None,
    ) -> Iterator[ScenarioResult]:
        """Execute a scenario stream, yielding results as they complete.

        The input may be any scenario iterable -- a list, a lazy
        :class:`~repro.api.grid.SweepGrid` or one of its shards.  The
        stream is processed in two phases:

        1. **Dedup / warm tier scan** -- every scenario is checked against
           the in-memory cache, then against the persistent store with
           *one* bulk ``missing_keys`` presence query for the whole
           campaign; hits are yielded immediately (in input order), equal
           scenarios are collapsed onto one computation.
        2. **Fan-out** -- the remaining misses are planned into
           structure-sharing chunks (:class:`~repro.api.plan.SweepPlan`)
           of ``chunk_size`` scenarios (``"auto"``: sized from the miss
           count and worker count), submitted chunk-per-task to a process
           pool of ``workers`` processes (``None`` = engine default,
           ``1`` = serial in-process) and yielded *in completion order*,
           not submission order.  Chunking only groups -- results are
           bit-identical to unchunked execution.

        Each computed result enters the in-memory tier the moment it
        completes; store writes are flushed in batches of ``flush_every``
        records (default :data:`DEFAULT_FLUSH_EVERY`: every record
        immediately) via ``put_records``, and the buffer is always flushed
        when the stream ends, is abandoned, or raises -- so an interrupted
        campaign loses only in-flight work: a rerun against the same store
        serves every finished scenario from phase 1 and recomputes nothing
        twice.  Exceptions raised by the optimisation tasks propagate
        unchanged, whatever their type; results a failing chunk completed
        before its error are persisted first.
        """
        pairs = ((scenario.canonical_key(), scenario) for scenario in scenarios)
        for _key, record in self._stream(pairs, workers, chunk_size, flush_every):
            yield record

    def _stream(
        self,
        pairs: "Iterable[tuple[tuple, Scenario]]",
        workers: int | None,
        chunk_size: "int | str" = AUTO_CHUNK,
        flush_every: int | None = None,
    ) -> Iterator[tuple[tuple, ScenarioResult]]:
        """Shared streaming core: ``(key, scenario)`` in, ``(key, result)`` out.

        Both :meth:`run_iter` and :meth:`run_batch` run through here with
        their canonical keys computed exactly once per scenario.
        """
        if workers is not None and workers <= 0:
            raise ConfigurationError(f"worker count must be positive, got {workers}")
        effective_workers = workers if workers is not None else (self._workers or 1)
        chunk_size = normalize_chunk_size(chunk_size)
        if flush_every is None:
            flush_every = DEFAULT_FLUSH_EVERY
        if flush_every <= 0:
            raise ConfigurationError(
                f"flush_every must be a positive record count, got {flush_every}"
            )

        items = list(pairs)
        store_present = self._probe_store(items)

        # Phase 1: resolve warm tiers up front, deduplicating the misses.
        # Duplicates of pending keys are tracked aside, and duplicates of
        # already-yielded keys are re-fetched through `_recall`, so neither
        # counts extra cache hits or extra computations.  Only keys are
        # retained for the yielded set -- not results -- so a bounded
        # engine stays bounded through arbitrarily long streams.
        pending: dict[tuple, Scenario] = {}
        duplicates: dict[tuple, list[Scenario]] = {}
        yielded: set[tuple] = set()
        for key, scenario in items:
            if key in pending:
                duplicates.setdefault(key, []).append(scenario)
                continue
            if key in yielded:
                yield key, self._deliver(scenario, self._recall(key, scenario))
                continue
            cached = self._lookup(key)
            if cached is None and cached_digest(scenario, key) in store_present:
                cached = self._lookup_store(key, scenario)
            if cached is not None:
                yielded.add(key)
                yield key, self._deliver(scenario, cached)
            else:
                pending[key] = scenario

        # Phase 2: compute the misses chunk by chunk, buffering store
        # writes; the finally clause makes the flush unconditional --
        # normal exhaustion, abandonment (GeneratorExit) and task
        # exceptions all leave every completed record persisted.
        todo = list(pending.items())
        worker_count = min(effective_workers, len(todo))
        buffer: list[dict] = []
        try:
            if worker_count > 1:
                plan = SweepPlan.build(
                    [scenario for _, scenario in todo],
                    chunk_size=chunk_size,
                    workers=worker_count,
                    keys=[key for key, _ in todo],
                )
                outcomes: Iterator = self._map_chunks(plan, worker_count)
            else:
                # Serial in-process execution: chunking would only change
                # the order, so the input order is simply kept.
                outcomes = (
                    ((index,), [_execute(scenario)], None)
                    for index, (_, scenario) in enumerate(todo)
                )
            for indices, results, error in outcomes:
                for position, outcome in zip(indices, results):
                    key, scenario = todo[position]
                    record = ScenarioResult(scenario=scenario, result=outcome)
                    self._record_completed(key, record, buffer)
                    if len(buffer) >= flush_every:
                        self._flush(buffer)
                    yield key, record
                    for duplicate in duplicates.get(key, ()):
                        yield key, self._deliver(duplicate, record)
                if error is not None:
                    raise error
        finally:
            self._flush(buffer)

    def _probe_store(
        self, items: "Sequence[tuple[tuple, Scenario]]"
    ) -> set[str]:
        """One bulk store presence query for a whole stream's scenarios.

        Returns the digests the store holds, replacing a per-scenario
        ``get`` probe with a single ``missing_keys`` call (a batched SQL
        lookup on the packed backend).  The in-memory tier is *peeked*
        (uncounted) here; the counted lookups happen in stream order in
        phase 1, so hit statistics are identical to the per-scenario path.
        """
        if self._result_store is None or not items:
            return set()
        digests: list[str] = []
        seen: set[tuple] = set()
        for key, scenario in items:
            if key in seen:
                continue
            seen.add(key)
            if self._cache_enabled:
                with self._lock:
                    if key in self._cache:
                        continue
            digests.append(cached_digest(scenario, key))
        if not digests:
            return set()
        missing = set(self._result_store.missing_keys(digests))
        return {digest for digest in digests if digest not in missing}

    def _record_completed(
        self, key: tuple, record: ScenarioResult, buffer: list[dict]
    ) -> None:
        """Count a computed miss, memoise it, and queue its store write."""
        with self._lock:
            self._misses += 1
            self._remember(key, record)
        if self._result_store is not None:
            buffer.append(make_record(record.scenario, record.result))

    def _flush(self, buffer: list[dict]) -> None:
        """Write buffered records to the store in one ``put_records`` batch.

        Best-effort like :meth:`_store`: a failing disk must not destroy
        computed results, the stream completes on the in-memory tier.
        """
        if not buffer or self._result_store is None:
            return
        records, buffer[:] = list(buffer), []
        try:
            self._result_store.put_records(records)
        except OSError:
            pass

    def _recall(self, key: tuple, scenario: Scenario) -> ScenarioResult:
        """Re-fetch a result already served earlier in the same stream.

        Used for duplicate inputs whose first occurrence was a warm hit.
        Statistics are deliberately not re-counted (batch semantics: equal
        scenarios in one call are one lookup).  The compute fallback only
        triggers when a bounded cache evicted the record mid-stream and no
        store holds it; determinism makes the recomputed result identical.
        """
        if self._cache_enabled:
            with self._lock:
                cached = self._cache.get(key)
            if cached is not None:
                return cached
        if self._result_store is not None:
            result = self._result_store.get(scenario)
            if result is not None:
                return ScenarioResult(scenario=scenario, result=result)
        return ScenarioResult(scenario=scenario, result=_execute(scenario))

    def run_batch(
        self,
        scenarios: Sequence[Scenario],
        workers: int | None = None,
        chunk_size: "int | str" = AUTO_CHUNK,
        flush_every: int | None = None,
    ) -> tuple[ScenarioResult, ...]:
        """Execute many scenarios, returning results in the input order.

        A re-ordering wrapper over the :meth:`run_iter` stream: it drains
        completely, then delivers results in input order.  Cache misses
        are deduplicated (equal scenarios run once), planned into
        structure-sharing chunks of ``chunk_size`` and fanned out over a
        process pool of ``workers`` processes; ``workers=None`` falls back
        to the engine default, and ``1`` runs serially in process.
        Computed results are written back to the store from the driving
        process only (in ``flush_every``-sized batches), so pool workers
        never contend for record files.  Results are bit-identical to
        serial :meth:`run` calls, with or without a store, whatever the
        chunk size.
        """
        scenarios = list(scenarios)
        keys = [scenario.canonical_key() for scenario in scenarios]
        resolved: dict[tuple, ScenarioResult] = {}
        for key, record in self._stream(
            zip(keys, scenarios), workers, chunk_size, flush_every
        ):
            resolved[key] = record
        return tuple(
            self._deliver(scenario, resolved[key])
            for scenario, key in zip(scenarios, keys)
        )

    @staticmethod
    def _map_chunks(
        plan: SweepPlan,
        workers: int,
    ) -> "Iterator[tuple[tuple[int, ...], list[TwoStepResult], Exception | None]]":
        """Fan a plan's chunks out over a process pool, completion order.

        A generator of ``(indices, results, error)`` triples -- one per
        :class:`~repro.api.plan.PlanChunk`, emitted as the pool finishes
        them, which is what lets :meth:`run_iter` stream.  Falls back to
        serial execution at *chunk* granularity on sandboxed platforms
        where multiprocessing primitives are unavailable (pool
        construction fails) or where the pool dies mid-campaign (workers
        killed by resource limits -- ``BrokenExecutor``); the campaign
        then still completes, just without the speed-up, recomputing only
        the chunks the pool had not finished.  Exceptions raised by the
        optimisation *tasks* themselves -- whatever their type -- travel
        in the ``error`` slot with their original class and are re-raised
        by the stream, exactly as in serial execution.
        """
        chunks = plan.chunks
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, PermissionError, ImportError):
            for chunk in chunks:
                results, error = _execute_chunk(chunk.scenarios)
                yield chunk.indices, results, error
            return
        completed: set[int] = set()
        broken = False
        try:
            try:
                futures = {
                    pool.submit(_execute_chunk, chunk.scenarios): position
                    for position, chunk in enumerate(chunks)
                }
                for future in as_completed(futures):
                    position = futures[future]
                    results, error = future.result()
                    completed.add(position)
                    yield chunks[position].indices, results, error
            except BrokenExecutor:
                broken = True
        finally:
            # On normal exhaustion nothing is pending and this returns
            # immediately; on abandonment (consumer stopped early) or a
            # broken pool it prevents queued tasks from being started.
            pool.shutdown(wait=False, cancel_futures=True)
        if broken:
            for position, chunk in enumerate(chunks):
                if position not in completed:
                    results, error = _execute_chunk(chunk.scenarios)
                    yield chunk.indices, results, error


def optimize_scenario(
    engine: "Engine | None",
    soc,
    ate,
    probe_station,
    config,
    solver: str = DEFAULT_SOLVER,
    objective: str = DEFAULT_OBJECTIVE,
    solver_options: tuple = (),
) -> TwoStepResult:
    """Run one (soc, ate, probe, config) operating point through ``engine``.

    This is the bridge the experiment modules use: with an engine the run is
    memoised (shared operating points across experiments are optimised
    once); without one it degrades to a plain direct call.  ``solver``
    selects the registered backend that executes the point, ``objective``
    the registered objective it optimises, and ``solver_options`` tunes
    backend knobs (non-default options change the scenario's key).
    """
    scenario = Scenario(
        soc=soc,
        test_cell=TestCell(ate=ate, probe_station=probe_station),
        config=config,
        solver=solver,
        objective=objective,
        solver_options=solver_options,
    )
    if engine is None:
        return _execute(scenario)
    return engine.run(scenario).result


def batch_throughput_series(
    results: Sequence[ScenarioResult],
    x_axis: Callable[[ScenarioResult], float],
    name: str,
    x_label: str,
    y_label: str = "devices/hour",
) -> Series:
    """Build a figure :class:`Series` from batch results.

    ``x_axis`` extracts the x coordinate from each result (e.g.
    ``lambda r: r.scenario.test_cell.ate.channels``); the y coordinate is
    the optimal throughput.
    """
    if not results:
        raise ConfigurationError("cannot build a series from an empty batch")
    points = tuple((float(x_axis(result)), result.optimal_throughput) for result in results)
    return Series(name=name, x_label=x_label, y_label=y_label, points=points)
