"""Execution planning for campaign fan-out: structure-aware chunking.

:class:`SweepPlan` turns a scenario stream into the *chunks* the
:class:`~repro.api.engine.Engine` submits to its process pool.  Chunking
serves two ends at once:

* **IPC amortisation** -- one pool task (one pickle round-trip of the
  scenario graph, one result message) carries ``chunk_size`` scenarios
  instead of one, so orchestration overhead per scenario drops by about
  the chunk size;
* **memo locality** -- scenarios are grouped by their *structural
  fingerprint* (the resolved SOC, the optimisation config, the solver,
  plus any non-default objective or solver options -- exactly the prefix
  of the canonical key that the per-process evaluation-kernel memo is
  sensitive to), so every scenario in a chunk hits the same kernel memo
  state in its worker process.  Scenarios in one chunk differ only in
  their test cell (channels, depth), which is what the batch kernel
  amortises best.

The plan's only reordering is this grouping: **plan order is a
permutation of grid order** (asserted by the test suite), and because the
two-step algorithm is deterministic per scenario, chunked execution is
bit-identical to unchunked execution -- same results, same digests --
regardless of chunk size or worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.api.scenario import Scenario
from repro.core.exceptions import ConfigurationError

#: The sentinel ``chunk_size`` value selecting :func:`auto_chunk_size`.
AUTO_CHUNK = "auto"

#: Under ``"auto"`` sizing, aim for this many chunks per pool worker, so a
#: slow chunk cannot stall the tail of a campaign behind one process.
AUTO_CHUNKS_PER_WORKER = 4

#: Upper bound on an ``"auto"`` chunk: bounds both the latency until the
#: first result streams out and the work lost when a chunk is interrupted.
MAX_AUTO_CHUNK_SIZE = 64


def normalize_chunk_size(chunk_size: object) -> "int | str":
    """Validate a ``chunk_size`` argument: a positive int or ``"auto"``.

    Raises
    ------
    ConfigurationError
        On zero, negative, boolean or non-integer values.
    """
    if chunk_size == AUTO_CHUNK:
        return AUTO_CHUNK
    if isinstance(chunk_size, bool) or not isinstance(chunk_size, int):
        raise ConfigurationError(
            f"chunk size must be a positive integer or {AUTO_CHUNK!r}, "
            f"got {chunk_size!r}"
        )
    if chunk_size <= 0:
        raise ConfigurationError(
            f"chunk size must be a positive integer or {AUTO_CHUNK!r}, "
            f"got {chunk_size}"
        )
    return chunk_size


def auto_chunk_size(total: int, workers: int) -> int:
    """The ``"auto"`` heuristic: grid size over workers x chunks-per-worker.

    Sized so each pool worker gets about :data:`AUTO_CHUNKS_PER_WORKER`
    chunks (load balancing against uneven chunk runtimes), clamped to
    ``[1, MAX_AUTO_CHUNK_SIZE]``.  Small grids degrade to chunk size 1 --
    exactly the pre-planning per-scenario fan-out.
    """
    if total <= 0:
        return 1
    workers = max(1, workers)
    return max(
        1,
        min(MAX_AUTO_CHUNK_SIZE, math.ceil(total / (workers * AUTO_CHUNKS_PER_WORKER))),
    )


def structure_key(canonical_key: tuple) -> tuple:
    """The chunk-grouping prefix of a scenario's canonical key.

    Everything except the test cell (the key's second element): the
    resolved SOC, the optimisation config, the solver name, and -- when
    the key carries them -- the non-default objective and solver options.
    Two scenarios with equal structure keys exercise the same per-process
    kernel memo entries and differ only in their ATE operating point.
    """
    return (canonical_key[0],) + tuple(canonical_key[2:])


@dataclass(frozen=True)
class PlanChunk:
    """One pool task of a :class:`SweepPlan`: structure-sharing scenarios.

    ``indices`` are the positions of the chunk's scenarios in the planned
    input sequence, which is how the engine maps completed chunks back to
    its bookkeeping without re-deriving keys.
    """

    indices: tuple[int, ...]
    scenarios: tuple[Scenario, ...]

    def __len__(self) -> int:
        return len(self.scenarios)


@dataclass(frozen=True)
class SweepPlan:
    """A chunked execution order over a scenario sequence.

    Build one with :meth:`build`; iterate it for :class:`PlanChunk`
    objects.  Invariants (pinned by the test suite): every input scenario
    appears in exactly one chunk, the concatenated chunk indices are a
    permutation of ``range(total)``, every chunk's scenarios share one
    :func:`structure_key`, and no chunk exceeds ``chunk_size``.
    """

    chunks: tuple[PlanChunk, ...]
    #: The resolved (post-``"auto"``) chunk size the plan was cut with.
    chunk_size: int
    #: Number of scenarios planned.
    total: int
    #: Number of distinct structure keys (fingerprint groups) seen.
    groups: int

    def __iter__(self) -> Iterator[PlanChunk]:
        return iter(self.chunks)

    def __len__(self) -> int:
        return len(self.chunks)

    def scenario_order(self) -> tuple[int, ...]:
        """Input indices in plan order (a permutation of ``range(total)``)."""
        return tuple(index for chunk in self.chunks for index in chunk.indices)

    def describe(self) -> str:
        """One-line summary used by logs and progress lines."""
        return (
            f"plan[{self.total} scenario(s) -> {len(self.chunks)} chunk(s) "
            f"of <= {self.chunk_size}, {self.groups} structure group(s)]"
        )

    @classmethod
    def build(
        cls,
        scenarios: Sequence[Scenario],
        chunk_size: "int | str" = AUTO_CHUNK,
        workers: int = 1,
        keys: "Sequence[tuple] | None" = None,
    ) -> "SweepPlan":
        """Plan ``scenarios`` into structure-keyed chunks.

        ``keys`` passes pre-computed canonical keys (the engine already
        holds them for dedup) so planning never re-walks the scenario
        graphs; omitted, they are computed here.  Groups keep first-seen
        order and each group keeps input order, so the plan is a
        permutation of the input -- never a re-sort.
        """
        scenarios = list(scenarios)
        if keys is None:
            keys = [scenario.canonical_key() for scenario in scenarios]
        elif len(keys) != len(scenarios):
            raise ConfigurationError(
                f"plan keys/scenarios mismatch: {len(keys)} keys for "
                f"{len(scenarios)} scenarios"
            )
        size = normalize_chunk_size(chunk_size)
        if size == AUTO_CHUNK:
            size = auto_chunk_size(len(scenarios), workers)

        grouped: dict[tuple, list[int]] = {}
        for index, key in enumerate(keys):
            grouped.setdefault(structure_key(key), []).append(index)
        chunks = []
        for indices in grouped.values():
            for start in range(0, len(indices), size):
                block = indices[start : start + size]
                chunks.append(
                    PlanChunk(
                        indices=tuple(block),
                        scenarios=tuple(scenarios[index] for index in block),
                    )
                )
        return cls(
            chunks=tuple(chunks),
            chunk_size=size,
            total=len(scenarios),
            groups=len(grouped),
        )
