"""Scenario-first API: declarative runs, batch execution and caching.

This package is the canonical way to drive the reproduction:

* :class:`~repro.api.testcell.TestCell` -- the fixed wafer-test cell (ATE +
  probe station + optional pricing) as one immutable value;
* :class:`~repro.api.scenario.Scenario` -- a declarative, hashable
  description of one optimisation run (including the solver backend that
  executes it), with :meth:`Scenario.sweep
  <repro.api.scenario.Scenario.sweep>` expanding cartesian parameter grids;
* :class:`~repro.api.grid.SweepGrid` -- the lazy, composable form of the
  same grids (sharding via :meth:`~repro.api.grid.Grid.shard`, union via
  ``|``, filtering), sized for streaming campaigns over many SOCs;
* :class:`~repro.api.engine.Engine` -- executes scenarios serially, as
  parallel batches (``run_batch(scenarios, workers=N)``) or as a stream
  (``run_iter(grid, workers=N)`` yields results in completion order and
  persists each one immediately, making interrupted campaigns resumable),
  with an in-process memo cache keyed on the scenario's canonical hash
  (optionally LRU-bounded via ``max_entries``), and optionally backed by a
  persistent :class:`~repro.store.ResultStore` (``Engine(store=...)``)
  that shares solved scenarios across processes and sessions.

Scenarios route through the solver registry (:mod:`repro.solvers`):
``Scenario(solver="restart")`` swaps the paper's greedy two-step for any
registered backend, and ``Scenario.sweep(..., solvers=[...])`` treats the
backend as a sweep axis.  The classic free functions
(:func:`repro.optimize.two_step.optimize_multisite`,
:func:`repro.optimize.two_step.design_step1_only`) remain supported and
return identical results for the default backend.
"""

from repro.api.engine import (
    CacheInfo,
    Engine,
    ScenarioResult,
    batch_throughput_series,
    optimize_scenario,
)
from repro.api.grid import FilteredGrid, Grid, GridShard, GridUnion, SweepGrid
from repro.api.plan import PlanChunk, SweepPlan, auto_chunk_size, structure_key
from repro.api.scenario import Scenario, resolve_soc
from repro.api.testcell import TestCell, reference_test_cell

__all__ = [
    "CacheInfo",
    "Engine",
    "FilteredGrid",
    "Grid",
    "GridShard",
    "GridUnion",
    "Scenario",
    "ScenarioResult",
    "PlanChunk",
    "SweepGrid",
    "SweepPlan",
    "TestCell",
    "auto_chunk_size",
    "batch_throughput_series",
    "optimize_scenario",
    "reference_test_cell",
    "resolve_soc",
    "structure_key",
]
