"""Scenario-first API: declarative runs, batch execution and caching.

This package is the canonical way to drive the reproduction:

* :class:`~repro.api.testcell.TestCell` -- the fixed wafer-test cell (ATE +
  probe station + optional pricing) as one immutable value;
* :class:`~repro.api.scenario.Scenario` -- a declarative, hashable
  description of one optimisation run, with :meth:`Scenario.sweep
  <repro.api.scenario.Scenario.sweep>` expanding cartesian parameter grids;
* :class:`~repro.api.engine.Engine` -- executes scenarios serially or as
  parallel batches (``run_batch(scenarios, workers=N)``) with an in-process
  memo cache keyed on the scenario's canonical hash.

The classic free functions (:func:`repro.optimize.two_step.optimize_multisite`,
:func:`repro.optimize.two_step.design_step1_only`) remain supported; the
engine routes through them, so both APIs return identical results.
"""

from repro.api.engine import CacheInfo, Engine, ScenarioResult, batch_throughput_series
from repro.api.scenario import Scenario, resolve_soc
from repro.api.testcell import TestCell, reference_test_cell

__all__ = [
    "CacheInfo",
    "Engine",
    "Scenario",
    "ScenarioResult",
    "TestCell",
    "batch_throughput_series",
    "reference_test_cell",
    "resolve_soc",
]
