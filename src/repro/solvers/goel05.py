"""The paper's greedy two-step algorithm as a solver backend (``"goel05"``).

This is the headline heuristic of Goel & Marinissen (DATE 2005), moved here
from :mod:`repro.optimize.two_step` (which remains as a thin compatibility
shim): Step 1 designs the minimum-channel infrastructure with the greedy
channel-group assignment, Step 2 linearly searches the site count from the
maximum multi-site down and widens the design to each candidate's channel
budget.
"""

from __future__ import annotations

from repro.optimize.result import TwoStepResult
from repro.optimize.step1 import run_step1
from repro.optimize.step2 import run_step2
from repro.solvers.problem import TestInfraProblem
from repro.solvers.registry import register_solver


@register_solver(
    "goel05",
    title="Greedy two-step heuristic of the paper (default)",
    description="Step 1 greedy channel-group assignment, Step 2 linear "
    "site-count search; the algorithm of Goel & Marinissen (DATE 2005)",
)
def solve_goel05(problem: TestInfraProblem) -> TwoStepResult:
    """Run the paper's two-step algorithm on ``problem``.

    Raises
    ------
    InfeasibleDesignError
        When the SOC cannot be tested on the target ATE at all.
    """
    step1 = run_step1(problem.soc, problem.ate, problem.probe_station, problem.config)
    return run_step2(step1, problem.objective)
