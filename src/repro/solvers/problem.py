"""Declarative problem model consumed by the solver backends.

A solver backend does not reach into ``run_step1`` / ``run_step2``
internals; it consumes one frozen :class:`TestInfraProblem` -- the SOC, the
fixed wafer-test cell (ATE + probe station) and the variant switches -- and
returns one :class:`SolverSolution` wrapping the
:class:`~repro.optimize.result.TwoStepResult` it found.  Both values are
immutable and hashable, so solutions can be cached, compared and shipped
across process boundaries exactly like the problems that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.ate.probe_station import ProbeStation, reference_probe_station
from repro.ate.spec import AteSpec
from repro.core.exceptions import ConfigurationError
from repro.objectives.registry import DEFAULT_OBJECTIVE
from repro.optimize.config import OptimizationConfig
from repro.soc.soc import Soc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.optimize.result import SitePoint, TwoStepResult


@dataclass(frozen=True)
class TestInfraProblem:
    """One test-infrastructure design problem: SOC + test cell + config.

    Attributes
    ----------
    soc:
        The SOC to design the on-chip test infrastructure for.
    ate:
        The fixed target ATE (channel count, vector-memory depth, clock).
    probe_station:
        The fixed target probe station.  Defaults to the paper's reference
        prober.
    config:
        Variant switches of Section 5 (broadcast, abort-on-fail, objective,
        yields, site clamps).  Defaults to the paper's base case.
    objective:
        Registered objective (:mod:`repro.objectives`) the solver optimises;
        defaults to the paper's throughput.
    solver_options:
        Backend tuning knobs as a name-sorted tuple of ``(name, value)``
        pairs, exactly as normalised by
        :func:`repro.api.scenario.normalize_solver_options`.  The default
        (empty) keeps pre-existing problems equal and hashable as before;
        backends without knobs ignore the field.
    """

    soc: Soc
    ate: AteSpec
    probe_station: ProbeStation = ProbeStation(name="prober-ref")
    config: OptimizationConfig = OptimizationConfig()
    objective: str = DEFAULT_OBJECTIVE
    solver_options: tuple = ()

    #: Despite the Test* name this is not a test case; keep pytest away.
    __test__ = False

    def __post_init__(self) -> None:
        if not isinstance(self.soc, Soc):
            raise ConfigurationError(
                f"problem SOC must be a Soc, got {type(self.soc).__name__}"
            )
        if not isinstance(self.ate, AteSpec):
            raise ConfigurationError(
                f"problem ATE must be an AteSpec, got {type(self.ate).__name__}"
            )
        if not isinstance(self.objective, str) or not self.objective:
            raise ConfigurationError("problem objective must be a non-empty name")

    @property
    def width_budget(self) -> int:
        """Maximum total TAM width for a single site (``N // 2`` wires)."""
        return self.ate.channels // 2

    def with_config(self, config: OptimizationConfig) -> "TestInfraProblem":
        """Return a copy of this problem with different variant switches."""
        return replace(self, config=config)

    def options_dict(self) -> dict:
        """The solver options as a plain ``{name: value}`` dict."""
        return dict(self.solver_options)

    def describe(self) -> str:
        """One-line summary used by reports and logs.

        The objective is mentioned only when it deviates from the default,
        so reports of default runs read exactly as before the objective
        registry existed.
        """
        objective = (
            "" if self.objective == DEFAULT_OBJECTIVE else f", optimize={self.objective}"
        )
        return (
            f"problem[{self.soc.name} @ {self.ate.channels}ch x "
            f"{self.ate.depth} vectors, {self.config.describe()}{objective}]"
        )


def make_problem(
    soc: Soc,
    ate: AteSpec,
    probe_station: ProbeStation | None = None,
    config: OptimizationConfig | None = None,
    objective: str = DEFAULT_OBJECTIVE,
    solver_options: tuple = (),
) -> TestInfraProblem:
    """Build a :class:`TestInfraProblem`, filling in the paper's defaults."""
    return TestInfraProblem(
        soc=soc,
        ate=ate,
        probe_station=probe_station or reference_probe_station(),
        config=config or OptimizationConfig(),
        objective=objective,
        solver_options=solver_options,
    )


@dataclass(frozen=True)
class SolverSolution:
    """Outcome of one solver run on one problem.

    Attributes
    ----------
    problem:
        The problem the solver was asked to solve.
    solver:
        Registry name of the backend that produced the solution.
    result:
        The full two-step result (Step-1 design, Step-2 sweep, best point).
    """

    problem: TestInfraProblem
    solver: str
    result: "TwoStepResult"

    @property
    def best(self) -> "SitePoint":
        """The throughput-optimal site point of the solution."""
        return self.result.best

    @property
    def optimal_sites(self) -> int:
        """The throughput-optimal number of sites."""
        return self.result.optimal_sites

    @property
    def optimal_throughput(self) -> float:
        """The objective value at the optimal site count."""
        return self.result.optimal_throughput

    @property
    def channels_per_site(self) -> int:
        """ATE channels per site of the Step-1 design."""
        return self.result.step1.channels_per_site

    @property
    def score(self) -> float:
        """The objective value on the maximise convention (sense-signed)."""
        from repro.objectives.registry import get_objective

        return get_objective(self.problem.objective).signed(self.optimal_throughput)

    @property
    def lower_bound(self) -> float | None:
        """Certified bound on the achievable objective value, raw units.

        ``None`` when no certificate exists for the problem (see
        :mod:`repro.solvers.bounds`); otherwise no feasible design can beat
        it, so ``score <= signed(lower_bound)`` always holds.
        """
        from repro.solvers.bounds import problem_lower_bound

        return problem_lower_bound(self.problem)

    @property
    def gap(self) -> float | None:
        """Relative optimality gap against the certificate (0.0 = proven optimal)."""
        from repro.solvers.bounds import relative_gap

        return relative_gap(self.optimal_throughput, self.lower_bound, self.problem.objective)

    def describe(self) -> str:
        """One-line summary used by reports and logs."""
        return (
            f"{self.solver}[{self.problem.soc.name}]: "
            f"n_opt={self.optimal_sites}, k={self.best.channels_per_site}, "
            f"objective={self.optimal_throughput:.1f}/h"
        )
