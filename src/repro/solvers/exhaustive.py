"""Exact enumeration solver backend (``"exhaustive"``), the correctness oracle.

Enumerates every partition of the SOC's modules into channel groups, gives
each group the minimum TAM width at which its fill fits the vector-memory
depth (the paper's criterion 1 -- any extra budget is spent by Step 2's
bottleneck widening), runs the Step-2 site search on every feasible
candidate, and returns the candidate with the best objective value.

The search space is the Bell number of the module count, so the backend
refuses SOCs with more than :data:`MAX_EXHAUSTIVE_MODULES` modules; its
purpose is validating the greedy ``"goel05"`` heuristic on small instances
(e.g. sub-SOCs derived from the d695 benchmark), not production sizing.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.objectives.registry import get_objective
from repro.optimize.result import TwoStepResult
from repro.optimize.step1 import step1_result_from_architecture
from repro.optimize.step2 import run_step2
from repro.solvers.problem import TestInfraProblem
from repro.solvers.registry import register_solver
from repro.soc.module import Module
from repro.tam.architecture import TestArchitecture
from repro.tam.assignment import minimum_widths
from repro.tam.channel_group import ChannelGroup
from repro.wrapper.combine import module_test_time

#: Largest module count the exhaustive search accepts (Bell(8) = 4140
#: partitions); beyond that the enumeration is hopeless and the greedy
#: backends are the only option.
MAX_EXHAUSTIVE_MODULES = 8


def _partitions(items: Sequence[Module]) -> Iterator[list[list[Module]]]:
    """Yield every partition of ``items`` into non-empty blocks, deterministically."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions(rest):
        for position in range(len(partition)):
            yield (
                partition[:position]
                + [[first] + partition[position]]
                + partition[position + 1 :]
            )
        yield [[first]] + partition


def _minimal_group(
    block: Sequence[Module],
    index: int,
    widths: dict[str, int],
    depth: int,
    max_width: int,
) -> ChannelGroup | None:
    """The narrowest channel group that tests ``block`` within ``depth``.

    Below any member's individual minimum width the sum certainly exceeds
    the depth, so the search starts at the largest member minimum.
    """
    width = max(widths[module.name] for module in block)
    while width <= max_width:
        fill = sum(module_test_time(module, width) for module in block)
        if fill <= depth:
            return ChannelGroup(index=index, width=width, modules=tuple(block))
        width += 1
    return None


@register_solver(
    "exhaustive",
    title="Exact partition enumeration (small SOCs only)",
    description="Enumerates every channel-group partition; the correctness "
    "oracle, refuses SOCs with more than 8 modules",
)
def solve_exhaustive(problem: TestInfraProblem) -> TwoStepResult:
    """Exhaustively search channel-group partitions for the best design.

    Raises
    ------
    ConfigurationError
        When the SOC has more than :data:`MAX_EXHAUSTIVE_MODULES` modules.
    InfeasibleDesignError
        When no partition fits the target ATE.
    """
    soc, ate, config = problem.soc, problem.ate, problem.config
    objective = get_objective(problem.objective)
    if len(soc.modules) > MAX_EXHAUSTIVE_MODULES:
        raise ConfigurationError(
            f"exhaustive solver handles at most {MAX_EXHAUSTIVE_MODULES} modules, "
            f"got {len(soc.modules)} in SOC {soc.name!r}; use 'goel05' or 'restart'"
        )
    width_budget = problem.width_budget
    if width_budget <= 0:
        raise ConfigurationError(f"ATE must provide at least 2 channels, got {ate.channels}")
    widths = minimum_widths(soc, ate.depth, width_budget)

    best: TwoStepResult | None = None
    best_rank: tuple[float, int, int] | None = None
    for partition in _partitions(soc.modules):
        groups: list[ChannelGroup] = []
        remaining = width_budget
        for index, block in enumerate(partition):
            group = _minimal_group(block, index, widths, ate.depth, remaining)
            if group is None:
                groups = []
                break
            groups.append(group)
            remaining -= group.width
        if not groups:
            continue
        architecture = TestArchitecture(soc=soc, groups=tuple(groups), depth=ate.depth)
        try:
            step1 = step1_result_from_architecture(
                soc, architecture, ate, problem.probe_station, config
            )
            candidate = run_step2(step1, objective.name)
        except InfeasibleDesignError:
            continue
        rank = (
            objective.signed(candidate.optimal_throughput),
            -step1.channels_per_site,
            -step1.test_time_cycles,
        )
        if best_rank is None or rank > best_rank:
            best, best_rank = candidate, rank

    if best is None:
        raise InfeasibleDesignError(
            f"SOC {soc.name!r} cannot be tested on {ate.channels} channels at "
            f"depth {ate.depth} under any channel-group partition"
        )
    return best
