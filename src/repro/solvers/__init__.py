"""Pluggable solver backends for the test-infrastructure design problem.

This package splits the optimisation stack into three explicit layers:

* **problem model** (:mod:`repro.solvers.problem`) -- a frozen
  :class:`TestInfraProblem` (SOC + ATE + probe station + config) consumed
  declaratively by every backend, and the :class:`SolverSolution` they
  return;
* **solver backends** (:mod:`repro.solvers.registry` plus one module per
  backend) -- ``"goel05"`` (the paper's greedy two-step, the default),
  ``"exhaustive"`` (exact partition enumeration for small SOCs, the
  correctness oracle) and ``"restart"`` (deterministic randomized
  multi-start greedy), each registered with :func:`register_solver`;
* **evaluation kernel** (:mod:`repro.solvers.evaluate`) -- the memoized
  per-``(design, sites)`` throughput/economics evaluation shared by Step 2,
  the experiments and every backend.

Select a backend through ``Scenario(solver="restart")``, the
``--solver`` CLI flag, or directly via :func:`solve`; ``python -m repro
solvers`` lists what is registered.
"""

from repro.solvers.evaluate import (
    EvaluatedPoint,
    KernelCacheInfo,
    evaluate_batch,
    evaluate_move,
    evaluate_point,
    evaluate_points,
    objective_value,
    scenario_for,
    timing_for,
)
from repro.solvers.problem import SolverSolution, TestInfraProblem, make_problem
from repro.solvers.registry import (
    DEFAULT_SOLVER,
    Solver,
    get_solver,
    list_solvers,
    register_solver,
    solve,
    solver_names,
)

__all__ = [
    "DEFAULT_SOLVER",
    "EvaluatedPoint",
    "KernelCacheInfo",
    "Solver",
    "SolverSolution",
    "TestInfraProblem",
    "evaluate_batch",
    "evaluate_move",
    "evaluate_point",
    "evaluate_points",
    "get_solver",
    "list_solvers",
    "make_problem",
    "objective_value",
    "register_solver",
    "scenario_for",
    "solve",
    "solver_names",
    "timing_for",
]
