"""Lower-bound certificates for the test-infrastructure problem.

The 8-module :mod:`exhaustive <repro.solvers.exhaustive>` oracle cannot say
anything about solution quality on the ITC'02 benchmarks or the large
``synthetic:*`` chips.  This module closes that gap with a *certificate*:
an objective value that provably cannot be beaten by any feasible design,
derived from two classic relaxations of the channel-group model:

* **per-module test-time bound** -- with a total TAM width of ``W`` wires,
  every module runs at a wrapper width of at most ``W``, so the SOC test
  time is at least the largest per-module minimum test time over widths
  ``<= W`` (a consequence of the staircase wrapper model, see
  :mod:`repro.wrapper.pareto`);
* **channel-capacity bound** -- ``W`` wires over ``T`` cycles provide
  ``W * T`` channel*cycle units, while every module consumes at least the
  area of its cheapest depth-feasible Pareto point, so
  ``T >= ceil(sum(min areas) / W)``.

For every admissible combination of site count ``n`` and per-site channel
count ``k = 2 * W`` the certificate evaluates the objective at the relaxed
test time ``T_min(W) = max(time bound, capacity bound)`` and keeps the best
(sense-signed) value.  Because every built-in objective satisfies the
monotonicity contract *"for a fixed site count, channel count and yields,
the objective never improves as the manufacturing test time grows"*, the
result certifies the optimum: no feasible design -- under any solver -- can
achieve a signed score above the certificate's.  Custom objectives must
honour the same contract for their certificates to be sound.

The raw ``value`` keeps the objective's natural orientation: for a
minimised objective (test time, cost per good die) it is a literal lower
bound, for a maximised one (throughput) it is a certified upper bound; in
both cases ``signed(value) >= signed(optimum)``.  Solvers and the analysis
layer report the relative optimality gap via :func:`relative_gap`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.ate.probe_station import ProbeStation
from repro.ate.spec import AteSpec
from repro.core.exceptions import ConfigurationError
from repro.multisite.cost_model import TestTiming
from repro.multisite.throughput import MultiSiteScenario
from repro.objectives.registry import get_objective
from repro.optimize.channels import max_channels_per_site
from repro.optimize.config import OptimizationConfig
from repro.soc.soc import Soc
from repro.wrapper.pareto import pareto_points

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scenario import Scenario
    from repro.solvers.problem import TestInfraProblem

#: Number of distinct ``(soc, ate, probe, config, objective)`` certificates
#: kept; one per scenario family, so this covers every sweep in the repo.
CERTIFICATE_CACHE_SIZE = 4096


@dataclass(frozen=True)
class BoundCertificate:
    """A certified bound on the achievable objective value.

    Attributes
    ----------
    objective:
        Registry name of the certified objective.
    sense:
        The objective's optimisation sense (``"max"`` or ``"min"``).
    value:
        The bound in the objective's raw units: no feasible design can beat
        it (``signed(value) >= signed(any feasible value)``).
    sites:
        Site count of the relaxed configuration that attains the bound.
    channels_per_site:
        Per-site channel count of that configuration.
    test_time_cycles:
        The relaxed SOC test time the bound was evaluated at.
    """

    objective: str
    sense: str
    value: float
    sites: int
    channels_per_site: int
    test_time_cycles: int

    @property
    def signed_value(self) -> float:
        """The bound on the solvers' maximise-convention scale."""
        return self.value if self.sense == "max" else -self.value

    def describe(self) -> str:
        """One-line summary used by reports and logs."""
        return (
            f"bound[{self.objective}]: {self.value:.4g} at n={self.sites}, "
            f"k={self.channels_per_site}, t>={self.test_time_cycles} cycles"
        )


def _relaxed_test_times(soc: Soc, depth: int, width_cap: int) -> list[int | None]:
    """Minimum achievable SOC test time for every total TAM width.

    Returns a list indexed by total width ``W`` (entry 0 unused) whose entry
    is the relaxed test-time bound ``T_min(W)`` described in the module
    docstring, or ``None`` when no design of total width ``W`` can fit the
    vector-memory ``depth`` (some module has no depth-feasible wrapper
    width ``<= W``, or the bound itself exceeds the depth).
    """
    slowest = [0] * (width_cap + 1)
    area_sum: list[int | None] = [0] * (width_cap + 1)
    for module in soc.modules:
        frontier = pareto_points(module, width_cap)
        position = 0
        time = None
        best_area: int | None = None
        for width in range(1, width_cap + 1):
            while position < len(frontier) and frontier[position].width <= width:
                point = frontier[position]
                time = point.test_time_cycles
                if point.test_time_cycles <= depth:
                    if best_area is None or point.area < best_area:
                        best_area = point.area
                position += 1
            # Width 1 is always on the frontier, so `time` is set from here on.
            if time > slowest[width]:
                slowest[width] = time
            if best_area is None:
                area_sum[width] = None
            elif area_sum[width] is not None:
                area_sum[width] += best_area

    times: list[int | None] = [None] * (width_cap + 1)
    for width in range(1, width_cap + 1):
        area = area_sum[width]
        if area is None:
            continue
        bound = max(slowest[width], -(-area // width))
        if bound <= depth:
            times[width] = bound
    return times


@lru_cache(maxsize=CERTIFICATE_CACHE_SIZE)
def _certificate(
    soc: Soc,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
    objective: str,
) -> BoundCertificate | None:
    """Compute (and cache) the certificate for one problem family.

    Returns ``None`` when the objective is unknown or the relaxation itself
    is infeasible (no width/site combination fits the ATE) -- in both cases
    there is nothing sound to certify.
    """
    try:
        spec = get_objective(objective)
    except ConfigurationError:
        return None
    width_cap = ate.channels // 2
    if width_cap < 1:
        return None
    times = _relaxed_test_times(soc, ate.depth, width_cap)
    feasible_widths = [width for width in range(1, width_cap + 1) if times[width] is not None]
    if not feasible_widths:
        return None
    narrowest = feasible_widths[0]

    best: BoundCertificate | None = None
    best_signed = -math.inf
    sites = max(1, config.min_sites)
    while config.max_sites is None or sites <= config.max_sites:
        # The per-site budget shrinks as sites grow; once even the
        # narrowest feasible width no longer fits, no larger site count can.
        site_cap = min(max_channels_per_site(ate.channels, sites, config.broadcast) // 2, width_cap)
        if site_cap < narrowest:
            break
        for width in range(narrowest, site_cap + 1):
            cycles = times[width]
            if cycles is None:
                continue
            scenario = MultiSiteScenario(
                sites=sites,
                timing=TestTiming(
                    index_time_s=probe_station.index_time_s,
                    contact_test_time_s=probe_station.contact_test_time_s,
                    manufacturing_test_time_s=ate.cycles_to_seconds(cycles),
                ),
                channels_per_site=2 * width,
                contact_yield=probe_station.contact_yield,
                manufacturing_yield=config.manufacturing_yield,
            )
            value = spec.value(scenario, config, ate)
            signed = spec.signed(value)
            if signed > best_signed:
                best_signed = signed
                best = BoundCertificate(
                    objective=spec.name,
                    sense=spec.sense,
                    value=value,
                    sites=sites,
                    channels_per_site=2 * width,
                    test_time_cycles=cycles,
                )
        sites += 1
    return best


def certificate(
    soc: Soc,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
    objective: str,
) -> BoundCertificate | None:
    """The bound certificate for one problem family, or ``None``.

    Cosmetic labels of the test cell are blanked before the cache lookup,
    so differently-named but physically identical cells share one entry.
    """
    return _certificate(
        soc,
        replace(ate, name=""),
        replace(probe_station, name=""),
        config,
        objective,
    )


def problem_certificate(problem: "TestInfraProblem") -> BoundCertificate | None:
    """The bound certificate for a solver problem, or ``None``."""
    return certificate(
        problem.soc, problem.ate, problem.probe_station, problem.config, problem.objective
    )


def problem_lower_bound(problem: "TestInfraProblem") -> float | None:
    """The certified bound of a solver problem in raw objective units."""
    cert = problem_certificate(problem)
    return None if cert is None else cert.value


def scenario_lower_bound(scenario: "Scenario") -> float | None:
    """The certified bound of an engine scenario in raw objective units.

    Resolves catalog SOC references; returns ``None`` when the reference
    cannot be resolved (e.g. a record replayed on a machine without the
    catalog entry) rather than failing the report that asked.
    """
    from repro.core.exceptions import ReproError

    try:
        soc = scenario.resolve()
    except ReproError:
        return None
    cert = certificate(
        soc,
        scenario.test_cell.ate,
        scenario.test_cell.probe_station,
        scenario.config,
        scenario.objective,
    )
    return None if cert is None else cert.value


def relative_gap(value: float, bound: float | None, objective: str) -> float | None:
    """Relative optimality gap of an achieved ``value`` against a bound.

    The gap is ``(signed(bound) - signed(value)) / |signed(bound)|`` -- 0.0
    when the solution provably attains the certificate, growing as the
    solution falls short of it.  Returns ``None`` when no bound exists, the
    bound is zero or non-finite, or the objective is unknown; tiny negative
    rounding residues are clamped to 0.0.
    """
    if bound is None:
        return None
    try:
        spec = get_objective(objective)
    except ConfigurationError:
        return None
    signed_bound = spec.signed(bound)
    if not math.isfinite(signed_bound) or signed_bound == 0.0 or not math.isfinite(value):
        return None
    return max(0.0, (signed_bound - spec.signed(value)) / abs(signed_bound))
