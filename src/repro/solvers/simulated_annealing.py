"""Simulated-annealing solver backend (``"simulated_annealing"``).

The greedy backends (``goel05``, ``restart``) only ever see architectures
the paper's constructive assignment can produce.  This backend searches the
design space directly: starting from the paper's Step-1 design it walks
over ``(architecture, sites)`` states with a small move set, accepting
worsening moves with the classic Metropolis probability under a
geometrically cooled temperature.  Every state evaluation goes through the
shared kernel (:mod:`repro.solvers.evaluate`): width moves use
:func:`~repro.solvers.evaluate.evaluate_move` (so undoing a move is a memo
hit) and the final packaging of the best partitions found uses the same
Step-2 sweep as every other backend.

Moves
-----
* **width**: grow or shrink one channel group by one TAM wire
  (:func:`~repro.solvers.evaluate.evaluate_move`);
* **reassign**: move one module into another -- or a brand new -- channel
  group, re-minimising the affected groups' widths;
* **swap**: exchange two modules between their channel groups;
* **sites**: step the evaluated site count by one.

Determinism
-----------
All randomness is drawn from one :class:`repro.core.rng.DeterministicRng`
stream seeded with the ``seed`` knob (default :data:`DEFAULT_SEED`), and
candidate ranking matches the other backends' rank tuple, so repeated runs
-- including parallel ``Engine.run_batch`` workers -- are bit-identical.
The first candidate packaged for the final comparison is always the plain
``goel05`` result, so the backend is never worse than the paper's
heuristic.

Knobs
-----
``temperature`` (start), ``cooling`` (geometric factor), ``moves_per_temp``
(proposals per temperature), ``restarts`` (independent chains) and ``seed``
arrive through :attr:`~repro.solvers.problem.TestInfraProblem.
solver_options`, i.e. through ``Scenario.with_solver_options`` / the
``repro design --sa-*`` flags; unknown names are rejected.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.core.rng import DeterministicRng
from repro.objectives.registry import get_objective
from repro.optimize.channels import max_channels_per_site, max_sites
from repro.optimize.result import TwoStepResult
from repro.optimize.step1 import step1_result_from_architecture
from repro.optimize.step2 import run_step2
from repro.soc.module import Module
from repro.soc.soc import Soc
from repro.solvers.evaluate import EvaluatedPoint, evaluate_move, evaluate_point
from repro.solvers.exhaustive import _minimal_group
from repro.solvers.problem import TestInfraProblem
from repro.solvers.registry import register_solver
from repro.tam.architecture import TestArchitecture
from repro.tam.assignment import assign_modules, minimum_widths
from repro.tam.channel_group import ChannelGroup

#: Default starting temperature of the relative-delta Metropolis rule.
DEFAULT_TEMPERATURE = 1.0

#: Default geometric cooling factor per temperature level.
DEFAULT_COOLING = 0.85

#: Default number of proposed moves at each temperature level.
DEFAULT_MOVES_PER_TEMP = 30

#: Default number of independent annealing chains.
DEFAULT_RESTARTS = 1

#: Seed of the proposal stream; fixed so every run is bit-identical.
DEFAULT_SEED = 20050307

#: Temperature below which the chain stops (the rule is greedy there anyway).
MIN_TEMPERATURE = 1e-2

#: The knob names accepted through ``Scenario`` solver options.
KNOB_NAMES = ("temperature", "cooling", "moves_per_temp", "restarts", "seed")


def cooling_schedule(
    temperature: float = DEFAULT_TEMPERATURE,
    cooling: float = DEFAULT_COOLING,
    min_temperature: float = MIN_TEMPERATURE,
) -> tuple[float, ...]:
    """The geometric temperature ladder ``T, T*c, T*c^2, ... > min``.

    Raises :class:`~repro.core.exceptions.ConfigurationError` for
    non-positive temperatures or a cooling factor outside ``(0, 1)``.
    """
    if temperature <= 0:
        raise ConfigurationError(f"SA temperature must be positive, got {temperature}")
    if not 0.0 < cooling < 1.0:
        raise ConfigurationError(f"SA cooling factor must be in (0, 1), got {cooling}")
    if min_temperature <= 0:
        raise ConfigurationError(
            f"SA minimum temperature must be positive, got {min_temperature}"
        )
    ladder = []
    current = temperature
    while current > min_temperature:
        ladder.append(current)
        current *= cooling
    return tuple(ladder)


def acceptance_probability(delta: float, temperature: float, scale: float) -> float:
    """Metropolis acceptance probability for a signed-score change ``delta``.

    Improvements (``delta >= 0``) are always accepted.  Worsening moves are
    accepted with ``exp(delta / (temperature * scale))`` where ``scale``
    normalises the objective's magnitude (the caller passes the current
    score's magnitude), so one temperature ladder works for objectives
    whose values differ by orders of magnitude.  At ``temperature <= 0``
    the rule degenerates to pure greedy descent.
    """
    if delta >= 0:
        return 1.0
    if temperature <= 0:
        return 0.0
    scaled = delta / (temperature * max(scale, 1e-300))
    if scaled < -700.0:  # exp() underflow guard
        return 0.0
    return math.exp(scaled)


def _parse_knobs(problem: TestInfraProblem) -> dict:
    """Validate the problem's solver options into the SA knob dict."""
    options = problem.options_dict()
    unknown = sorted(set(options) - set(KNOB_NAMES))
    if unknown:
        raise ConfigurationError(
            f"unknown simulated_annealing option(s) {unknown}; "
            f"known: {', '.join(KNOB_NAMES)}"
        )
    knobs = {
        "temperature": options.get("temperature", DEFAULT_TEMPERATURE),
        "cooling": options.get("cooling", DEFAULT_COOLING),
        "moves_per_temp": options.get("moves_per_temp", DEFAULT_MOVES_PER_TEMP),
        "restarts": options.get("restarts", DEFAULT_RESTARTS),
        "seed": options.get("seed", DEFAULT_SEED),
    }
    for name in ("temperature", "cooling"):
        if isinstance(knobs[name], bool) or not isinstance(knobs[name], (int, float)):
            raise ConfigurationError(f"SA option {name!r} must be a number, got {knobs[name]!r}")
        knobs[name] = float(knobs[name])
    for name in ("moves_per_temp", "restarts", "seed"):
        if isinstance(knobs[name], bool) or not isinstance(knobs[name], int):
            raise ConfigurationError(f"SA option {name!r} must be an integer, got {knobs[name]!r}")
    if knobs["moves_per_temp"] < 1:
        raise ConfigurationError(
            f"SA option 'moves_per_temp' must be >= 1, got {knobs['moves_per_temp']}"
        )
    if knobs["restarts"] < 1:
        raise ConfigurationError(f"SA option 'restarts' must be >= 1, got {knobs['restarts']}")
    return knobs


def _rebuilt_groups(
    blocks: Sequence[Sequence[Module]],
    widths: dict[str, int],
    depth: int,
    width_budget: int,
) -> tuple[ChannelGroup, ...] | None:
    """Channel groups for ``blocks``, each at its minimal feasible width.

    Returns ``None`` when some block cannot fit the depth within the
    remaining width budget (the proposal is then rejected).
    """
    groups: list[ChannelGroup] = []
    remaining = width_budget
    for index, block in enumerate(blocks):
        group = _minimal_group(block, index, widths, depth, remaining)
        if group is None:
            return None
        groups.append(group)
        remaining -= group.width
    return tuple(groups)


class _Chain:
    """One annealing chain over ``(architecture, sites)`` states."""

    def __init__(
        self,
        problem: TestInfraProblem,
        start: TestArchitecture,
        rng: DeterministicRng,
        widths: dict[str, int],
    ) -> None:
        self.problem = problem
        self.rng = rng
        self.widths = widths
        self.soc = problem.soc
        self.modules = problem.soc.modules
        config = problem.config
        upper = max_sites(problem.ate.channels, start.ate_channels, config.broadcast)
        if config.max_sites is not None:
            upper = min(upper, config.max_sites)
        lower = max(1, config.min_sites)
        if upper < lower:
            raise InfeasibleDesignError(
                f"SOC {self.soc.name!r} supports at most {upper} site(s), below the "
                f"configured minimum of {lower}"
            )
        self.min_sites = lower
        self.current = self._evaluate(start, upper)
        self.best = self.current

    # ------------------------------------------------------------------
    # State evaluation and bookkeeping
    # ------------------------------------------------------------------
    def _evaluate(self, architecture: TestArchitecture, sites: int) -> EvaluatedPoint:
        problem = self.problem
        return evaluate_point(
            architecture, sites, problem.ate, problem.probe_station,
            problem.config, problem.objective,
        )

    def _site_cap(self, architecture: TestArchitecture) -> int:
        cap = max_sites(
            self.problem.ate.channels, architecture.ate_channels, self.problem.config.broadcast
        )
        if self.problem.config.max_sites is not None:
            cap = min(cap, self.problem.config.max_sites)
        return cap

    def _budget_ok(self, architecture: TestArchitecture, sites: int) -> bool:
        """Does the architecture fit the ATE and the per-site channel budget?"""
        if architecture.test_time_cycles > self.problem.ate.depth:
            return False
        budget = max_channels_per_site(
            self.problem.ate.channels, sites, self.problem.config.broadcast
        )
        return architecture.ate_channels <= min(budget, self.problem.ate.channels)

    # ------------------------------------------------------------------
    # Move proposals (each returns a candidate point or None to reject)
    # ------------------------------------------------------------------
    def _propose_width(self) -> EvaluatedPoint | None:
        module = self.modules[self.rng.randint(0, len(self.modules) - 1)]
        delta = 1 if self.rng.randint(0, 1) else -1
        try:
            candidate = evaluate_move(self.current, module, delta)
        except ConfigurationError:  # width would drop to zero
            return None
        if not self._budget_ok(candidate.architecture, candidate.sites):
            return None
        return candidate

    def _blocks(self) -> list[list[Module]]:
        return [list(group.modules) for group in self.current.architecture.groups]

    def _propose_reassign(self) -> EvaluatedPoint | None:
        blocks = self._blocks()
        source = self.rng.randint(0, len(blocks) - 1)
        module = blocks[source].pop(self.rng.randint(0, len(blocks[source]) - 1))
        if not blocks[source]:
            del blocks[source]
        # Targets: every remaining group, or a brand new singleton group.
        target = self.rng.randint(0, len(blocks))
        if target == len(blocks):
            if not blocks and len(self.current.architecture.groups) == 1:
                return None  # single-module SOC: the move is the identity
            blocks.append([module])
        else:
            blocks[target].append(module)
        return self._evaluate_blocks(blocks)

    def _propose_swap(self) -> EvaluatedPoint | None:
        blocks = self._blocks()
        if len(blocks) < 2:
            return None
        first = self.rng.randint(0, len(blocks) - 1)
        second = self.rng.randint(0, len(blocks) - 2)
        if second >= first:
            second += 1
        i = self.rng.randint(0, len(blocks[first]) - 1)
        j = self.rng.randint(0, len(blocks[second]) - 1)
        blocks[first][i], blocks[second][j] = blocks[second][j], blocks[first][i]
        return self._evaluate_blocks(blocks)

    def _evaluate_blocks(self, blocks: list[list[Module]]) -> EvaluatedPoint | None:
        groups = _rebuilt_groups(blocks, self.widths, self.problem.ate.depth,
                                 self.problem.width_budget)
        if groups is None:
            return None
        architecture = TestArchitecture(soc=self.soc, groups=groups, depth=self.problem.ate.depth)
        cap = self._site_cap(architecture)
        if cap < self.min_sites:
            return None
        sites = min(self.current.sites, cap)
        if not self._budget_ok(architecture, sites):
            return None
        return self._evaluate(architecture, sites)

    def _propose_sites(self) -> EvaluatedPoint | None:
        delta = 1 if self.rng.randint(0, 1) else -1
        sites = self.current.sites + delta
        if sites < self.min_sites or sites > self._site_cap(self.current.architecture):
            return None
        if not self._budget_ok(self.current.architecture, sites):
            return None
        return self._evaluate(self.current.architecture, sites)

    _MOVES = ("width", "reassign", "swap", "sites")

    def propose(self) -> EvaluatedPoint | None:
        """Draw one move from the move set and build its candidate state."""
        move = self._MOVES[self.rng.randint(0, len(self._MOVES) - 1)]
        if move == "width":
            return self._propose_width()
        if move == "reassign":
            return self._propose_reassign()
        if move == "swap":
            return self._propose_swap()
        return self._propose_sites()

    # ------------------------------------------------------------------
    # The annealing loop
    # ------------------------------------------------------------------
    def run(self, temperature: float, cooling: float, moves_per_temp: int) -> EvaluatedPoint:
        for level in cooling_schedule(temperature, cooling):
            for _ in range(moves_per_temp):
                candidate = self.propose()
                if candidate is None:
                    continue
                delta = candidate.score - self.current.score
                scale = max(abs(self.current.score), abs(candidate.score))
                if self.rng.uniform(0.0, 1.0) < acceptance_probability(delta, level, scale):
                    self.current = candidate
                    if candidate.score > self.best.score:
                        self.best = candidate
        return self.best


def _normalized(architecture: TestArchitecture, widths: dict[str, int], depth: int,
                width_budget: int) -> TestArchitecture | None:
    """Shrink every group back to its minimal feasible width.

    The walk may leave groups wider than necessary; Step 2 re-widens to
    each site count's budget anyway, so the *partition* is what the chain
    really decided.  Normalising maximises the Step-2 site range and makes
    the final candidate independent of leftover walk state.
    """
    blocks = [list(group.modules) for group in architecture.groups]
    groups = _rebuilt_groups(blocks, widths, depth, width_budget)
    if groups is None:  # pragma: no cover - walk states are budget-checked
        return None
    return TestArchitecture(soc=architecture.soc, groups=groups, depth=depth)


def solve_annealed(
    problem: TestInfraProblem,
    temperature: float = DEFAULT_TEMPERATURE,
    cooling: float = DEFAULT_COOLING,
    moves_per_temp: int = DEFAULT_MOVES_PER_TEMP,
    restarts: int = DEFAULT_RESTARTS,
    seed: int = DEFAULT_SEED,
) -> TwoStepResult:
    """Anneal ``problem`` with explicit knobs.

    Runs ``restarts`` independent chains (the first from the paper's
    Step-1 design, later ones from shuffled greedy assignments), packages
    each chain's best partition -- plus the plain ``goel05`` design --
    through the full Step-2 sweep, and returns the best candidate by the
    standard solver rank tuple.

    Raises
    ------
    InfeasibleDesignError
        When the SOC cannot be tested on the target ATE at all.
    """
    cooling_schedule(temperature, cooling)  # validate the knob pair eagerly
    if moves_per_temp < 1:
        raise ConfigurationError(f"moves_per_temp must be >= 1, got {moves_per_temp}")
    if restarts < 1:
        raise ConfigurationError(f"restart count must be >= 1, got {restarts}")

    soc, ate, config = problem.soc, problem.ate, problem.config
    objective = get_objective(problem.objective)
    width_budget = problem.width_budget
    if width_budget <= 0:
        raise ConfigurationError(f"ATE must provide at least 2 channels, got {ate.channels}")
    widths = minimum_widths(soc, ate.depth, width_budget)

    rng = DeterministicRng(seed)
    candidates: list[TestArchitecture] = []
    first_error: InfeasibleDesignError | None = None

    from repro.tam.assignment import design_architecture

    for chain_index in range(restarts):
        try:
            if chain_index == 0:
                start = design_architecture(soc, ate.channels, ate.depth)
            else:
                order = tuple(rng.shuffled(soc.modules))
                start = assign_modules(soc, order, widths, ate.channels, ate.depth)
            chain = _Chain(problem, start, rng, widths)
        except InfeasibleDesignError as error:
            first_error = first_error or error
            continue
        if chain_index == 0:
            candidates.append(start)  # the plain goel05 design, always compared
        best_point = chain.run(temperature, cooling, moves_per_temp)
        normalized = _normalized(best_point.architecture, widths, ate.depth, width_budget)
        if normalized is not None and normalized not in candidates:
            candidates.append(normalized)

    best: TwoStepResult | None = None
    best_rank: tuple[float, int, int] | None = None
    for architecture in candidates:
        try:
            step1 = step1_result_from_architecture(
                soc, architecture, ate, problem.probe_station, config
            )
            candidate = run_step2(step1, objective.name)
        except InfeasibleDesignError as error:
            first_error = first_error or error
            continue
        rank = (
            objective.signed(candidate.optimal_throughput),
            -step1.channels_per_site,
            -step1.test_time_cycles,
        )
        if best_rank is None or rank > best_rank:
            best, best_rank = candidate, rank

    if best is None:
        raise first_error or InfeasibleDesignError(
            f"SOC {soc.name!r} cannot be tested on {ate.channels} channels at depth {ate.depth}"
        )
    return best


@register_solver(
    "simulated_annealing",
    title="Simulated annealing over channel-group partitions",
    description="Metropolis walk over module reassignment, group swap, "
    "width and site-count moves with geometric cooling; seeded and "
    "deterministic, never worse than goel05",
)
def solve_simulated_annealing(problem: TestInfraProblem) -> TwoStepResult:
    """Anneal with knobs taken from the problem's solver options."""
    return solve_annealed(problem, **_parse_knobs(problem))
