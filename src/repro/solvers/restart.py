"""Randomized multi-start greedy solver backend (``"restart"``).

The paper's greedy assignment is sensitive to its module processing order.
This backend re-runs the same greedy placement under shuffled module orders
and keeps the best full two-step outcome.  The first attempt always uses
the paper's deterministic order, so the backend is never worse than
``"goel05"``; the remaining attempts draw their shuffles from one
:class:`repro.core.rng.DeterministicRng` stream seeded with
:data:`DEFAULT_SEED`, which makes repeated runs -- including parallel
``Engine.run_batch`` workers, which re-execute the solver from scratch in
their own process -- bit-identical.
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.objectives.registry import get_objective
from repro.core.rng import DeterministicRng
from repro.optimize.result import TwoStepResult
from repro.optimize.step1 import step1_result_from_architecture
from repro.optimize.step2 import run_step2
from repro.solvers.problem import TestInfraProblem
from repro.solvers.registry import register_solver
from repro.tam.assignment import assign_modules, minimum_widths, paper_module_order

#: Number of greedy attempts: the paper order plus this many random shuffles.
DEFAULT_RESTARTS = 12

#: Seed of the shuffle stream; fixed so every run is bit-identical.
DEFAULT_SEED = 20050307


def solve_with_restarts(
    problem: TestInfraProblem,
    restarts: int = DEFAULT_RESTARTS,
    seed: int = DEFAULT_SEED,
) -> TwoStepResult:
    """Multi-start greedy search over shuffled module orders.

    Parameters
    ----------
    problem:
        The problem to solve.
    restarts:
        Number of random shuffles tried after the paper's deterministic
        order (so ``restarts + 1`` greedy runs in total).
    seed:
        Seed of the deterministic shuffle stream.

    Raises
    ------
    InfeasibleDesignError
        When no attempted order yields a feasible design.
    """
    if restarts < 0:
        raise ConfigurationError(f"restart count must be non-negative, got {restarts}")
    soc, ate, config = problem.soc, problem.ate, problem.config
    objective = get_objective(problem.objective)
    width_budget = problem.width_budget
    if width_budget <= 0:
        raise ConfigurationError(f"ATE must provide at least 2 channels, got {ate.channels}")
    widths = minimum_widths(soc, ate.depth, width_budget)

    rng = DeterministicRng(seed)
    orders = [paper_module_order(soc, widths)]
    for _ in range(restarts):
        orders.append(tuple(rng.shuffled(soc.modules)))

    best: TwoStepResult | None = None
    best_rank: tuple[float, int, int] | None = None
    first_error: InfeasibleDesignError | None = None
    for order in orders:
        try:
            architecture = assign_modules(soc, order, widths, ate.channels, ate.depth)
            step1 = step1_result_from_architecture(
                soc, architecture, ate, problem.probe_station, config
            )
            candidate = run_step2(step1, objective.name)
        except InfeasibleDesignError as error:
            first_error = first_error or error
            continue
        rank = (
            objective.signed(candidate.optimal_throughput),
            -step1.channels_per_site,
            -step1.test_time_cycles,
        )
        if best_rank is None or rank > best_rank:
            best, best_rank = candidate, rank

    if best is None:
        raise first_error or InfeasibleDesignError(
            f"SOC {soc.name!r} cannot be tested on {ate.channels} channels at depth {ate.depth}"
        )
    return best


@register_solver(
    "restart",
    title="Randomized multi-start greedy (deterministic seed)",
    description="Re-runs the greedy assignment over shuffled module orders "
    "and keeps the best design; never worse than goel05",
)
def solve_restart(problem: TestInfraProblem) -> TwoStepResult:
    """Solve with the default restart budget and seed."""
    return solve_with_restarts(problem)
