"""Registry of solver backends for the test-infrastructure problem.

Mirrors the experiment registry (:mod:`repro.experiments.registry`): each
backend module registers a ``solve(problem) -> TwoStepResult`` callable with
:func:`register_solver`, and every layer above -- the compatibility shim in
:mod:`repro.optimize.two_step`, the scenario :class:`~repro.api.engine.
Engine` and the CLI -- looks backends up by name instead of hard-wiring the
paper's heuristic.  The built-in backends:

* ``"goel05"`` -- the paper's greedy two-step algorithm (the default);
* ``"exhaustive"`` -- exact enumeration over channel-group partitions for
  small module counts, the correctness oracle;
* ``"restart"`` -- randomized multi-start greedy, deterministically seeded
  through :mod:`repro.core.rng`;
* ``"simulated_annealing"`` -- Metropolis local search over channel-group
  partitions driven by the shared evaluation kernel, with solver-option
  knobs for the temperature schedule.

Backend modules are imported lazily on first lookup (they depend on the
optimisation stack, which itself depends on this registry through the
compatibility shim), so importing this module never creates a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.exceptions import ConfigurationError
from repro.solvers.problem import SolverSolution, TestInfraProblem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimize.result import TwoStepResult

#: ``backend(problem) -> TwoStepResult``: solve one problem.
SolverBackend = Callable[[TestInfraProblem], Any]

#: Name of the backend used when no solver is specified anywhere.
DEFAULT_SOLVER = "goel05"


@dataclass(frozen=True)
class Solver:
    """One registered solver backend.

    ``title`` is the short label, ``description`` the one-line explanation
    CLI listings print next to it.
    """

    name: str
    title: str
    backend: SolverBackend
    description: str = ""

    def solve(self, problem: TestInfraProblem) -> SolverSolution:
        """Solve ``problem`` and wrap the outcome as a :class:`SolverSolution`."""
        return SolverSolution(problem=problem, solver=self.name, result=self.backend(problem))


_REGISTRY: dict[str, Solver] = {}


def register_solver(
    name: str, title: str, description: str = ""
) -> Callable[[SolverBackend], SolverBackend]:
    """Function decorator registering a solver backend under ``name``.

    ``description`` is the one-line explanation shown by ``repro solvers``.

    >>> @register_solver("demo", title="Demo backend")   # doctest: +SKIP
    ... def _solve_demo(problem):
    ...     ...
    """
    if not name:
        raise ConfigurationError("solver name must be non-empty")

    def decorator(backend: SolverBackend) -> SolverBackend:
        if name in _REGISTRY:
            raise ConfigurationError(f"solver {name!r} is already registered")
        _REGISTRY[name] = Solver(
            name=name, title=title, backend=backend, description=description
        )
        return backend

    return decorator


def _ensure_backends() -> None:
    """Import the built-in backend modules (self-registration side effect)."""
    import repro.solvers.exhaustive  # noqa: F401
    import repro.solvers.goel05  # noqa: F401
    import repro.solvers.restart  # noqa: F401
    import repro.solvers.simulated_annealing  # noqa: F401


def get_solver(name: str) -> Solver:
    """Look a solver backend up by name.

    Raises
    ------
    ConfigurationError
        When no backend of that name is registered.
    """
    _ensure_backends()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown solver {name!r}; registered: {known}")
    return _REGISTRY[name]


def solver_names() -> tuple[str, ...]:
    """Names of all registered solver backends, sorted."""
    _ensure_backends()
    return tuple(sorted(_REGISTRY))


def list_solvers() -> tuple[Solver, ...]:
    """All registered solver backends, sorted by name."""
    return tuple(_REGISTRY[name] for name in solver_names())


def solve(name: str, problem: TestInfraProblem) -> SolverSolution:
    """Solve ``problem`` with the named backend."""
    return get_solver(name).solve(problem)
