"""Shared memoized evaluation kernel for ``(design, sites)`` points.

Before this module existed, :mod:`repro.optimize.step2`,
:mod:`repro.experiments.figure7` and the throughput call sites each
re-derived the same evaluation -- build the :class:`~repro.multisite.
cost_model.TestTiming` from an architecture and a test cell, bundle it into
a :class:`~repro.multisite.throughput.MultiSiteScenario`, and evaluate the
configured objective.  The kernel centralises that derivation and memoises
it on the ``(architecture, sites, ate, probe station, config)`` tuple, so a
Step-2 sweep (and every solver backend that sweeps candidate architectures,
like the multi-start solver) computes each point exactly once per process.

All inputs are frozen dataclasses, so the memoisation is a plain
:func:`functools.lru_cache`; :func:`cache_info` / :func:`clear_cache`
expose it for tests and diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.ate.probe_station import ProbeStation
from repro.ate.spec import AteSpec
from repro.multisite.cost_model import TestTiming
from repro.multisite.throughput import MultiSiteScenario
from repro.optimize.config import Objective, OptimizationConfig
from repro.tam.architecture import TestArchitecture

#: Upper bound on memoised points; generous for every sweep in the repo
#: while keeping a runaway synthetic sweep from exhausting memory.
EVALUATE_CACHE_SIZE = 65_536


def timing_for(architecture: TestArchitecture, ate: AteSpec, probe_station: ProbeStation) -> TestTiming:
    """Touchdown timing of ``architecture`` on the given test cell."""
    return TestTiming(
        index_time_s=probe_station.index_time_s,
        contact_test_time_s=probe_station.contact_test_time_s,
        manufacturing_test_time_s=ate.cycles_to_seconds(architecture.test_time_cycles),
    )


def scenario_for(
    architecture: TestArchitecture,
    sites: int,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
) -> MultiSiteScenario:
    """Build the multi-site throughput scenario for a design at a site count."""
    return MultiSiteScenario(
        sites=sites,
        timing=timing_for(architecture, ate, probe_station),
        channels_per_site=architecture.ate_channels,
        contact_yield=probe_station.contact_yield,
        manufacturing_yield=config.manufacturing_yield,
    )


def objective_value(scenario: MultiSiteScenario, config: OptimizationConfig) -> float:
    """Evaluate the configured objective (``D_th`` or ``D^u_th``) for a scenario."""
    if config.objective is Objective.UNIQUE_THROUGHPUT:
        return scenario.unique_throughput(abort_on_fail=config.abort_on_fail)
    return scenario.throughput(abort_on_fail=config.abort_on_fail)


@dataclass(frozen=True)
class EvaluatedPoint:
    """One memoised evaluation of a design at a site count."""

    architecture: TestArchitecture
    sites: int
    scenario: MultiSiteScenario
    objective: float


@lru_cache(maxsize=EVALUATE_CACHE_SIZE)
def evaluate_point(
    architecture: TestArchitecture,
    sites: int,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
) -> EvaluatedPoint:
    """Evaluate one ``(design, sites)`` point, memoised per process.

    The returned :class:`EvaluatedPoint` carries both the scenario (timing,
    yields) and the objective value, so callers never rebuild either.
    """
    scenario = scenario_for(architecture, sites, ate, probe_station, config)
    return EvaluatedPoint(
        architecture=architecture,
        sites=sites,
        scenario=scenario,
        objective=objective_value(scenario, config),
    )


def cache_info():
    """Hit/miss statistics of the evaluation kernel's memo cache."""
    return evaluate_point.cache_info()


def clear_cache() -> None:
    """Drop every memoised evaluation (used by tests)."""
    evaluate_point.cache_clear()
