"""Shared memoized evaluation kernel for ``(design, sites)`` points.

Before this module existed, :mod:`repro.optimize.step2`,
:mod:`repro.experiments.figure7` and the throughput call sites each
re-derived the same evaluation -- build the :class:`~repro.multisite.
cost_model.TestTiming` from an architecture and a test cell, bundle it into
a :class:`~repro.multisite.throughput.MultiSiteScenario`, and evaluate the
configured objective.  The kernel centralises that derivation and memoises
it on the ``(architecture, sites, ate, probe station, config)`` tuple, so a
Step-2 sweep (and every solver backend that sweeps candidate architectures,
like the multi-start solver) computes each point exactly once per process.

Since the objective became a registry axis (:mod:`repro.objectives`), the
kernel also owns objective evaluation: a point is memoised on the
``(architecture, sites, ate, probe station, config, objective)`` tuple, so
every solver backend optimises any registered objective through the same
cache.  All inputs are frozen dataclasses plus the objective's registry
name, so the memoisation is a plain :func:`functools.lru_cache`;
:func:`cache_info` / :func:`clear_cache` expose it for tests and
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.ate.probe_station import ProbeStation
from repro.ate.spec import AteSpec
from repro.multisite.cost_model import TestTiming
from repro.multisite.throughput import MultiSiteScenario
from repro.objectives.registry import DEFAULT_OBJECTIVE, get_objective
from repro.optimize.config import Objective, OptimizationConfig
from repro.tam.architecture import TestArchitecture

#: Upper bound on memoised points; generous for every sweep in the repo
#: while keeping a runaway synthetic sweep from exhausting memory.
EVALUATE_CACHE_SIZE = 65_536


def timing_for(architecture: TestArchitecture, ate: AteSpec, probe_station: ProbeStation) -> TestTiming:
    """Touchdown timing of ``architecture`` on the given test cell."""
    return TestTiming(
        index_time_s=probe_station.index_time_s,
        contact_test_time_s=probe_station.contact_test_time_s,
        manufacturing_test_time_s=ate.cycles_to_seconds(architecture.test_time_cycles),
    )


def scenario_for(
    architecture: TestArchitecture,
    sites: int,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
) -> MultiSiteScenario:
    """Build the multi-site throughput scenario for a design at a site count."""
    return MultiSiteScenario(
        sites=sites,
        timing=timing_for(architecture, ate, probe_station),
        channels_per_site=architecture.ate_channels,
        contact_yield=probe_station.contact_yield,
        manufacturing_yield=config.manufacturing_yield,
    )


def objective_value(scenario: MultiSiteScenario, config: OptimizationConfig) -> float:
    """Evaluate the classic throughput objective (``D_th`` or ``D^u_th``).

    Kept as the registry-free shortcut for call sites that explicitly want
    the paper's throughput numbers (figure baselines, reports); solvers go
    through :func:`evaluate_point`, which dispatches on the registered
    objective name instead.
    """
    if config.objective is Objective.UNIQUE_THROUGHPUT:
        return scenario.unique_throughput(abort_on_fail=config.abort_on_fail)
    return scenario.throughput(abort_on_fail=config.abort_on_fail)


@dataclass(frozen=True)
class EvaluatedPoint:
    """One memoised evaluation of a design at a site count.

    ``objective`` is the raw value of the evaluated objective; ``score`` is
    its :meth:`~repro.objectives.registry.ObjectiveSpec.signed` form, which
    solvers maximise regardless of the objective's sense.
    """

    architecture: TestArchitecture
    sites: int
    scenario: MultiSiteScenario
    objective: float
    score: float = 0.0


@lru_cache(maxsize=EVALUATE_CACHE_SIZE)
def evaluate_point(
    architecture: TestArchitecture,
    sites: int,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
    objective: str = DEFAULT_OBJECTIVE,
) -> EvaluatedPoint:
    """Evaluate one ``(design, sites)`` point, memoised per process.

    ``objective`` names a registered objective (:mod:`repro.objectives`);
    the default is the paper's throughput.  The returned
    :class:`EvaluatedPoint` carries the scenario (timing, yields), the raw
    objective value and its sense-signed score, so callers never rebuild
    any of them.
    """
    scenario = scenario_for(architecture, sites, ate, probe_station, config)
    spec = get_objective(objective)
    value = spec.value(scenario, config, ate)
    return EvaluatedPoint(
        architecture=architecture,
        sites=sites,
        scenario=scenario,
        objective=value,
        score=spec.signed(value),
    )


def cache_info():
    """Hit/miss statistics of the evaluation kernel's memo cache."""
    return evaluate_point.cache_info()


def clear_cache() -> None:
    """Drop every memoised evaluation (used by tests)."""
    evaluate_point.cache_clear()
