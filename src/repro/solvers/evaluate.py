"""Shared memoized evaluation kernel for ``(design, sites)`` points.

Before this module existed, :mod:`repro.optimize.step2`,
:mod:`repro.experiments.figure7` and the throughput call sites each
re-derived the same evaluation -- build the :class:`~repro.multisite.
cost_model.TestTiming` from an architecture and a test cell, bundle it into
a :class:`~repro.multisite.throughput.MultiSiteScenario`, and evaluate the
configured objective.  The kernel centralises that derivation and memoises
it on the ``(architecture, sites, ate, probe station, config, objective)``
tuple, so a Step-2 sweep (and every solver backend that sweeps candidate
architectures, like the multi-start solver) computes each point exactly
once per process.

The kernel is *batch-first*: :func:`evaluate_points` evaluates a whole
Step-2 site-count range in one pass -- the per-site channel budgets are
precomputed, the channel redistribution is *incremental* (each site count
widens the previous site count's architecture instead of rebuilding from
the Step-1 design; bit-identical because the greedy bottleneck widening
only depends on the current state and the budgets grow monotonically as
sites are given up), and the objective math runs vectorised over the
candidate site counts through the numpy array forms in
:mod:`repro.multisite.batch` when numpy is available.  The scalar
:func:`evaluate_point` and the single-move :func:`evaluate_move` (the API a
simulated-annealing / local-search backend needs) share the same memo, so
every entry point sees the same cache.

All memo-key inputs are frozen dataclasses with cached structural
fingerprints (:mod:`repro.core.fingerprint`) plus the objective's registry
name, so lookups hash precomputed ints.  The memo is a bounded LRU;
:func:`cache_info` / :func:`clear_cache` expose it (hits, misses and batch
statistics) for tests, the bench telemetry and diagnostics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.ate.probe_station import ProbeStation
from repro.ate.spec import AteSpec
from repro.core.exceptions import ConfigurationError
from repro.multisite.cost_model import TestTiming
from repro.multisite.throughput import MultiSiteScenario
from repro.objectives.registry import DEFAULT_OBJECTIVE, ObjectiveSpec, get_objective
from repro.optimize.channels import max_channels_per_site
from repro.optimize.config import Objective, OptimizationConfig
from repro.soc.module import Module
from repro.tam.architecture import TestArchitecture
from repro.tam.redistribution import widen_to_channel_budget

try:  # numpy powers the vectorised objective math; scalar fallback without.
    from repro.multisite.batch import ScenarioBatch
except ImportError:  # pragma: no cover - exercised only without numpy
    ScenarioBatch = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimize.result import Step1Result

#: Upper bound on memoised points; generous for every sweep in the repo
#: while keeping a runaway synthetic sweep from exhausting memory.
EVALUATE_CACHE_SIZE = 65_536


def timing_for(architecture: TestArchitecture, ate: AteSpec, probe_station: ProbeStation) -> TestTiming:
    """Touchdown timing of ``architecture`` on the given test cell."""
    return TestTiming(
        index_time_s=probe_station.index_time_s,
        contact_test_time_s=probe_station.contact_test_time_s,
        manufacturing_test_time_s=ate.cycles_to_seconds(architecture.test_time_cycles),
    )


def scenario_for(
    architecture: TestArchitecture,
    sites: int,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
) -> MultiSiteScenario:
    """Build the multi-site throughput scenario for a design at a site count."""
    return MultiSiteScenario(
        sites=sites,
        timing=timing_for(architecture, ate, probe_station),
        channels_per_site=architecture.ate_channels,
        contact_yield=probe_station.contact_yield,
        manufacturing_yield=config.manufacturing_yield,
    )


def objective_value(scenario: MultiSiteScenario, config: OptimizationConfig) -> float:
    """Evaluate the classic throughput objective (``D_th`` or ``D^u_th``).

    Kept as the registry-free shortcut for call sites that explicitly want
    the paper's throughput numbers (figure baselines, reports); solvers go
    through :func:`evaluate_point`, which dispatches on the registered
    objective name instead.
    """
    if config.objective is Objective.UNIQUE_THROUGHPUT:
        return scenario.unique_throughput(abort_on_fail=config.abort_on_fail)
    return scenario.throughput(abort_on_fail=config.abort_on_fail)


@dataclass(frozen=True)
class EvaluatedPoint:
    """One memoised evaluation of a design at a site count.

    ``objective`` is the raw value of the evaluated objective; ``score`` is
    its :meth:`~repro.objectives.registry.ObjectiveSpec.signed` form, which
    solvers maximise regardless of the objective's sense.  Kernel-produced
    points additionally carry the test cell and config they were evaluated
    under plus the objective's registry name, so incremental re-evaluation
    (:func:`evaluate_move`) needs nothing but the point itself.
    """

    architecture: TestArchitecture
    sites: int
    scenario: MultiSiteScenario
    objective: float
    score: float = 0.0
    ate: AteSpec | None = None
    probe_station: ProbeStation | None = None
    config: OptimizationConfig | None = None
    objective_name: str = DEFAULT_OBJECTIVE


@dataclass(frozen=True)
class KernelCacheInfo:
    """Statistics of the kernel memo, in the :func:`functools.lru_cache`
    shape (``hits`` / ``misses`` / ``maxsize`` / ``currsize``) plus the
    batch-entry counters the bench telemetry reports.

    ``batch_calls`` counts :func:`evaluate_batch` / :func:`evaluate_points`
    invocations, ``batch_points`` the points they requested (hits and
    misses alike) and ``max_batch`` the largest single batch.
    """

    hits: int
    misses: int
    maxsize: int
    currsize: int
    batch_calls: int = 0
    batch_points: int = 0
    max_batch: int = 0


_memo: "OrderedDict[tuple, EvaluatedPoint]" = OrderedDict()
_hits = 0
_misses = 0
_batch_calls = 0
_batch_points = 0
_max_batch = 0


def _memo_get(key: tuple) -> EvaluatedPoint | None:
    """Memo lookup counting a hit or a miss (hits refresh LRU recency)."""
    global _hits, _misses
    point = _memo.get(key)
    if point is not None:
        _memo.move_to_end(key)
        _hits += 1
    else:
        _misses += 1
    return point


def _memo_put(key: tuple, point: EvaluatedPoint) -> None:
    _memo[key] = point
    if len(_memo) > EVALUATE_CACHE_SIZE:
        _memo.popitem(last=False)


def _compute_point(
    architecture: TestArchitecture,
    sites: int,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
    spec: ObjectiveSpec,
    value: float | None = None,
) -> EvaluatedPoint:
    """Build the :class:`EvaluatedPoint` for one configuration.

    ``value`` is passed in when the objective was already evaluated by the
    vectorised batch path; otherwise the scalar backend runs here.
    """
    scenario = scenario_for(architecture, sites, ate, probe_station, config)
    if value is None:
        value = spec.value(scenario, config, ate)
    return EvaluatedPoint(
        architecture=architecture,
        sites=sites,
        scenario=scenario,
        objective=value,
        score=spec.signed(value),
        ate=ate,
        probe_station=probe_station,
        config=config,
        objective_name=spec.name,
    )


def evaluate_point(
    architecture: TestArchitecture,
    sites: int,
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
    objective: str = DEFAULT_OBJECTIVE,
) -> EvaluatedPoint:
    """Evaluate one ``(design, sites)`` point, memoised per process.

    ``objective`` names a registered objective (:mod:`repro.objectives`);
    the default is the paper's throughput.  The returned
    :class:`EvaluatedPoint` carries the scenario (timing, yields), the raw
    objective value and its sense-signed score, so callers never rebuild
    any of them.
    """
    key = (architecture, sites, ate, probe_station, config, objective)
    point = _memo_get(key)
    if point is None:
        point = _compute_point(
            architecture, sites, ate, probe_station, config, get_objective(objective)
        )
        _memo_put(key, point)
    return point


def _batch_objective_values(
    pairs: Sequence[tuple[TestArchitecture, int]],
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
    spec: ObjectiveSpec,
) -> list[float] | None:
    """Vectorised objective values for ``pairs``, or ``None`` to go scalar.

    The array path is taken when numpy is importable, the objective
    registered an array backend, and the batch is big enough to amortise
    the array construction.  Validation of the shared test-cell parameters
    happens once, in the :class:`~repro.multisite.batch.ScenarioBatch`
    constructor, instead of once per point.
    """
    if ScenarioBatch is None or spec.array_backend is None or len(pairs) < 2:
        return None
    import numpy as np

    batch = ScenarioBatch(
        sites=np.array([sites for _, sites in pairs], dtype=np.int64),
        channels_per_site=np.array(
            [architecture.ate_channels for architecture, _ in pairs], dtype=np.int64
        ),
        manufacturing_test_time_s=np.array(
            [
                ate.cycles_to_seconds(architecture.test_time_cycles)
                for architecture, _ in pairs
            ],
            dtype=np.float64,
        ),
        index_time_s=probe_station.index_time_s,
        contact_test_time_s=probe_station.contact_test_time_s,
        contact_yield=probe_station.contact_yield,
        manufacturing_yield=config.manufacturing_yield,
    )
    return [float(value) for value in spec.value_batch(batch, config, ate)]


def evaluate_batch(
    pairs: Iterable[tuple[TestArchitecture, int]],
    ate: AteSpec,
    probe_station: ProbeStation,
    config: OptimizationConfig,
    objective: str = DEFAULT_OBJECTIVE,
) -> tuple[EvaluatedPoint, ...]:
    """Evaluate many ``(architecture, sites)`` pairs against one test cell.

    Memo hits are served straight from the cache; the misses are evaluated
    together through the objective's vectorised array backend (scalar
    fallback when numpy or the array form is unavailable).  Results come
    back in input order and are bit-identical to per-point
    :func:`evaluate_point` calls -- the array forms perform the same
    IEEE-754 double operations in the same order, which the kernel
    equivalence test suite pins.
    """
    global _batch_calls, _batch_points, _max_batch
    pairs = list(pairs)
    _batch_calls += 1
    _batch_points += len(pairs)
    if len(pairs) > _max_batch:
        _max_batch = len(pairs)

    spec = get_objective(objective)
    results: list[EvaluatedPoint | None] = [None] * len(pairs)
    keys: list[tuple] = []
    missing: list[int] = []
    for position, (architecture, sites) in enumerate(pairs):
        key = (architecture, sites, ate, probe_station, config, objective)
        keys.append(key)
        point = _memo_get(key)
        if point is None:
            missing.append(position)
        else:
            results[position] = point

    if missing:
        missing_pairs = [pairs[position] for position in missing]
        values = _batch_objective_values(missing_pairs, ate, probe_station, config, spec)
        if values is None:
            values = [None] * len(missing)  # type: ignore[list-item]
        for position, value in zip(missing, values):
            architecture, sites = pairs[position]
            point = _compute_point(
                architecture, sites, ate, probe_station, config, spec, value
            )
            _memo_put(keys[position], point)
            results[position] = point
    return tuple(results)  # type: ignore[arg-type]


def evaluate_points(
    step1: "Step1Result",
    sites_range: Iterable[int],
    objective: str = DEFAULT_OBJECTIVE,
) -> tuple[EvaluatedPoint, ...]:
    """Evaluate a whole Step-2 site-count range in one pass.

    For every candidate site count the per-site channel budget follows from
    the ATE channel count and the broadcast mode; the Step-1 architecture
    is widened to that budget by bottleneck redistribution.  The widening
    is *incremental*: site counts are processed in descending order, and
    each architecture is widened from the previous (smaller-budget) one
    rather than rebuilt from the Step-1 design.  This is bit-identical to
    the from-scratch widening because the greedy one-wire-at-a-time
    bottleneck choice depends only on the current architecture, and the
    channel budgets grow monotonically as sites are given up -- widening to
    budget ``b1`` and then to ``b2 >= b1`` performs exactly the wire
    assignments of widening straight to ``b2``.

    Returns one :class:`EvaluatedPoint` per requested site count, in input
    order.  Raises :class:`~repro.core.exceptions.ConfigurationError` for
    site counts outside ``[1, step1.max_sites]``.
    """
    site_counts = list(sites_range)
    for sites in site_counts:
        if sites <= 0:
            raise ConfigurationError(f"site count must be positive, got {sites}")
        if sites > step1.max_sites:
            raise ConfigurationError(
                f"site count {sites} exceeds the Step-1 maximum of {step1.max_sites}"
            )

    channels = step1.ate.channels
    broadcast = step1.config.broadcast
    architectures: dict[int, TestArchitecture] = {}
    current = step1.architecture
    for sites in sorted(set(site_counts), reverse=True):
        budget = max_channels_per_site(channels, sites, broadcast)
        current = widen_to_channel_budget(current, budget)
        architectures[sites] = current

    pairs = [(architectures[sites], sites) for sites in site_counts]
    points = evaluate_batch(pairs, step1.ate, step1.probe_station, step1.config, objective)
    # A memo hit may return a point computed from an *equal but distinct*
    # architecture earlier in the process.  Rebind such points to this
    # call's architectures so every point of one Step-2 result shares the
    # caller's object graph (the store codec's interning relies on the
    # SOC appearing once per result, by identity).
    return tuple(
        point
        if point.architecture is architecture
        else replace(point, architecture=architecture)
        for point, (architecture, _) in zip(points, pairs)
    )


def evaluate_move(point: EvaluatedPoint, module: Module | str, delta: int) -> EvaluatedPoint:
    """Incrementally re-evaluate ``point`` after one module-width move.

    This is the primitive a simulated-annealing / local-search backend
    needs: change the width of the channel group that tests ``module`` by
    ``delta`` TAM wires and re-evaluate the point.  Only the resized
    group's timing is recomputed -- the architecture update shares the
    untouched :class:`~repro.tam.channel_group.ChannelGroup` objects, whose
    fills are cached -- and the result lands in (and is served from) the
    same memo as every other kernel entry point, so undoing a move is a
    cache hit.

    ``module`` is a :class:`~repro.soc.module.Module` or a module name;
    ``delta`` may be negative.  The move is purely structural: the caller
    owns channel-budget feasibility of the resulting architecture (the
    returned point's ``architecture.ate_channels`` says what it now needs).

    Raises
    ------
    ConfigurationError
        If the point was built by hand without its test cell, or the move
        would make the group width non-positive.
    KeyError
        If ``module`` is not assigned to any group of the architecture.
    """
    if point.ate is None or point.probe_station is None or point.config is None:
        raise ConfigurationError(
            "evaluate_move needs a kernel-produced point carrying its test cell"
        )
    name = module.name if isinstance(module, Module) else module
    group = point.architecture.group_of(name)
    width = group.width + delta
    if width <= 0:
        raise ConfigurationError(
            f"move of {delta:+d} wires would give group {group.index} "
            f"width {width}; widths must stay positive"
        )
    if delta == 0:
        return point
    moved = point.architecture.with_group_width(group.index, width)
    return evaluate_point(
        moved, point.sites, point.ate, point.probe_station, point.config, point.objective_name
    )


def cache_info() -> KernelCacheInfo:
    """Hit/miss and batch statistics of the evaluation kernel's memo cache."""
    return KernelCacheInfo(
        hits=_hits,
        misses=_misses,
        maxsize=EVALUATE_CACHE_SIZE,
        currsize=len(_memo),
        batch_calls=_batch_calls,
        batch_points=_batch_points,
        max_batch=_max_batch,
    )


def drop_memo() -> None:
    """Drop every memoised evaluation but keep the cumulative counters.

    The bench runner uses this to force a cold compute leg without making
    the process-wide counter deltas go backwards mid-report.
    """
    _memo.clear()


def clear_cache() -> None:
    """Drop every memoised evaluation and reset the counters (used by tests)."""
    global _hits, _misses, _batch_calls, _batch_points, _max_batch
    _memo.clear()
    _hits = _misses = _batch_calls = _batch_points = _max_batch = 0
