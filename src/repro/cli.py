"""Command-line interface.

Installed as ``repro-multisite`` (see ``setup.py``) and runnable as
``python -m repro``.  Sub-commands:

* ``design``     -- run the two-step algorithm for one SOC / ATE and print the
  resulting infrastructure and throughput (``--solver`` picks the backend,
  ``--objective`` what it optimises);
* ``sweep``      -- stream a scenario grid (SOCs x channels x depths x
  broadcast x sites x solvers x objectives) as JSONL, with sharding
  (``--shard I/N``) and store-backed resumability (``--store`` /
  ``--resume``);
* ``analyze``    -- columnar analysis of a result store or sweep JSONL
  (group-by summaries, best-per-SOC, 2-D Pareto fronts);
* ``benchmarks`` -- list the catalog SOCs (ITC'02 benchmarks, ``pnx8550``,
  the synthetic family pattern);
* ``solvers``    -- list the registered solver backends;
* ``objectives`` -- list the registered optimisation objectives;
* ``store``      -- inspect and maintain a persistent result store
  (``store info``, ``store migrate`` to the packed backend,
  ``store compact``);
* ``serve``      -- run the campaign service daemon: lease sweep shards to
  workers over HTTP/JSON and collect their records into one store;
* ``work``       -- the matching worker loop: lease shards from a
  ``--server URL``, compute locally, upload records;
* ``bench``      -- time experiments/solvers/sweeps and write ``BENCH_<tag>.json``
  (``--compare PREV.json`` prints a regression summary;
  ``--fail-on-regression PCT`` turns it into a CI ratchet);
* ``all``        -- regenerate the full experiment report (slow);
* one sub-command per registered experiment (``table1``, ``figure5``,
  ``figure6``, ``figure7``, ``economics``, ``ablation``,
  ``solver_comparison``, ...).

Result-producing sub-commands accept ``--store DIR``: scenario results are
then read from and written to a persistent
:class:`~repro.store.ResultStore` in that directory, so repeated
invocations skip already-solved operating points.  Without the flag every
run is computed from scratch (and ``python -m repro all`` output stays
byte-identical to earlier releases).

The experiment sub-commands are generated from the experiment registry
(:mod:`repro.experiments.registry`), so registering a new experiment adds
its CLI command automatically; ``design``, ``bench`` and ``all`` drive the
scenario :class:`~repro.api.engine.Engine` directly.  The full reference
with examples lives in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Sequence

from repro.analysis import (
    best_table,
    group_summary,
    load_records,
    pareto_table,
    records_table,
)
from repro.analysis.analyze import GROUP_COLUMNS, METRICS
from repro.api.engine import Engine
from repro.api.grid import Grid, SweepGrid
from repro.api.scenario import Scenario
from repro.api.testcell import TestCell, reference_test_cell
from repro.ate.probe_station import ProbeStation
from repro.ate.spec import AteSpec
from repro.bench.runner import (
    compare_reports,
    find_regressions,
    format_profile,
    load_report,
    run_bench,
    summarize_report,
    sweep_digest,
    write_report,
)
from repro.core.exceptions import ConfigurationError, ReproError
from repro.core.units import mega_vectors
from repro.experiments.registry import list_experiments, render_experiment, run_experiment
from repro.experiments.runner import run_all_experiments
from repro.itc02.parser import parse_soc_file
from repro.itc02.registry import list_benchmarks
from repro.objectives.registry import DEFAULT_OBJECTIVE, get_objective, list_objectives
from repro.optimize.config import Objective, OptimizationConfig
from repro.service.client import ServiceClient
from repro.service.protocol import GridSpec
from repro.service.server import DEFAULT_LEASE_TTL, start_server
from repro.service.worker import run_worker
from repro.soc.catalog import SYNTHETIC_PATTERN, list_catalog
from repro.soc.soc import Soc
from repro.solvers.registry import DEFAULT_SOLVER, list_solvers
from repro.store.factory import is_packed, migrate_store, open_store
from repro.store.packed import PackedResultStore
from repro.store.result_store import STORE_FORMAT, ResultStore

#: Sub-commands with bespoke handlers; every other sub-command is generated
#: from (and dispatched through) the experiment registry.
_BUILTIN_COMMANDS = (
    "design",
    "sweep",
    "analyze",
    "benchmarks",
    "solvers",
    "objectives",
    "store",
    "serve",
    "work",
    "bench",
    "all",
)


def experiment_commands() -> tuple[str, ...]:
    """CLI sub-commands generated from the experiment registry.

    A registered experiment whose name collides with a builtin sub-command
    is excluded (the builtin wins), so a bad registration can never break
    argument parsing for the whole CLI.
    """
    return tuple(
        experiment.name
        for experiment in list_experiments()
        if experiment.name not in _BUILTIN_COMMANDS
    )


def _store_options() -> argparse.ArgumentParser:
    """Shared ``--store`` option, attached to result-producing sub-commands."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent result-store directory (created when missing); "
        "already-solved scenarios are read from it instead of recomputed",
    )
    return parent


def _engine_from_args(args: argparse.Namespace) -> Engine:
    """Build the engine a sub-command runs through (store-backed with --store).

    The backend (legacy directory or packed) is detected from the store's
    on-disk layout, so every sub-command works over either transparently.
    """
    store = getattr(args, "store", None)
    return Engine(store=open_store(store) if store else None)


def _resolve_soc_argument(spec: str) -> Soc | str:
    """Resolve an SOC argument: a ``.soc`` file path, or a scenario reference.

    Benchmark names and ``pnx8550`` are passed through as strings -- the
    scenario resolves them, so unknown names fail with the registry's error.
    """
    if spec.endswith(".soc"):
        return parse_soc_file(spec)
    return spec


def _add_design_parser(
    subparsers: argparse._SubParsersAction, store_options: argparse.ArgumentParser
) -> None:
    parser = subparsers.add_parser(
        "design",
        parents=[store_options],
        help="design the test infrastructure and optimal multi-site for one SOC",
    )
    parser.add_argument("soc", help="benchmark name, 'pnx8550', or path to a .soc file")
    parser.add_argument("--channels", type=int, default=512, help="ATE channels (default 512)")
    parser.add_argument(
        "--depth-m", type=float, default=7.0, help="vector-memory depth in M vectors (default 7)"
    )
    parser.add_argument(
        "--frequency-mhz", type=float, default=5.0, help="test clock in MHz (default 5)"
    )
    parser.add_argument("--index-time", type=float, default=0.5, help="prober index time in s")
    parser.add_argument(
        "--contact-test-time", type=float, default=0.010, help="contact test time in s"
    )
    parser.add_argument("--contact-yield", type=float, default=1.0, help="per-terminal contact yield")
    parser.add_argument("--yield", dest="manufacturing_yield", type=float, default=1.0,
                        help="per-device manufacturing yield")
    parser.add_argument("--broadcast", action="store_true", help="assume stimuli broadcast")
    parser.add_argument("--abort-on-fail", action="store_true", help="use the abort-on-fail test time")
    parser.add_argument(
        "--unique", action="store_true", help="maximise unique throughput (with re-test)"
    )
    parser.add_argument("--max-sites", type=int, default=None, help="equipment limit on sites")
    parser.add_argument(
        "--solver",
        default=DEFAULT_SOLVER,
        help=f"solver backend to use (default {DEFAULT_SOLVER!r}; see 'solvers')",
    )
    parser.add_argument(
        "--objective",
        default=DEFAULT_OBJECTIVE,
        help=f"objective to optimise (default {DEFAULT_OBJECTIVE!r}; see 'objectives')",
    )
    parser.add_argument(
        "--sa-temperature", type=float, default=None, metavar="T",
        help="simulated_annealing: starting temperature (backend default when omitted)",
    )
    parser.add_argument(
        "--sa-cooling", type=float, default=None, metavar="C",
        help="simulated_annealing: geometric cooling factor in (0, 1)",
    )
    parser.add_argument(
        "--sa-moves-per-temp", type=int, default=None, metavar="M",
        help="simulated_annealing: proposed moves per temperature level",
    )
    parser.add_argument(
        "--sa-restarts", type=int, default=None, metavar="R",
        help="simulated_annealing: number of independent annealing chains",
    )
    parser.add_argument("--show-architecture", action="store_true",
                        help="print the full channel-group architecture")


def _design_scenario(args: argparse.Namespace) -> Scenario:
    """Build the scenario the ``design`` sub-command describes."""
    test_cell = TestCell(
        ate=AteSpec(
            channels=args.channels,
            depth=mega_vectors(args.depth_m),
            frequency_hz=args.frequency_mhz * 1e6,
        ),
        probe_station=ProbeStation(
            index_time_s=args.index_time,
            contact_test_time_s=args.contact_test_time,
            contact_yield=args.contact_yield,
        ),
    )
    config = OptimizationConfig(
        broadcast=args.broadcast,
        abort_on_fail=args.abort_on_fail,
        objective=Objective.UNIQUE_THROUGHPUT if args.unique else Objective.THROUGHPUT,
        manufacturing_yield=args.manufacturing_yield,
        max_sites=args.max_sites,
    )
    solver_options = {
        name: value
        for name, value in (
            ("temperature", args.sa_temperature),
            ("cooling", args.sa_cooling),
            ("moves_per_temp", args.sa_moves_per_temp),
            ("restarts", args.sa_restarts),
        )
        if value is not None
    }
    return Scenario(
        soc=_resolve_soc_argument(args.soc),
        test_cell=test_cell,
        config=config,
        solver=args.solver,
        objective=args.objective,
        solver_options=tuple(solver_options.items()),
    )


def _chunk_size(text: str) -> "int | str":
    """Argparse type for ``--chunk``: a positive int or the word ``auto``."""
    if text == "auto":
        return text
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer or 'auto', got {text!r}")
    return value


def _positive_int(text: str) -> int:
    """Argparse type for ``--flush-every``: a positive record count."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def _add_sweep_parser(
    subparsers: argparse._SubParsersAction, store_options: argparse.ArgumentParser
) -> None:
    parser = subparsers.add_parser(
        "sweep",
        parents=[store_options],
        help="stream a scenario grid as JSONL (sharding, store-backed resume)",
    )
    parser.add_argument(
        "socs",
        nargs="+",
        metavar="SOC",
        help="catalog SOC names (benchmark, 'pnx8550', 'synthetic:<seed>:<modules>') "
        "or paths to .soc files",
    )
    parser.add_argument(
        "--channels", type=int, nargs="+", default=None, metavar="N",
        help="ATE channel axis (default: the reference 512)",
    )
    parser.add_argument(
        "--depth-m", dest="depths_m", type=float, nargs="+", default=None, metavar="M",
        help="vector-memory depth axis in M vectors (default: the reference 7)",
    )
    parser.add_argument(
        "--frequency-mhz", type=float, default=5.0, help="test clock in MHz (default 5)"
    )
    parser.add_argument(
        "--broadcast", choices=("off", "on", "both"), default="off",
        help="broadcast axis: off (default), on, or both variants",
    )
    parser.add_argument(
        "--max-sites", type=int, nargs="+", default=None, metavar="N",
        help="site-limit axis (default: unlimited)",
    )
    parser.add_argument(
        "--solvers", nargs="+", default=None, metavar="NAME",
        help=f"solver-backend axis (default {DEFAULT_SOLVER!r}; see 'solvers')",
    )
    parser.add_argument(
        "--objective", dest="objectives", nargs="+", default=None, metavar="NAME",
        help=f"objective axis (default {DEFAULT_OBJECTIVE!r}; see 'objectives')",
    )
    parser.add_argument(
        "--shard", metavar="I/N", default=None,
        help="run only slice I (0-based) of a disjoint N-way grid partition",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the miss fan-out (default: serial)",
    )
    parser.add_argument(
        "--chunk", type=_chunk_size, default="auto", metavar="N|auto",
        help="scenarios per pool task in the miss fan-out (default 'auto': "
        "sized from grid and worker count); results are identical either way",
    )
    parser.add_argument(
        "--flush-every", type=_positive_int, default=None, metavar="N",
        help="buffer N completed records per --store write batch "
        "(default 1: flush every record immediately)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep from its --store directory "
        "(finished scenarios are served from disk, only the rest compute)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default="-",
        help="JSONL destination, one result record per line as it completes "
        "(default '-': stdout)",
    )
    parser.add_argument(
        "--server", metavar="URL", default=None,
        help="submit the grid as a campaign to a running 'repro serve' daemon "
        "instead of sweeping locally (SOCs must be catalog names)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="shard count of a submitted campaign (only with --server; default 1)",
    )


def _parse_shard(spec: str) -> tuple[int, int]:
    """Parse a ``--shard I/N`` argument into ``(index, count)``."""
    index_text, _, count_text = spec.partition("/")
    try:
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ConfigurationError(
            f"malformed shard spec {spec!r}; expected I/N, e.g. 0/4"
        ) from None
    return index, count


def _sweep_grid(args: argparse.Namespace) -> Grid:
    """Build the (possibly sharded) grid the ``sweep`` sub-command runs."""
    cell = reference_test_cell(frequency_mhz=args.frequency_mhz)
    broadcast = {"off": None, "on": True, "both": (False, True)}[args.broadcast]
    grid: Grid = SweepGrid(
        [_resolve_soc_argument(spec) for spec in args.socs],
        cell,
        channels=args.channels,
        depths=(
            [mega_vectors(depth) for depth in args.depths_m]
            if args.depths_m is not None
            else None
        ),
        broadcast=broadcast,
        max_sites=args.max_sites,
        solvers=args.solvers,
        objectives=args.objectives,
    )
    if args.shard is not None:
        grid = grid.shard(*_parse_shard(args.shard))
    return grid


def _sweep_grid_spec(args: argparse.Namespace) -> GridSpec:
    """Build the wire-form grid spec a ``sweep --server`` submission ships.

    The same axes as :func:`_sweep_grid`, but as catalog names and raw
    vector depths -- workers rebuild the grid remotely, so ``.soc`` file
    paths (which only exist locally) are rejected.
    """
    for spec in args.socs:
        if spec.endswith(".soc"):
            raise ConfigurationError(
                f"campaign submission needs catalog SOC names; {spec!r} is a local file"
            )
    if args.shard is not None:
        raise ConfigurationError(
            "--shard slices a local sweep; submitted campaigns use --shards N"
        )
    return GridSpec(
        socs=tuple(args.socs),
        channels=tuple(args.channels) if args.channels is not None else None,
        depths=(
            tuple(mega_vectors(depth) for depth in args.depths_m)
            if args.depths_m is not None
            else None
        ),
        frequency_mhz=args.frequency_mhz,
        broadcast=args.broadcast,
        max_sites=tuple(args.max_sites) if args.max_sites is not None else None,
        solvers=tuple(args.solvers) if args.solvers is not None else None,
        objectives=tuple(args.objectives) if args.objectives is not None else None,
        shards=args.shards,
    )


def _submit_sweep(args: argparse.Namespace) -> int:
    """Submit the sweep grid as a campaign (``sweep --server URL``)."""
    progress = ServiceClient(args.server).submit_campaign(_sweep_grid_spec(args))
    print(
        f"campaign {progress['campaign']} submitted: {progress['total']} scenarios "
        f"in {progress['shards']} shard(s), {progress['solved']} already solved"
    )
    print(f"workers: repro work --server {args.server} --until-idle")
    return 0


@contextlib.contextmanager
def _open_output(spec: str):
    """The sweep's JSONL sink: stdout for ``-``, else the named file."""
    if spec == "-":
        yield sys.stdout, sys.stderr
    else:
        with open(spec, "w", encoding="utf-8") as sink:
            yield sink, sys.stdout


def _run_sweep(args: argparse.Namespace) -> int:
    """Stream the grid: JSONL records as they complete, then a digest line.

    Progress goes to stderr and the summary (counts, digest) to stdout --
    unless the JSONL itself goes to stdout (``--output -``), in which case
    the summary moves to stderr to keep the record stream clean.
    """
    if args.server is not None:
        return _submit_sweep(args)
    if args.shards != 1:
        raise ConfigurationError("--shards shapes a submitted campaign; it needs --server URL")
    if args.resume and not args.store:
        raise ConfigurationError("--resume needs the --store directory to resume from")
    grid = _sweep_grid(args)
    total = len(grid)
    engine = Engine(store=open_store(args.store) if args.store else None)
    results = []
    with _open_output(args.output) as (sink, info_out):
        before = engine.cache_info()
        for record in engine.run_iter(
            grid,
            workers=args.workers,
            chunk_size=args.chunk,
            flush_every=args.flush_every,
        ):
            info = engine.cache_info()
            source = (
                "store"
                if info.store_hits > before.store_hits
                else ("cache" if info.hits > before.hits else "computed")
            )
            before = info
            print(json.dumps(record.to_record(), sort_keys=True), file=sink, flush=True)
            print(
                f"[{len(results) + 1}/{total}] {record.describe()}  [{source}]",
                file=sys.stderr,
                flush=True,
            )
            results.append(record)
        info = engine.cache_info()
        verb = "resumed" if args.resume else "swept"
        print(
            f"{verb} {len(results)} scenarios: {info.misses} computed, "
            f"{info.store_hits} from store, {info.hits} from cache",
            file=info_out,
        )
        print(f"sweep digest: {sweep_digest(results)}", file=info_out)
    return 0


def _add_bench_parser(
    subparsers: argparse._SubParsersAction, store_options: argparse.ArgumentParser
) -> None:
    parser = subparsers.add_parser(
        "bench",
        parents=[store_options],
        help="time experiments, solver backends and the d695 sweep; "
        "write BENCH_<tag>.json",
    )
    parser.add_argument(
        "--tag",
        default=None,
        help="label for the report file BENCH_<tag>.json (default: the package version)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast subset (one experiment, 4-point sweep); what CI runs",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sweep batch (default: serial)",
    )
    parser.add_argument(
        "--chunk",
        type=_chunk_size,
        default="auto",
        metavar="N|auto",
        help="scenarios per pool task in the timed sweeps (default 'auto')",
    )
    parser.add_argument(
        "--flush-every",
        type=_positive_int,
        default=None,
        metavar="N",
        help="records per --store write batch in the timed sweeps (default 1)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        default=".",
        help="directory the report is written to (default: current directory)",
    )
    parser.add_argument(
        "--objective",
        default=DEFAULT_OBJECTIVE,
        help=f"objective the timed sweep optimises (default {DEFAULT_OBJECTIVE!r})",
    )
    parser.add_argument(
        "--compare",
        metavar="PREV.json",
        default=None,
        help="previous BENCH_<tag>.json to print a regression summary against "
        "(e.g. the committed BENCH_seed.json baseline)",
    )
    parser.add_argument(
        "--fail-on-regression",
        metavar="PCT",
        type=float,
        default=None,
        help="exit non-zero when any shared workload is more than PCT percent "
        "slower than the --compare baseline (the CI perf ratchet)",
    )
    parser.add_argument(
        "--noise-floor",
        metavar="MS",
        type=float,
        default=None,
        help="ignore workloads faster than MS milliseconds in both reports when "
        "ratcheting (default 50 ms; timer jitter swamps anything quicker)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the bench under cProfile and print the top functions by "
        "cumulative time",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help="also dump the raw cProfile stats to FILE (implies --profile); "
        "inspect with python -m pstats",
    )


def _run_bench(args: argparse.Namespace) -> int:
    if args.fail_on_regression is not None and not args.compare:
        raise ConfigurationError(
            "--fail-on-regression needs --compare PREV.json to ratchet against"
        )
    if args.noise_floor is not None and args.noise_floor < 0:
        raise ConfigurationError(
            f"--noise-floor must be >= 0 milliseconds, got {args.noise_floor}"
        )
    previous = load_report(args.compare) if args.compare else None

    profiler = None
    if args.profile or args.profile_out:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    report = run_bench(
        tag=args.tag,
        store=args.store,
        smoke=args.smoke,
        workers=args.workers,
        objective=args.objective,
        chunk_size=args.chunk,
        flush_every=args.flush_every,
    )
    if profiler is not None:
        profiler.disable()

    path = write_report(report, args.output)
    print(summarize_report(report))
    if profiler is not None:
        import pstats

        stats = pstats.Stats(profiler)
        print()
        print(format_profile(stats))
        if args.profile_out:
            stats.dump_stats(args.profile_out)
            print(f"profile stats written to {args.profile_out}")
    if previous is not None:
        print()
        print(compare_reports(report, previous))
    print(f"report written to {path}")
    if previous is not None and args.fail_on_regression is not None:
        if args.noise_floor is not None:
            regressions = find_regressions(
                report,
                previous,
                args.fail_on_regression,
                noise_floor_seconds=args.noise_floor / 1000.0,
            )
        else:
            regressions = find_regressions(report, previous, args.fail_on_regression)
        if regressions:
            print(
                f"perf ratchet FAILED: {len(regressions)} workload(s) regressed "
                f"beyond +{args.fail_on_regression:g}%:",
                file=sys.stderr,
            )
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"perf ratchet passed (threshold +{args.fail_on_regression:g}%)")
    return 0


def _run_design(args: argparse.Namespace) -> int:
    scenario = _design_scenario(args)
    outcome = _engine_from_args(args).run(scenario)
    result = outcome.result
    print(scenario.resolve().describe())
    print(scenario.test_cell.ate.describe())
    print(scenario.test_cell.probe_station.describe())
    print()
    print(result.describe())
    if scenario.objective != DEFAULT_OBJECTIVE:
        # The result's own describe() lines print raw "/h" objective values;
        # for a non-default objective name the optimised quantity explicitly.
        spec = get_objective(scenario.objective)
        print(
            f"optimized: {spec.name} ({spec.sense}imised) = "
            f"{spec.describe_value(result.optimal_throughput)} at n_opt={result.optimal_sites}"
        )
    print()
    print(result.step1.erpct.describe())
    if args.show_architecture:
        print()
        print(result.best.architecture.describe())
    print()
    print("site-count sweep (Step 2):")
    for point in sorted(result.points, key=lambda point: point.sites):
        marker = "  <-- optimal" if point.sites == result.optimal_sites else ""
        print(f"  {point.describe()}{marker}")
    return 0


def _run_benchmarks(_: argparse.Namespace) -> int:
    benchmark_names = set()
    for info in list_benchmarks():
        benchmark_names.add(info.name)
        origin = "synthetic reconstruction" if info.synthetic else "published data"
        print(f"{info.name:10s} {info.modules:3d} modules  [{origin}]  {info.description}")
    # The rest of the catalog: pnx8550 plus anything user-registered, each
    # with its registry description, and the parametric synthetic family.
    for entry in list_catalog():
        if entry.name not in benchmark_names:
            print(f"{entry.name:10s} [catalog]  {entry.description}")
    print(
        f"{SYNTHETIC_PATTERN}  parametric family of deterministic synthetic "
        "SOCs (any seed, any module count)"
    )
    return 0


def _run_solvers(_: argparse.Namespace) -> int:
    for solver in list_solvers():
        marker = "  [default]" if solver.name == DEFAULT_SOLVER else ""
        description = f" -- {solver.description}" if solver.description else ""
        print(f"{solver.name:12s} {solver.title}{description}{marker}")
    return 0


def _run_objectives(_: argparse.Namespace) -> int:
    for objective in list_objectives():
        marker = "  [default]" if objective.name == DEFAULT_OBJECTIVE else ""
        description = f" -- {objective.description}" if objective.description else ""
        units = f" [{objective.units}]" if objective.units else ""
        print(
            f"{objective.name:18s} {objective.sense} {objective.title}"
            f"{units}{description}{marker}"
        )
    return 0


def _add_store_parser(
    subparsers: argparse._SubParsersAction, store_options: argparse.ArgumentParser
) -> None:
    parser = subparsers.add_parser(
        "store", help="inspect and maintain a persistent result store"
    )
    store_subparsers = parser.add_subparsers(dest="store_command", required=True)
    store_subparsers.add_parser(
        "info",
        parents=[store_options],
        help="record count, bytes and format of a --store directory "
        "(packed stores: per-segment stats and orphan detection)",
    )
    migrate = store_subparsers.add_parser(
        "migrate",
        parents=[store_options],
        help="convert a legacy one-file-per-record store to the packed format "
        "(digest-verified; in place unless --dest is given)",
    )
    migrate.add_argument(
        "--dest", metavar="DIR", default=None,
        help="write the packed store here instead of migrating in place",
    )
    store_subparsers.add_parser(
        "compact",
        parents=[store_options],
        help="rewrite a packed store's live records into one fresh segment, "
        "reclaiming dead bytes and dropping orphaned index entries",
    )
    reindex = store_subparsers.add_parser(
        "reindex",
        parents=[store_options],
        help="rebuild a packed store's SQLite index from its segment files, "
        "or (with --columns) the columnar analysis sidecars of either backend",
    )
    reindex.add_argument(
        "--columns",
        action="store_true",
        help="rebuild the .cols analysis sidecars (both backends) instead of "
        "the SQLite index",
    )


def _run_store_info_packed(store: PackedResultStore) -> int:
    print(f"store: {store.root}")
    print("backend: packed")
    print(f"format: {STORE_FORMAT}")
    print(f"records: {len(store)}")
    print(f"bytes: {store.total_bytes()}")
    stats = store.segment_stats()
    print(f"segments: {len(stats)}")
    for stat in stats:
        detail = f"{stat.records} records, {stat.live_bytes}/{stat.file_bytes} bytes live"
        if stat.missing:
            detail += "  [MISSING FILE]"
        elif stat.dead_bytes:
            detail += f" ({stat.dead_bytes} dead)"
        print(f"  {stat.name}: {detail}")
    orphans = store.orphans()
    if orphans:
        print(
            f"orphaned: {len(orphans)} index entr(ies) whose record bytes are gone "
            "(run 'repro store compact' to drop them)"
        )
    for label, column in (("SOC", "soc"), ("solver", "solver"), ("objective", "objective")):
        counts = store.breakdown(column)
        if counts:
            breakdown = ", ".join(
                f"{name or '?'}={counts[name]}" for name in sorted(counts)
            )
            print(f"by {label}: {breakdown}")
    return 0


def _run_store_info(args: argparse.Namespace) -> int:
    if is_packed(args.store):
        return _run_store_info_packed(PackedResultStore(args.store))
    store = ResultStore(args.store)
    entries = store.scan()
    total_bytes = sum(entry.size_bytes for entry in entries)
    print(f"store: {store.root}")
    print(f"format: {STORE_FORMAT}")
    print(f"records: {len(entries)}")
    print(f"bytes: {total_bytes}")
    corrupt = store.info().corrupt
    if corrupt:
        print(f"corrupt: {corrupt} unreadable record file(s) skipped")
    for label, field in (
        ("SOC", "soc_name"),
        ("solver", "solver"),
        ("objective", "objective"),
    ):
        counts: dict[str, int] = {}
        for entry in entries:
            name = getattr(entry, field) or "?"
            counts[name] = counts.get(name, 0) + 1
        if counts:
            breakdown = ", ".join(
                f"{name}={counts[name]}" for name in sorted(counts)
            )
            print(f"by {label}: {breakdown}")
    return 0


def _run_store_migrate(args: argparse.Namespace) -> int:
    report = migrate_store(args.store, destination=args.dest)
    where = "in place" if report.in_place else f"to {report.destination}"
    print(f"migrated {report.source} {where}: {report.migrated} record(s)")
    if report.corrupt:
        print(f"skipped: {report.corrupt} corrupt record file(s) left behind")
    print(f"bytes: {report.bytes_before} -> {report.bytes_after}")
    return 0


def _run_store_compact(args: argparse.Namespace) -> int:
    if not is_packed(args.store):
        raise ConfigurationError(
            f"{args.store} is not a packed store; 'store compact' only applies "
            "after 'repro store migrate'"
        )
    stats = PackedResultStore(args.store).compact()
    print(f"compacted: {stats.records} live record(s), {stats.orphans_dropped} dropped")
    print(f"segments: {stats.segments_before} -> {stats.segments_after}")
    print(
        f"bytes: {stats.bytes_before} -> {stats.bytes_after} "
        f"({stats.bytes_reclaimed} reclaimed)"
    )
    return 0


def _run_store_reindex(args: argparse.Namespace) -> int:
    if args.columns:
        store = open_store(args.store)
        rows = store.reindex_columns()
        print(f"rebuilt columnar sidecars: {rows} row(s)")
        return 0
    if not is_packed(args.store):
        raise ConfigurationError(
            f"{args.store} is not a packed store; 'store reindex' rebuilds the "
            "SQLite index (use 'store reindex --columns' for the analysis "
            "sidecars of either backend)"
        )
    rows = PackedResultStore(args.store).reindex()
    print(f"reindexed: {rows} record(s)")
    return 0


def _run_store(args: argparse.Namespace) -> int:
    if not args.store:
        raise ConfigurationError(f"store {args.store_command} needs --store DIR")
    if args.store_command == "migrate":
        return _run_store_migrate(args)
    if args.store_command == "compact":
        return _run_store_compact(args)
    if args.store_command == "reindex":
        return _run_store_reindex(args)
    return _run_store_info(args)


def _add_serve_parser(
    subparsers: argparse._SubParsersAction, store_options: argparse.ArgumentParser
) -> None:
    parser = subparsers.add_parser(
        "serve",
        parents=[store_options],
        help="run the campaign service daemon (lease shards, collect records)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8750,
        help="bind port (default 8750; 0 picks any free port)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=DEFAULT_LEASE_TTL, metavar="SECONDS",
        help="seconds a worker may go between heartbeats before its shard "
        f"lease expires and is re-offered (default {DEFAULT_LEASE_TTL:g})",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )


def _run_serve(args: argparse.Namespace) -> int:
    if not args.store:
        raise ConfigurationError("serve needs --store DIR for the campaign results")
    log = None if args.quiet else (lambda message: print(message, file=sys.stderr, flush=True))
    server = start_server(
        args.store,
        host=args.host,
        port=args.port,
        lease_ttl=args.lease_ttl,
        log=log,
    )
    host, port = server.server_address[:2]
    info = server.app.store.info()
    # The parseable address line comes first (tests and scripts wait for
    # it), then the human context.
    print(f"listening on http://{host}:{port}", flush=True)
    print(
        f"store: {server.app.store.root} ({info.backend}, {info.size} record(s)); "
        f"lease ttl {args.lease_ttl:g}s; Ctrl-C stops",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _add_work_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "work",
        help="run a campaign worker: lease shards from a server, compute, upload",
    )
    parser.add_argument(
        "--server", metavar="URL", required=True,
        help="base URL of the campaign server, e.g. http://127.0.0.1:8750",
    )
    parser.add_argument(
        "--worker", default=None, metavar="NAME",
        help="worker name reported with every lease (default worker-<pid>)",
    )
    parser.add_argument(
        "--campaign", default=None, metavar="ID",
        help="only lease shards of this campaign (default: any open campaign)",
    )
    parser.add_argument(
        "--poll", type=float, default=1.0, metavar="SECONDS",
        help="seconds between lease attempts while no work is open (default 1)",
    )
    parser.add_argument(
        "--until-idle", action="store_true",
        help="exit once the server reports no open work (default: poll forever)",
    )
    parser.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="stop after completing N shards (default: unlimited)",
    )
    parser.add_argument(
        "--chunk", type=_chunk_size, default="auto", metavar="N|auto",
        help="scenarios per batched result upload (default 'auto': sized "
        "from the shard's to-compute count); digests are identical either way",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-shard progress lines"
    )


def _run_work(args: argparse.Namespace) -> int:
    log = None if args.quiet else (lambda message: print(message, file=sys.stderr, flush=True))
    stats = run_worker(
        args.server,
        worker=args.worker,
        campaign=args.campaign,
        poll=args.poll,
        until_idle=args.until_idle,
        max_shards=args.max_shards,
        chunk_size=args.chunk,
        log=log,
    )
    print(stats.describe())
    return 0


def _add_analyze_parser(
    subparsers: argparse._SubParsersAction, store_options: argparse.ArgumentParser
) -> None:
    parser = subparsers.add_parser(
        "analyze",
        parents=[store_options],
        help="analyse campaign results from a --store directory and/or sweep JSONL files",
    )
    parser.add_argument(
        "inputs",
        nargs="*",
        metavar="JSONL",
        help="sweep JSONL files (as written by 'sweep --output')",
    )
    parser.add_argument(
        "--group-by",
        choices=sorted(GROUP_COLUMNS),
        default=None,
        help="print a per-group summary of --metric instead of raw records",
    )
    parser.add_argument(
        "--metric",
        choices=sorted(METRICS),
        default="throughput",
        help="metric used by --group-by and --best (default 'throughput')",
    )
    parser.add_argument(
        "--best",
        action="store_true",
        help="print the --metric-best record of every SOC",
    )
    parser.add_argument(
        "--pareto",
        metavar="X,Y",
        default=None,
        help="print the 2-D Pareto front of two metrics, e.g. 'time,cost'",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print scan progress (segments/rows) to stderr while loading",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="scan packed-store segments with N parallel processes "
        "(default: serial)",
    )


def _parse_pareto(spec: str) -> tuple[str, str]:
    """Parse a ``--pareto X,Y`` argument into two metric names."""
    first, separator, second = spec.partition(",")
    if not separator or not first.strip() or not second.strip():
        raise ConfigurationError(
            f"malformed pareto spec {spec!r}; expected two metrics, e.g. time,cost"
        )
    return first.strip(), second.strip()


def _run_analyze(args: argparse.Namespace) -> int:
    progress = None
    if args.progress:
        def progress(line: str) -> None:
            print(line, file=sys.stderr, flush=True)
    records = load_records(
        store=args.store,
        jsonl_paths=args.inputs,
        workers=args.workers,
        progress=progress,
    )
    if not records:
        print("no records found", file=sys.stderr)
        return 1
    sections = []
    if args.group_by:
        sections.append(group_summary(records, args.group_by, args.metric).render())
    if args.best:
        sections.append(best_table(records, args.metric).render())
    if args.pareto:
        sections.append(pareto_table(records, *_parse_pareto(args.pareto)).render())
    if not sections:
        sections.append(records_table(records).render())
    print("\n\n".join(sections))
    print()
    print(f"{len(records)} records analysed")
    return 0


def _run_registered_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.command, _engine_from_args(args))
    print(render_experiment(args.command, result))
    return 0


def _run_all(args: argparse.Namespace) -> int:
    report = run_all_experiments(_engine_from_args(args))
    print(report.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-multisite",
        description="On-chip test infrastructure design for optimal multi-site testing "
        "(reproduction of Goel & Marinissen, DATE 2005)",
    )
    store_options = _store_options()
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_design_parser(subparsers, store_options)
    _add_sweep_parser(subparsers, store_options)
    _add_analyze_parser(subparsers, store_options)
    subparsers.add_parser("benchmarks", help="list the catalog SOCs (benchmarks + synthetic family)")
    subparsers.add_parser("solvers", help="list the registered solver backends")
    subparsers.add_parser("objectives", help="list the registered optimisation objectives")
    _add_store_parser(subparsers, store_options)
    _add_serve_parser(subparsers, store_options)
    _add_work_parser(subparsers)
    _add_bench_parser(subparsers, store_options)
    experiments = {experiment.name: experiment for experiment in list_experiments()}
    for name in experiment_commands():
        subparsers.add_parser(
            name,
            parents=[store_options],
            help=f"regenerate: {experiments[name].title}",
        )
    subparsers.add_parser(
        "all", parents=[store_options], help="regenerate the full experiment report (slow)"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "design":
            return _run_design(args)
        if args.command == "sweep":
            return _run_sweep(args)
        if args.command == "analyze":
            return _run_analyze(args)
        if args.command == "benchmarks":
            return _run_benchmarks(args)
        if args.command == "solvers":
            return _run_solvers(args)
        if args.command == "objectives":
            return _run_objectives(args)
        if args.command == "store":
            return _run_store(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "work":
            return _run_work(args)
        if args.command == "bench":
            return _run_bench(args)
        if args.command == "all":
            return _run_all(args)
        return _run_registered_experiment(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
