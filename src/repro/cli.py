"""Command-line interface.

Installed as ``repro-multisite`` (see ``pyproject.toml``) and runnable as
``python -m repro``.  Sub-commands:

* ``design``     -- run the two-step algorithm for one SOC / ATE and print the
  resulting infrastructure and throughput;
* ``benchmarks`` -- list the registered ITC'02 benchmarks;
* ``table1``     -- regenerate the paper's Table 1;
* ``figure5`` / ``figure6`` / ``figure7`` -- regenerate the figures;
* ``economics``  -- regenerate the memory-vs-channels cost comparison;
* ``all``        -- run every experiment (slow).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.ate.probe_station import ProbeStation
from repro.ate.spec import AteSpec
from repro.core.exceptions import ReproError
from repro.core.units import mega_vectors
from repro.experiments.economics import run_economics, summarize_economics
from repro.experiments.figure5 import run_figure5, summarize_figure5
from repro.experiments.figure6 import run_figure6, summarize_figure6
from repro.experiments.figure7 import run_figure7a, run_figure7b, summarize_figure7
from repro.experiments.runner import run_all_experiments
from repro.experiments.table1 import run_table1, summarize_table1
from repro.itc02.parser import parse_soc_file
from repro.itc02.registry import list_benchmarks, load_benchmark
from repro.optimize.config import Objective, OptimizationConfig
from repro.optimize.two_step import optimize_multisite
from repro.reporting.series import series_table
from repro.soc.pnx8550 import make_pnx8550
from repro.soc.soc import Soc


def _load_soc(spec: str) -> Soc:
    """Resolve an SOC argument: a registered benchmark name, ``pnx8550`` or a file."""
    if spec.lower() == "pnx8550":
        return make_pnx8550()
    if spec.endswith(".soc"):
        return parse_soc_file(spec)
    return load_benchmark(spec)


def _add_design_parser(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "design", help="design the test infrastructure and optimal multi-site for one SOC"
    )
    parser.add_argument("soc", help="benchmark name, 'pnx8550', or path to a .soc file")
    parser.add_argument("--channels", type=int, default=512, help="ATE channels (default 512)")
    parser.add_argument(
        "--depth-m", type=float, default=7.0, help="vector-memory depth in M vectors (default 7)"
    )
    parser.add_argument(
        "--frequency-mhz", type=float, default=5.0, help="test clock in MHz (default 5)"
    )
    parser.add_argument("--index-time", type=float, default=0.5, help="prober index time in s")
    parser.add_argument(
        "--contact-test-time", type=float, default=0.010, help="contact test time in s"
    )
    parser.add_argument("--contact-yield", type=float, default=1.0, help="per-terminal contact yield")
    parser.add_argument("--yield", dest="manufacturing_yield", type=float, default=1.0,
                        help="per-device manufacturing yield")
    parser.add_argument("--broadcast", action="store_true", help="assume stimuli broadcast")
    parser.add_argument("--abort-on-fail", action="store_true", help="use the abort-on-fail test time")
    parser.add_argument(
        "--unique", action="store_true", help="maximise unique throughput (with re-test)"
    )
    parser.add_argument("--max-sites", type=int, default=None, help="equipment limit on sites")
    parser.add_argument("--show-architecture", action="store_true",
                        help="print the full channel-group architecture")


def _run_design(args: argparse.Namespace) -> int:
    soc = _load_soc(args.soc)
    ate = AteSpec(
        channels=args.channels,
        depth=mega_vectors(args.depth_m),
        frequency_hz=args.frequency_mhz * 1e6,
    )
    probe_station = ProbeStation(
        index_time_s=args.index_time,
        contact_test_time_s=args.contact_test_time,
        contact_yield=args.contact_yield,
    )
    config = OptimizationConfig(
        broadcast=args.broadcast,
        abort_on_fail=args.abort_on_fail,
        objective=Objective.UNIQUE_THROUGHPUT if args.unique else Objective.THROUGHPUT,
        manufacturing_yield=args.manufacturing_yield,
        max_sites=args.max_sites,
    )
    result = optimize_multisite(soc, ate, probe_station, config)
    print(soc.describe())
    print(ate.describe())
    print(probe_station.describe())
    print()
    print(result.describe())
    print()
    print(result.step1.erpct.describe())
    if args.show_architecture:
        print()
        print(result.best.architecture.describe())
    print()
    print("site-count sweep (Step 2):")
    for point in sorted(result.points, key=lambda point: point.sites):
        marker = "  <-- optimal" if point.sites == result.optimal_sites else ""
        print(f"  {point.describe()}{marker}")
    return 0


def _run_benchmarks(_: argparse.Namespace) -> int:
    for info in list_benchmarks():
        origin = "synthetic reconstruction" if info.synthetic else "published data"
        print(f"{info.name:10s} {info.modules:3d} modules  [{origin}]  {info.description}")
    return 0


def _run_table1(_: argparse.Namespace) -> int:
    result = run_table1()
    for name in result.benchmarks:
        print(result.to_table(name).render())
        print()
    print(summarize_table1(result))
    return 0


def _run_figure5(_: argparse.Namespace) -> int:
    result = run_figure5()
    print(summarize_figure5(result))
    print()
    print(series_table([result.throughput_broadcast]))
    print()
    print(series_table([result.step1_only_broadcast]))
    return 0


def _run_figure6(_: argparse.Namespace) -> int:
    result = run_figure6()
    print(summarize_figure6(result))
    print()
    print(result.throughput_vs_channels.render())
    print()
    print(result.throughput_vs_depth.render())
    return 0


def _run_figure7(_: argparse.Namespace) -> int:
    figure7a = run_figure7a()
    figure7b = run_figure7b()
    print(summarize_figure7(figure7a, figure7b))
    print()
    print(series_table([figure7a.series(y) for y in figure7a.contact_yields]))
    print()
    print(series_table([figure7b.series(y) for y in figure7b.manufacturing_yields]))
    return 0


def _run_economics(_: argparse.Namespace) -> int:
    result = run_economics()
    print(result.to_table().render())
    print()
    print(summarize_economics(result))
    return 0


def _run_all(_: argparse.Namespace) -> int:
    report = run_all_experiments()
    print(report.render())
    return 0


_COMMANDS = {
    "design": _run_design,
    "benchmarks": _run_benchmarks,
    "table1": _run_table1,
    "figure5": _run_figure5,
    "figure6": _run_figure6,
    "figure7": _run_figure7,
    "economics": _run_economics,
    "all": _run_all,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-multisite",
        description="On-chip test infrastructure design for optimal multi-site testing "
        "(reproduction of Goel & Marinissen, DATE 2005)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_design_parser(subparsers)
    subparsers.add_parser("benchmarks", help="list the registered ITC'02 benchmarks")
    subparsers.add_parser("table1", help="regenerate Table 1")
    subparsers.add_parser("figure5", help="regenerate Figure 5")
    subparsers.add_parser("figure6", help="regenerate Figure 6")
    subparsers.add_parser("figure7", help="regenerate Figure 7")
    subparsers.add_parser("economics", help="regenerate the ATE upgrade cost comparison")
    subparsers.add_parser("all", help="run every experiment (slow)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
