"""repro -- reproduction of Goel & Marinissen, DATE 2005.

On-chip test infrastructure design for optimal multi-site testing of system
chips: module wrappers (COMBINE), TAM / channel-group design, chip-level
E-RPCT wrappers, the multi-site throughput cost model, and the two-step
algorithm that maximises wafer-test throughput on a fixed ATE.

Typical usage -- describe a run as a :class:`Scenario` and execute it with
an :class:`Engine`::

    from repro import Engine, Scenario, reference_test_cell

    cell = reference_test_cell(channels=256, depth_m=0.0625)  # 256 ch x 64 K
    outcome = Engine().run(Scenario(soc="d695", test_cell=cell))
    print(outcome.result.describe())

Scenarios are declarative and hashable: :meth:`Scenario.sweep
<repro.api.scenario.Scenario.sweep>` expands cartesian parameter grids
(benchmarks x channels x depths x broadcast x site limits x solvers), and
``Engine.run_batch(scenarios, workers=4)`` runs them in parallel with an
in-process result cache::

    grid = Scenario.sweep("d695", cell, channels=[128, 256, 512],
                          broadcast=[False, True])
    results = Engine().run_batch(grid, workers=4)

For campaign-scale sweeps the same grids exist in lazy form
(:class:`SweepGrid <repro.api.grid.SweepGrid>`): they iterate scenarios on
demand, shard into disjoint slices for distributed runs, and stream
through ``Engine.run_iter``, which yields results as they complete and
persists each one immediately -- so an interrupted sweep resumes from its
store, recomputing only what never finished::

    from repro import SweepGrid, synthetic_family

    grid = SweepGrid(["d695", "pnx8550", *synthetic_family(42, 10, 8)],
                     cell, channels=[128, 256])
    for outcome in Engine(store="~/.cache/repro-store").run_iter(
            grid.shard(0, 4), workers=4):
        print(outcome.describe())

The SOC axis is name-addressable through the catalog
(:mod:`repro.soc.catalog`): ITC'02 benchmarks, ``pnx8550``, parametric
synthetic families (``"synthetic:<seed>:<modules>"``) and anything
registered via :func:`register_catalog_soc
<repro.soc.catalog.register_catalog_soc>`.  The CLI form is ``python -m
repro sweep``, which streams JSONL records with ``--shard I/N`` and
store-backed ``--resume``.

The optimisation strategy itself is pluggable (:mod:`repro.solvers`): the
paper's greedy two-step is the ``"goel05"`` backend, ``"exhaustive"`` is an
exact oracle for small SOCs, and ``"restart"`` is a deterministic
multi-start greedy that can beat the paper's ordering.  Pick one per
scenario or sweep the backend like any other axis::

    outcome = Engine().run(Scenario(soc="d695", test_cell=cell,
                                    solver="restart"))
    duel = Engine().run_batch(
        Scenario.sweep("d695", cell, solvers=["goel05", "restart"]))

So is *what* gets optimised (:mod:`repro.objectives`): every solver
backend optimises any registered objective -- the paper's ``"throughput"``
(default), ``"test_time"``, ``"cost_per_good_die"`` (Section-7 street
prices) or ``"channel_budget"`` -- through the shared evaluation kernel::

    cheapest = Engine().run(Scenario(soc="d695", test_cell=cell,
                                     objective="cost_per_good_die"))
    grid = SweepGrid("d695", cell, channels=[128, 256],
                     objectives=["throughput", "cost_per_good_die"])

``python -m repro solvers`` / ``objectives`` list the registered backends.
Campaign artifacts -- store directories and sweep JSONL files -- analyse
back into tables with :mod:`repro.analysis` (``python -m repro analyze``):
group-by summaries, best-per-SOC selection and 2-D Pareto fronts
(e.g. test time vs employed ATE capital).  Results can be
persisted across processes with the content-addressed on-disk store
(:mod:`repro.store`): attach one to an engine and equal scenarios are
solved once per *store directory* instead of once per process::

    from repro import Engine, ResultStore

    engine = Engine(store=ResultStore("~/.cache/repro-store"))

(or pass ``--store DIR`` to the CLI).  ``python -m repro bench`` times the
registered experiments, solver backends and the d695 sweep, and writes the
machine-readable ``BENCH_<tag>.json`` telemetry record.

The classic free functions remain fully supported as thin entry points::

    from repro import load_benchmark, reference_ate, optimize_multisite

    soc = load_benchmark("d695")
    ate = reference_ate(channels=256, depth_m=0.0625)
    result = optimize_multisite(soc, ate)          # solver="goel05"

The layering of the sub-packages (and where to add a new solver,
experiment or store backend) is documented in ARCHITECTURE.md; the CLI
reference lives in docs/cli.md.  The most commonly used entry points are
re-exported here.
"""

from repro.api import (
    CacheInfo,
    Engine,
    FilteredGrid,
    Grid,
    GridShard,
    GridUnion,
    PlanChunk,
    Scenario,
    ScenarioResult,
    SweepGrid,
    SweepPlan,
    TestCell,
    batch_throughput_series,
    optimize_scenario,
    reference_test_cell,
    resolve_soc,
)
from repro.solvers import (
    DEFAULT_SOLVER,
    SolverSolution,
    TestInfraProblem,
    get_solver,
    list_solvers,
    make_problem,
    register_solver,
    solver_names,
)
from repro.analysis import AnalysisRecord, best_per_soc, load_records, pareto_front
from repro.ate import AteSpec, ProbeStation, AtePricing, reference_ate, reference_probe_station
from repro.objectives import (
    DEFAULT_OBJECTIVE,
    ObjectiveSpec,
    get_objective,
    list_objectives,
    objective_names,
    register_objective,
)
from repro.itc02 import load_benchmark, list_benchmarks, parse_soc_file, write_soc_file
from repro.multisite import MultiSiteScenario, TestTiming, throughput_per_hour
from repro.optimize import (
    Objective,
    OptimizationConfig,
    Step1Result,
    TwoStepResult,
    design_step1_only,
    optimize_multisite,
)
from repro.soc import (
    CatalogEntry,
    Module,
    ScanChain,
    Soc,
    SocBuilder,
    catalog_names,
    list_catalog,
    make_module,
    make_pnx8550,
    make_synthetic_soc,
    register_catalog_soc,
    synthetic_family,
    synthetic_soc_name,
)
from repro.schedule import TestSchedule, build_schedule
from repro.store import (
    PackedResultStore,
    ResultStore,
    StoreEntry,
    StoreInfo,
    migrate_store,
    open_store,
)
from repro.tam import TestArchitecture, design_architecture
from repro.wrapper import WrapperDesign, design_wrapper, module_test_time

__version__ = "1.9.0"

__all__ = [
    "CacheInfo",
    "Engine",
    "FilteredGrid",
    "Grid",
    "GridShard",
    "GridUnion",
    "PlanChunk",
    "Scenario",
    "ScenarioResult",
    "SweepGrid",
    "SweepPlan",
    "TestCell",
    "batch_throughput_series",
    "optimize_scenario",
    "reference_test_cell",
    "resolve_soc",
    "DEFAULT_SOLVER",
    "SolverSolution",
    "TestInfraProblem",
    "get_solver",
    "list_solvers",
    "make_problem",
    "register_solver",
    "solver_names",
    "DEFAULT_OBJECTIVE",
    "ObjectiveSpec",
    "get_objective",
    "list_objectives",
    "objective_names",
    "register_objective",
    "AnalysisRecord",
    "best_per_soc",
    "load_records",
    "pareto_front",
    "AteSpec",
    "ProbeStation",
    "AtePricing",
    "reference_ate",
    "reference_probe_station",
    "load_benchmark",
    "list_benchmarks",
    "parse_soc_file",
    "write_soc_file",
    "MultiSiteScenario",
    "TestTiming",
    "throughput_per_hour",
    "Objective",
    "OptimizationConfig",
    "Step1Result",
    "TwoStepResult",
    "design_step1_only",
    "optimize_multisite",
    "CatalogEntry",
    "Module",
    "ScanChain",
    "Soc",
    "SocBuilder",
    "catalog_names",
    "list_catalog",
    "make_module",
    "make_pnx8550",
    "make_synthetic_soc",
    "register_catalog_soc",
    "synthetic_family",
    "synthetic_soc_name",
    "TestSchedule",
    "build_schedule",
    "PackedResultStore",
    "ResultStore",
    "StoreEntry",
    "StoreInfo",
    "migrate_store",
    "open_store",
    "TestArchitecture",
    "design_architecture",
    "WrapperDesign",
    "design_wrapper",
    "module_test_time",
    "__version__",
]
