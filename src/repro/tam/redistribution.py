"""Step-2 channel redistribution (Section 6, Step 2 of the paper).

When Step 2 gives up one multi-site, the ATE channels that site occupied
become available to the remaining sites.  The paper redistributes them by
iteratively assigning free channel pairs (one TAM wire = one stimulus + one
response channel) to the channel group that is *maximally filled*, because
widening the bottleneck group is what reduces the SOC test-application time.

This module implements that redistribution as a pure function on
:class:`~repro.tam.architecture.TestArchitecture` objects, plus a helper
that widens an architecture up to a given per-site channel budget.
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError
from repro.tam.architecture import TestArchitecture


def widen_bottleneck(architecture: TestArchitecture, extra_wires: int) -> TestArchitecture:
    """Distribute ``extra_wires`` additional TAM wires over the architecture.

    Wires are handed out one at a time, each to the channel group whose fill
    is currently the largest (ties towards the lower group index for
    determinism).  The resulting architecture therefore has
    ``total_width + extra_wires`` wires and a test time no larger than the
    original's.

    Parameters
    ----------
    architecture:
        The Step-1 architecture to widen.
    extra_wires:
        Number of extra TAM wires (each worth 2 ATE channels).
    """
    if extra_wires < 0:
        raise ConfigurationError(f"extra wire count must be non-negative, got {extra_wires}")
    if extra_wires == 0:
        return architecture
    # Track the groups and their fills locally so each wire only re-derives
    # the fill of the one group it widened; the architecture (and its full
    # validation pass) is rebuilt once at the end.
    groups = list(architecture.groups)
    fills = [group.fill for group in groups]
    for _ in range(extra_wires):
        bottleneck = max(range(len(fills)), key=lambda position: (fills[position], -position))
        widened = groups[bottleneck].with_width(groups[bottleneck].width + 1)
        groups[bottleneck] = widened
        fills[bottleneck] = widened.fill
    return architecture.with_groups(tuple(groups))


def widen_to_channel_budget(
    architecture: TestArchitecture, channels_per_site: int
) -> TestArchitecture:
    """Widen ``architecture`` to use at most ``channels_per_site`` ATE channels.

    This is the operation Step 2 performs for every candidate site count:
    the per-site channel budget follows from the number of sites, and any
    budget beyond the Step-1 requirement is spent on widening the bottleneck
    groups.  If the budget is smaller than the architecture already needs,
    the architecture is returned unchanged (the caller is responsible for
    rejecting such site counts).
    """
    if channels_per_site <= 0:
        raise ConfigurationError(
            f"channel budget must be positive, got {channels_per_site}"
        )
    extra_channels = channels_per_site - architecture.ate_channels
    if extra_channels < 2:
        return architecture
    return widen_bottleneck(architecture, extra_channels // 2)
