"""Channel groups: fixed-width TAMs driven by a group of ATE channels.

The paper's Step 1 organises the SOC's modules into *channel groups*.  Each
group is a fixed-width TAM: a set of ``width`` TAM wires driven by ``width``
ATE stimulus channels and observed by ``width`` ATE response channels.  The
modules assigned to a group are tested one after another over that TAM, so
the group's *fill* -- the number of vector-memory entries it consumes on its
channels -- is the sum of the module test times at the group's width.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.exceptions import ConfigurationError
from repro.core.fingerprint import pickle_state
from repro.soc.module import Module
from repro.wrapper.combine import module_test_time


@dataclass(frozen=True)
class ChannelGroup:
    """A fixed-width TAM and the modules assigned to it.

    Attributes
    ----------
    index:
        Stable identifier of the group within its architecture.
    width:
        Number of TAM wires.  The group occupies ``2 * width`` ATE channels
        (stimulus + response).
    modules:
        Modules tested over this TAM, in schedule order.
    """

    index: int
    width: int
    modules: tuple[Module, ...]

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError(f"channel group width must be positive, got {self.width}")
        if not isinstance(self.modules, tuple):
            object.__setattr__(self, "modules", tuple(self.modules))

    def __hash__(self) -> int:
        # Structural hash cached on first use; see repro.core.fingerprint.
        fingerprint = self.__dict__.get("_fingerprint")
        if fingerprint is None:
            fingerprint = hash((self.index, self.width, self.modules))
            object.__setattr__(self, "_fingerprint", fingerprint)
        return fingerprint

    __getstate__ = pickle_state

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def ate_channels(self) -> int:
        """ATE channels consumed by this group (stimulus + response)."""
        return 2 * self.width

    @cached_property
    def fill(self) -> int:
        """Vector-memory depth consumed on this group's channels (cycles)."""
        return sum(module_test_time(module, self.width) for module in self.modules)

    @property
    def module_names(self) -> tuple[str, ...]:
        """Names of the assigned modules in schedule order."""
        return tuple(module.name for module in self.modules)

    def fill_at_width(self, width: int) -> int:
        """Fill this group's module set would have at a different TAM width."""
        if width <= 0:
            raise ConfigurationError(f"width must be positive, got {width}")
        return sum(module_test_time(module, width) for module in self.modules)

    def fill_with(self, module: Module, width: int | None = None) -> int:
        """Fill after additionally assigning ``module`` (optionally at a new width)."""
        effective = self.width if width is None else width
        return self.fill_at_width(effective) + module_test_time(module, effective)

    def free_depth(self, depth: int) -> int:
        """Unused vector-memory depth on this group's channels."""
        if depth < 0:
            raise ConfigurationError(f"depth must be non-negative, got {depth}")
        return max(0, depth - self.fill)

    def free_memory(self, depth: int) -> int:
        """Unused vector memory over the group's channels (channel*vectors).

        The paper's Step 1 uses the total free memory over all *used*
        channels as the tie-breaker between creating a new group and
        widening an existing one; stimulus and response channels are counted
        separately, hence the factor ``2 * width``.
        """
        return self.free_depth(depth) * self.ate_channels

    # ------------------------------------------------------------------
    # Functional updates (groups are immutable)
    # ------------------------------------------------------------------
    def with_module(self, module: Module) -> "ChannelGroup":
        """Return a copy of this group with ``module`` appended."""
        return ChannelGroup(index=self.index, width=self.width,
                            modules=self.modules + (module,))

    def with_width(self, width: int) -> "ChannelGroup":
        """Return a copy of this group at a different TAM width."""
        return ChannelGroup(index=self.index, width=width, modules=self.modules)

    def describe(self, depth: int | None = None) -> str:
        """One-line summary used by reports."""
        text = (
            f"group {self.index}: width {self.width} ({self.ate_channels} channels), "
            f"{len(self.modules)} modules, fill {self.fill} cycles"
        )
        if depth is not None:
            text += f", free depth {self.free_depth(depth)}"
        return text
