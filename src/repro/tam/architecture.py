"""SOC-level test architecture: a set of channel groups covering all modules.

A :class:`TestArchitecture` is the outcome of Step 1 (and the thing Step 2
modifies): every module of the SOC is assigned to exactly one channel group,
the summed group widths determine the per-site ATE channel requirement
``k = 2 * sum(width)``, and the largest group fill determines the SOC test
application time in cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.exceptions import ConfigurationError, InvalidSocError
from repro.core.fingerprint import pickle_state
from repro.soc.soc import Soc
from repro.tam.channel_group import ChannelGroup


@dataclass(frozen=True)
class TestArchitecture:
    """A complete TAM / channel-group architecture for an SOC.

    Attributes
    ----------
    soc:
        The SOC this architecture was designed for.
    groups:
        The channel groups.  Together they must cover every module of the
        SOC exactly once.
    depth:
        The ATE vector-memory depth (vectors per channel) the architecture
        was designed against; used for fill/feasibility reporting.
    """

    soc: Soc
    groups: tuple[ChannelGroup, ...]
    depth: int

    # Tell pytest this is a domain class, not a test-case class.
    __test__ = False

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise ConfigurationError(f"depth must be positive, got {self.depth}")
        if not isinstance(self.groups, tuple):
            object.__setattr__(self, "groups", tuple(self.groups))
        if not self.groups:
            raise ConfigurationError("test architecture must contain at least one channel group")
        assigned = [module.name for group in self.groups for module in group.modules]
        if len(assigned) != len(set(assigned)):
            raise InvalidSocError("a module is assigned to more than one channel group")
        missing = set(self.soc.module_names) - set(assigned)
        extra = set(assigned) - set(self.soc.module_names)
        if missing:
            raise InvalidSocError(f"modules not assigned to any channel group: {sorted(missing)}")
        if extra:
            raise InvalidSocError(f"unknown modules in channel groups: {sorted(extra)}")

    def __hash__(self) -> int:
        # Structural hash cached on first use; see repro.core.fingerprint.
        fingerprint = self.__dict__.get("_fingerprint")
        if fingerprint is None:
            fingerprint = hash((self.soc, self.groups, self.depth))
            object.__setattr__(self, "_fingerprint", fingerprint)
        return fingerprint

    __getstate__ = pickle_state

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @cached_property
    def total_width(self) -> int:
        """Total TAM width (sum of group widths)."""
        return sum(group.width for group in self.groups)

    @property
    def ate_channels(self) -> int:
        """ATE channels required per site: ``k = 2 * total TAM width``."""
        return 2 * self.total_width

    @cached_property
    def test_time_cycles(self) -> int:
        """SOC test application time in cycles (largest group fill)."""
        return max(self.fills)

    @cached_property
    def fills(self) -> tuple[int, ...]:
        """Fill of every group, in group order."""
        return tuple(group.fill for group in self.groups)

    @property
    def fits_depth(self) -> bool:
        """True when every group fill fits within the design depth."""
        return self.test_time_cycles <= self.depth

    @property
    def free_memory(self) -> int:
        """Total unused vector memory over all used channels (channel*vectors)."""
        return sum(group.free_memory(self.depth) for group in self.groups)

    @property
    def num_groups(self) -> int:
        """Number of channel groups (TAMs)."""
        return len(self.groups)

    def group_of(self, module_name: str) -> ChannelGroup:
        """Return the channel group a module is assigned to."""
        for group in self.groups:
            if module_name in group.module_names:
                return group
        raise KeyError(f"module {module_name!r} is not assigned to any group")

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_groups(self, groups: tuple[ChannelGroup, ...]) -> "TestArchitecture":
        """Return a copy of this architecture with a different group set."""
        return TestArchitecture(soc=self.soc, groups=groups, depth=self.depth)

    def with_group_width(self, group_index: int, width: int) -> "TestArchitecture":
        """Return a copy in which one group has been resized to ``width``."""
        new_groups = tuple(
            group.with_width(width) if group.index == group_index else group
            for group in self.groups
        )
        return self.with_groups(new_groups)

    def describe(self) -> str:
        """Multi-line summary used by reports and the CLI."""
        lines = [
            f"architecture for {self.soc.name}: {self.num_groups} TAMs, "
            f"total width {self.total_width} ({self.ate_channels} ATE channels), "
            f"test time {self.test_time_cycles} cycles "
            f"(depth {self.depth}, fits: {self.fits_depth})",
        ]
        for group in self.groups:
            lines.append("  " + group.describe(self.depth))
        return "\n".join(lines)
