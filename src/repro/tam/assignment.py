"""Step-1 channel-group assignment heuristic (Section 6, Step 1 of the paper).

Given an SOC and a target ATE (channel count ``N`` and vector-memory depth
``D``), this module designs a :class:`~repro.tam.architecture.TestArchitecture`
that

1. first minimises the number of ATE channels ``k`` used by one SOC such
   that every channel group's fill stays within ``D`` (criterion 1 --
   maximises the achievable multi-site), and
2. then minimises the actual filling of the vector memory (criterion 2 --
   reduces the test time per SOC).

The heuristic follows the paper: modules are processed in decreasing order
of their minimum required width; each module is placed on an existing group
when possible (choosing the group with the smallest resulting fill);
otherwise the algorithm compares *creating a new group* against *widening an
existing group just enough to fit the module*.  Criterion 1 has priority, so
the alternative that adds the fewest ATE channels wins; among equally cheap
alternatives the one leaving the most free vector memory on all used
channels is kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.soc.module import Module
from repro.soc.soc import Soc
from repro.tam.architecture import TestArchitecture
from repro.tam.channel_group import ChannelGroup
from repro.wrapper.combine import min_width_for_depth, module_test_time


@dataclass(frozen=True)
class _Placement:
    """One candidate way of accommodating a module (internal helper)."""

    groups: tuple[ChannelGroup, ...]
    total_width: int
    added_width: int
    free_memory: int


def _total_free_memory(groups: tuple[ChannelGroup, ...], depth: int) -> int:
    return sum(group.free_memory(depth) for group in groups)


def _try_existing_groups(
    groups: tuple[ChannelGroup, ...], module: Module, depth: int
) -> tuple[ChannelGroup, ...] | None:
    """Assign ``module`` to an existing group if one fits (smallest resulting fill)."""
    best_index: int | None = None
    best_fill: int | None = None
    for position, group in enumerate(groups):
        fill = group.fill_with(module)
        if fill <= depth and (best_fill is None or fill < best_fill):
            best_fill = fill
            best_index = position
    if best_index is None:
        return None
    return tuple(
        group.with_module(module) if position == best_index else group
        for position, group in enumerate(groups)
    )


def _new_group_placement(
    groups: tuple[ChannelGroup, ...],
    module: Module,
    width: int,
    width_budget: int,
    depth: int,
) -> _Placement | None:
    """Candidate: open a new channel group of ``width`` wires for ``module``."""
    total_width = sum(group.width for group in groups)
    if total_width + width > width_budget:
        return None
    new_group = ChannelGroup(index=len(groups), width=width, modules=(module,))
    if new_group.fill > depth:
        return None
    new_groups = groups + (new_group,)
    return _Placement(
        groups=new_groups,
        total_width=total_width + width,
        added_width=width,
        free_memory=_total_free_memory(new_groups, depth),
    )


def _widen_group_placement(
    groups: tuple[ChannelGroup, ...],
    position: int,
    module: Module,
    width_budget: int,
    depth: int,
) -> _Placement | None:
    """Candidate: widen ``groups[position]`` just enough to also fit ``module``."""
    total_width = sum(group.width for group in groups)
    group = groups[position]
    headroom = width_budget - total_width
    if headroom <= 0:
        return None
    # Quick reject: if the module set does not fit even at the widest
    # affordable width, trying every intermediate width is pointless.
    if group.fill_with(module, group.width + headroom) > depth:
        return None
    for extra in range(1, headroom + 1):
        new_width = group.width + extra
        if group.fill_with(module, new_width) <= depth:
            widened = group.with_width(new_width).with_module(module)
            new_groups = tuple(
                widened if index == position else existing
                for index, existing in enumerate(groups)
            )
            return _Placement(
                groups=new_groups,
                total_width=total_width + extra,
                added_width=extra,
                free_memory=_total_free_memory(new_groups, depth),
            )
    return None


def minimum_widths(soc: Soc, depth: int, width_budget: int) -> dict[str, int]:
    """Minimum wrapper/TAM width for every module of ``soc`` at depth ``depth``.

    Raises
    ------
    InfeasibleDesignError
        If any module cannot fit the depth even with ``width_budget`` wires.
    """
    if width_budget <= 0:
        raise ConfigurationError(f"width budget must be positive, got {width_budget}")
    return {
        module.name: min_width_for_depth(module, depth, width_budget)
        for module in soc.modules
    }


#: Placement criteria for choosing between "open a new group" and "widen an
#: existing group" when a module does not fit any existing group.
#: ``"fewest-channels"`` is the paper's criterion-1-first rule (default);
#: ``"most-free-memory"`` applies the free-memory tie-breaker unconditionally
#: and is kept as an ablation of that design choice.
PLACEMENT_CRITERIA = ("fewest-channels", "most-free-memory")


def paper_module_order(soc: Soc, widths: dict[str, int]) -> tuple[Module, ...]:
    """The paper's module processing order for the greedy assignment.

    Modules are sorted in decreasing order of their minimum width ``k_min``;
    ties are broken by decreasing test time at that width so big modules are
    seated first, then by name for determinism.
    """
    return tuple(
        sorted(
            soc.modules,
            key=lambda module: (
                -widths[module.name],
                -module_test_time(module, widths[module.name]),
                module.name,
            ),
        )
    )


def assign_modules(
    soc: Soc,
    ordered: Sequence[Module],
    widths: dict[str, int],
    channels: int,
    depth: int,
    placement_criterion: str = "fewest-channels",
) -> TestArchitecture:
    """Greedily assign ``ordered`` modules to channel groups.

    This is the placement core of :func:`design_architecture`, exposed
    separately so alternative solver backends (e.g. the randomized
    multi-start solver) can drive it with their own module orders.

    Raises
    ------
    InfeasibleDesignError
        When a module cannot be placed within the channel budget.
    """
    if channels <= 1:
        raise ConfigurationError(f"ATE must provide at least 2 channels, got {channels}")
    if placement_criterion not in PLACEMENT_CRITERIA:
        raise ConfigurationError(
            f"unknown placement criterion {placement_criterion!r}; "
            f"expected one of {PLACEMENT_CRITERIA}"
        )
    width_budget = channels // 2

    groups: tuple[ChannelGroup, ...] = ()
    for module in ordered:
        if not groups:
            first = ChannelGroup(index=0, width=widths[module.name], modules=(module,))
            if first.width > width_budget:
                raise InfeasibleDesignError(
                    f"module {module.name!r} alone exceeds the ATE channel budget",
                    module_name=module.name,
                )
            groups = (first,)
            continue

        assigned = _try_existing_groups(groups, module, depth)
        if assigned is not None:
            groups = assigned
            continue

        candidates: list[_Placement] = []
        new_group = _new_group_placement(
            groups, module, widths[module.name], width_budget, depth
        )
        if new_group is not None:
            candidates.append(new_group)
        for position in range(len(groups)):
            widened = _widen_group_placement(groups, position, module, width_budget, depth)
            if widened is not None:
                candidates.append(widened)

        if not candidates:
            raise InfeasibleDesignError(
                f"cannot place module {module.name!r}: the {channels}-channel budget "
                f"is exhausted at depth {depth}",
                module_name=module.name,
            )

        # Criterion 1 of the paper has priority: use as few additional ATE
        # channels as possible (this is what maximises the multi-site).
        # Among options that add the same number of wires, keep the one
        # with the maximum total free memory over all used channels
        # (criterion 2: it minimises the eventual test application time).
        # The "most-free-memory" ablation applies the free-memory rule
        # unconditionally, which tends to widen large groups and waste
        # channels -- the ablation benchmark quantifies that effect.
        if placement_criterion == "fewest-channels":
            key = lambda placement: (placement.added_width, -placement.free_memory)
        else:
            key = lambda placement: (-placement.free_memory, placement.added_width)
        best = min(candidates, key=key)
        groups = best.groups

    return TestArchitecture(soc=soc, groups=groups, depth=depth)


def design_architecture(
    soc: Soc,
    channels: int,
    depth: int,
    placement_criterion: str = "fewest-channels",
) -> TestArchitecture:
    """Design the Step-1 channel-group architecture for ``soc``.

    Parameters
    ----------
    soc:
        The SOC to design for.
    channels:
        Available ATE channels ``N``.  One SOC may use at most ``N``
        channels, i.e. a total TAM width of at most ``N // 2``.
    depth:
        Vector-memory depth per channel in vectors.
    placement_criterion:
        How to choose between opening a new channel group and widening an
        existing one; one of :data:`PLACEMENT_CRITERIA`.  The default is the
        paper's rule (criterion 1 -- fewest additional channels -- first);
        ``"most-free-memory"`` is provided for the ablation experiment.

    Raises
    ------
    InfeasibleDesignError
        When the SOC cannot be tested on the target ATE at all (a module
        needs more wires than available, or the channel budget is exhausted
        during assignment).
    """
    if channels <= 1:
        raise ConfigurationError(f"ATE must provide at least 2 channels, got {channels}")
    width_budget = channels // 2
    widths = minimum_widths(soc, depth, width_budget)
    ordered = paper_module_order(soc, widths)
    return assign_modules(soc, ordered, widths, channels, depth, placement_criterion)
