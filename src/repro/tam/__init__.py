"""TAM / channel-group design: architectures, Step-1 assignment, redistribution."""

from repro.tam.channel_group import ChannelGroup
from repro.tam.architecture import TestArchitecture
from repro.tam.assignment import design_architecture, minimum_widths
from repro.tam.redistribution import widen_bottleneck, widen_to_channel_budget

__all__ = [
    "ChannelGroup",
    "TestArchitecture",
    "design_architecture",
    "minimum_widths",
    "widen_bottleneck",
    "widen_to_channel_budget",
]
