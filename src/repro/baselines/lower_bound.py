"""Theoretical lower bound on the number of ATE channels per SOC.

The paper's Table 1 compares its Step-1 channel counts against a theoretical
lower bound (taken from Iyengar et al. [7]).  Two effects bound the total
TAM width ``W`` from below for a given vector-memory depth ``D``:

* **width bound** -- the widest single module: every module must fit within
  the depth on its own group, so ``W >= max_m w_min(m)``;
* **area bound** -- total test data: each module occupies at least its
  minimal rectangle area (width x test time over its feasible Pareto
  points), all of which has to fit into the ``W x D`` "bin" the ATE offers,
  so ``W >= ceil( sum_m min_area(m) / D )``.

The channel lower bound is twice the width bound (stimulus + response
channels).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.soc.soc import Soc
from repro.wrapper.combine import min_width_for_depth
from repro.wrapper.pareto import pareto_points


@dataclass(frozen=True)
class LowerBoundResult:
    """Lower bound on TAM width / ATE channels for one SOC and depth."""

    soc_name: str
    depth: int
    width_bound: int
    area_bound: int

    @property
    def tam_width(self) -> int:
        """Lower bound on the total TAM width."""
        return max(self.width_bound, self.area_bound)

    @property
    def ate_channels(self) -> int:
        """Lower bound on the per-site ATE channel count ``k``."""
        return 2 * self.tam_width


def module_min_feasible_area(module, depth: int, max_width: int) -> int:
    """Minimal rectangle area of ``module`` over widths whose time fits ``depth``.

    Falls back to the global minimum area when no Pareto point fits the
    depth (the caller will fail the width bound in that case anyway).
    """
    points = pareto_points(module, max_width)
    feasible = [point.area for point in points if point.test_time_cycles <= depth]
    if feasible:
        return min(feasible)
    return min(point.area for point in points)


def channel_lower_bound(soc: Soc, depth: int, channels: int) -> LowerBoundResult:
    """Compute the lower bound on ATE channels for ``soc`` at depth ``depth``.

    Parameters
    ----------
    soc:
        The SOC under consideration.
    depth:
        ATE vector-memory depth per channel (vectors).
    channels:
        ATE channel budget; only used to cap the per-module width search.

    Raises
    ------
    InfeasibleDesignError
        When some module cannot fit the depth within the channel budget at
        all (then no architecture exists, so no bound is meaningful).
    """
    if depth <= 0:
        raise ConfigurationError(f"depth must be positive, got {depth}")
    if channels <= 1:
        raise ConfigurationError(f"channel budget must be at least 2, got {channels}")
    max_width = channels // 2

    width_bound = 0
    total_area = 0
    for module in soc.modules:
        min_width = min_width_for_depth(module, depth, max_width)
        width_bound = max(width_bound, min_width)
        total_area += module_min_feasible_area(module, depth, max_width)

    area_bound = math.ceil(total_area / depth)
    return LowerBoundResult(
        soc_name=soc.name,
        depth=depth,
        width_bound=width_bound,
        area_bound=area_bound,
    )
