"""Baselines: theoretical lower bound and rectangle bin-packing (Iyengar et al.)."""

from repro.baselines.lower_bound import (
    LowerBoundResult,
    channel_lower_bound,
    module_min_feasible_area,
)
from repro.baselines.rectangle import (
    PackedColumn,
    RectanglePackingResult,
    pack_rectangles,
)

__all__ = [
    "LowerBoundResult",
    "channel_lower_bound",
    "module_min_feasible_area",
    "PackedColumn",
    "RectanglePackingResult",
    "pack_rectangles",
]
