"""Rectangle bin-packing baseline, in the spirit of Iyengar et al. (ITC 2002).

The prior-work approach the paper compares against ([7]) models every module
as a rectangle -- width = TAM wires, height = test time at that width -- and
packs the rectangles into a bin whose height is the ATE vector-memory depth,
minimising the total packed width (and hence the ATE channel count per SOC).

This reproduction implements the approach with the documented limitations
the paper points out:

* modules are packed as **rigid** rectangles at their cheapest feasible
  Pareto width; placing a module on a wider column does *not* re-design its
  wrapper, so the extra width is wasted (whereas the paper's Step 1 re-wraps
  modules at the group width);
* the goal is purely to minimise the channel count, i.e. to maximise the
  number of sites; there is no Step-2 style throughput optimisation;
* stimuli broadcast is assumed (as [7] does), although the caller can
  evaluate the result in either channel-arithmetic mode.

The result type mirrors :class:`~repro.tam.architecture.TestArchitecture`
closely enough for the Table-1 experiment to report both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.optimize.channels import max_sites
from repro.soc.module import Module
from repro.soc.soc import Soc
from repro.wrapper.pareto import ParetoPoint, best_width_for_depth


@dataclass(frozen=True)
class PackedColumn:
    """One column (channel group) of the rectangle packing."""

    index: int
    width: int
    fill: int
    module_names: tuple[str, ...]

    def free_depth(self, depth: int) -> int:
        """Unused height of this column for a bin of height ``depth``."""
        return max(0, depth - self.fill)


@dataclass(frozen=True)
class RectanglePackingResult:
    """Outcome of the rectangle bin-packing baseline for one SOC and ATE."""

    soc_name: str
    depth: int
    columns: tuple[PackedColumn, ...]

    @property
    def tam_width(self) -> int:
        """Total packed TAM width."""
        return sum(column.width for column in self.columns)

    @property
    def ate_channels(self) -> int:
        """ATE channels per SOC (``k = 2 *`` total width)."""
        return 2 * self.tam_width

    @property
    def test_time_cycles(self) -> int:
        """SOC test time: the largest column fill."""
        return max(column.fill for column in self.columns)

    def max_sites(self, channels: int, broadcast: bool = True) -> int:
        """Maximum multi-site on an ATE with ``channels`` channels."""
        return max_sites(channels, self.ate_channels, broadcast)


def _cheapest_feasible_point(
    module: Module, depth: int, max_width: int
) -> ParetoPoint:
    point = best_width_for_depth(module, depth, max_width)
    if point is None:
        raise InfeasibleDesignError(
            f"module {module.name!r} cannot fit a depth of {depth} vectors "
            f"within {max_width} TAM wires",
            module_name=module.name,
        )
    return point


def pack_rectangles(soc: Soc, channels: int, depth: int) -> RectanglePackingResult:
    """Pack ``soc``'s module rectangles into columns of height ``depth``.

    Modules are taken at their cheapest feasible Pareto point, sorted by
    decreasing height (test time), and placed first-fit into existing
    columns; a module that fits no column's remaining height opens a new
    column.  Column widths grow to the widest rectangle they contain.

    Raises
    ------
    InfeasibleDesignError
        When a module cannot fit the depth at all, or the resulting packing
        exceeds the ATE channel budget.
    """
    if channels <= 1:
        raise ConfigurationError(f"channel budget must be at least 2, got {channels}")
    if depth <= 0:
        raise ConfigurationError(f"depth must be positive, got {depth}")
    max_width = channels // 2

    rectangles = [
        (module, _cheapest_feasible_point(module, depth, max_width))
        for module in soc.modules
    ]
    rectangles.sort(
        key=lambda pair: (-pair[1].test_time_cycles, -pair[1].width, pair[0].name)
    )

    widths: list[int] = []
    fills: list[int] = []
    names: list[list[str]] = []
    for module, point in rectangles:
        placed = False
        for position in range(len(widths)):
            if fills[position] + point.test_time_cycles <= depth:
                fills[position] += point.test_time_cycles
                widths[position] = max(widths[position], point.width)
                names[position].append(module.name)
                placed = True
                break
        if not placed:
            widths.append(point.width)
            fills.append(point.test_time_cycles)
            names.append([module.name])
        if sum(widths) > max_width:
            raise InfeasibleDesignError(
                f"rectangle packing of {soc.name!r} exceeds the {channels}-channel budget"
            )

    columns = tuple(
        PackedColumn(
            index=index,
            width=widths[index],
            fill=fills[index],
            module_names=tuple(names[index]),
        )
        for index in range(len(widths))
    )
    return RectanglePackingResult(soc_name=soc.name, depth=depth, columns=columns)
