"""Plain-text table rendering used by experiments, benches and the CLI.

The experiments produce their results as :class:`Table` objects: a header
row plus data rows of strings/numbers.  Rendering is deliberately simple
(fixed-width columns, Markdown-compatible separators) so the regenerated
paper tables can be diffed and embedded in EXPERIMENTS.md verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.exceptions import ConfigurationError


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


@dataclass
class Table:
    """A small immutable-ish table of results.

    Attributes
    ----------
    title:
        Table caption (e.g. ``"Table 1 -- d695"``).
    columns:
        Column headers.
    rows:
        Data rows; each row must have exactly ``len(columns)`` entries.
    """

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.columns:
            raise ConfigurationError("a table needs at least one column")
        self.columns = [str(column) for column in self.columns]
        self.rows = [[_format_cell(cell) for cell in row] for row in self.rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ConfigurationError(
                    f"row {row!r} has {len(row)} cells, expected {len(self.columns)}"
                )

    def add_row(self, values: Iterable[object]) -> "Table":
        """Append one row (values are formatted with the default formatter)."""
        row = [_format_cell(value) for value in values]
        if len(row) != len(self.columns):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells, expected {len(self.columns)}"
            )
        self.rows.append(row)
        return self

    @property
    def num_rows(self) -> int:
        """Number of data rows."""
        return len(self.rows)

    def column(self, name: str) -> list[str]:
        """Return all values of the column called ``name``."""
        try:
            index = list(self.columns).index(name)
        except ValueError as error:
            raise KeyError(f"table has no column {name!r}") from error
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Render the table as fixed-width text with a Markdown-style header."""
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for position, cell in enumerate(row):
                widths[position] = max(widths[position], len(cell))

        def format_row(cells: Sequence[str]) -> str:
            return " | ".join(cell.rjust(widths[position]) for position, cell in enumerate(cells))

        lines = [self.title, ""]
        lines.append(format_row(list(self.columns)))
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(format_row(row))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured Markdown."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)
