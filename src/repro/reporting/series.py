"""XY series for regenerated paper figures.

Every figure experiment returns one or more :class:`Series` objects (an
x-axis label, a y-axis label and a list of points).  The helpers here check
the qualitative "shape" properties the reproduction asserts against the
paper: monotonicity, approximate linearity, relative gains, and the location
of maxima.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class Series:
    """One named curve of a figure."""

    name: str
    x_label: str
    y_label: str
    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError(f"series {self.name!r} has no points")

    @property
    def xs(self) -> tuple[float, ...]:
        """The x coordinates."""
        return tuple(x for x, _ in self.points)

    @property
    def ys(self) -> tuple[float, ...]:
        """The y coordinates."""
        return tuple(y for _, y in self.points)

    def y_at(self, x: float) -> float:
        """Return the y value at an exact x coordinate."""
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"series {self.name!r} has no point at x={x}")

    @property
    def argmax(self) -> float:
        """x coordinate of the maximum y value."""
        best = max(self.points, key=lambda point: point[1])
        return best[0]

    @property
    def max(self) -> float:
        """Maximum y value."""
        return max(self.ys)

    @property
    def min(self) -> float:
        """Minimum y value."""
        return min(self.ys)

    def is_nondecreasing(self, tolerance: float = 0.0) -> bool:
        """True when y never drops by more than ``tolerance`` (relative)."""
        ys = self.ys
        for previous, current in zip(ys, ys[1:]):
            allowed = previous * (1.0 - tolerance) if previous > 0 else previous
            if current < allowed:
                return False
        return True

    def is_nonincreasing(self, tolerance: float = 0.0) -> bool:
        """True when y never rises by more than ``tolerance`` (relative)."""
        ys = self.ys
        for previous, current in zip(ys, ys[1:]):
            allowed = previous * (1.0 + tolerance) if previous > 0 else previous
            if current > allowed:
                return False
        return True

    def relative_gain(self) -> float:
        """Relative increase of the last point over the first point."""
        first, last = self.ys[0], self.ys[-1]
        if first == 0:
            return 0.0
        return last / first - 1.0

    def linearity_ratio(self) -> float:
        """How close the end-to-end gain tracks the x-axis growth.

        A value of 1.0 means perfectly proportional (doubling x doubles y);
        values well below 1.0 indicate sub-linear scaling.  Used to verify
        the Figure 6 claims (linear in channels, sub-linear in memory).
        """
        x_first, x_last = self.xs[0], self.xs[-1]
        y_first, y_last = self.ys[0], self.ys[-1]
        if x_first == 0 or y_first == 0 or x_last == x_first:
            raise ConfigurationError("linearity ratio needs non-zero, distinct endpoints")
        x_growth = x_last / x_first - 1.0
        y_growth = y_last / y_first - 1.0
        return y_growth / x_growth

    def render(self, width: int = 60) -> str:
        """Render the series as a small text chart (one line per point)."""
        top = self.max
        lines = [f"{self.name}  ({self.x_label} vs {self.y_label})"]
        for x, y in self.points:
            bar = "#" * (int(round(width * y / top)) if top > 0 else 0)
            lines.append(f"  {x:>12g} | {bar} {y:g}")
        return "\n".join(lines)


def series_table(series_list: Sequence[Series]) -> str:
    """Render several series that share the same x grid as aligned columns."""
    if not series_list:
        raise ConfigurationError("need at least one series")
    xs = series_list[0].xs
    for series in series_list:
        if series.xs != xs:
            raise ConfigurationError("all series must share the same x grid")
    header = [series_list[0].x_label] + [series.name for series in series_list]
    lines = ["  ".join(f"{column:>16}" for column in header)]
    for position, x in enumerate(xs):
        row = [f"{x:>16g}"] + [f"{series.ys[position]:>16.1f}" for series in series_list]
        lines.append("  ".join(row))
    return "\n".join(lines)
