"""Export of results to JSON and CSV.

Experiments return rich dataclasses; downstream users (plotting scripts,
regression dashboards) usually want flat, serialisable records.  This module
converts the library's main result types into plain dictionaries and writes
them as JSON or CSV:

* :class:`~repro.reporting.tables.Table` -> list of row dictionaries
* :class:`~repro.reporting.series.Series` -> ``{"name": ..., "points": [...]}``
* :class:`~repro.optimize.result.TwoStepResult` -> a summary record plus one
  record per evaluated site count
* :class:`~repro.tam.architecture.TestArchitecture` -> one record per channel
  group (width, fill, modules)

Only standard-library ``json`` and ``csv`` are used.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.core.exceptions import ConfigurationError
from repro.optimize.result import TwoStepResult
from repro.reporting.series import Series
from repro.reporting.tables import Table
from repro.tam.architecture import TestArchitecture


def table_to_records(table: Table) -> list[dict[str, str]]:
    """Convert a :class:`Table` into a list of per-row dictionaries."""
    return [dict(zip(table.columns, row)) for row in table.rows]


def series_to_record(series: Series) -> dict[str, Any]:
    """Convert a :class:`Series` into a JSON-friendly dictionary."""
    return {
        "name": series.name,
        "x_label": series.x_label,
        "y_label": series.y_label,
        "points": [[x, y] for x, y in series.points],
    }


def architecture_to_records(architecture: TestArchitecture) -> list[dict[str, Any]]:
    """Convert a :class:`TestArchitecture` into one record per channel group."""
    return [
        {
            "soc": architecture.soc.name,
            "group": group.index,
            "width": group.width,
            "ate_channels": group.ate_channels,
            "fill_cycles": group.fill,
            "free_depth": group.free_depth(architecture.depth),
            "modules": list(group.module_names),
        }
        for group in architecture.groups
    ]


def result_to_records(result: TwoStepResult) -> dict[str, Any]:
    """Convert a :class:`TwoStepResult` into a summary + per-site records."""
    return {
        "soc": result.step1.architecture.soc.name,
        "ate_channels": result.step1.ate.channels,
        "ate_depth": result.step1.ate.depth,
        "broadcast": result.step1.config.broadcast,
        "objective": result.step1.config.objective.value,
        "step1": {
            "channels_per_site": result.step1.channels_per_site,
            "max_sites": result.step1.max_sites,
            "test_time_cycles": result.step1.test_time_cycles,
        },
        "optimal": {
            "sites": result.optimal_sites,
            "channels_per_site": result.best.channels_per_site,
            "test_time_cycles": result.best.test_time_cycles,
            "throughput_per_hour": result.optimal_throughput,
        },
        "points": [
            {
                "sites": point.sites,
                "channels_per_site": point.channels_per_site,
                "test_time_cycles": point.test_time_cycles,
                "throughput_per_hour": point.throughput,
            }
            for point in result.points
        ],
    }


def write_json(data: Any, path: str | Path) -> Path:
    """Write ``data`` (any JSON-serialisable structure) to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True), encoding="utf-8")
    return path


def write_csv(records: Sequence[Mapping[str, Any]] | Iterable[Mapping[str, Any]],
              path: str | Path) -> Path:
    """Write an iterable of flat record dictionaries to ``path`` as CSV.

    All records must share the same keys; the header row uses the key order
    of the first record.
    """
    records = list(records)
    if not records:
        raise ConfigurationError("cannot write an empty record list to CSV")
    fieldnames = list(records[0].keys())
    for record in records:
        if list(record.keys()) != fieldnames:
            raise ConfigurationError("all CSV records must share the same keys")
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            writer.writerow({key: _flatten(value) for key, value in record.items()})
    return path


def _flatten(value: Any) -> Any:
    """Render lists/tuples as ';'-joined strings so they fit a CSV cell."""
    if isinstance(value, (list, tuple)):
        return ";".join(str(item) for item in value)
    return value
