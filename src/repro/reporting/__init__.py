"""Result formatting: tables, series and JSON/CSV export."""

from repro.reporting.tables import Table
from repro.reporting.series import Series, series_table
from repro.reporting.export import (
    architecture_to_records,
    result_to_records,
    series_to_record,
    table_to_records,
    write_csv,
    write_json,
)

__all__ = [
    "Table",
    "Series",
    "series_table",
    "architecture_to_records",
    "result_to_records",
    "series_to_record",
    "table_to_records",
    "write_csv",
    "write_json",
]
