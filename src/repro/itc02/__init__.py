"""ITC'02 SOC Test Benchmark substrate: format, parser, writer, registry."""

from repro.itc02.parser import parse_soc_text, parse_soc_file
from repro.itc02.writer import soc_to_text, write_soc_file
from repro.itc02.registry import (
    BenchmarkInfo,
    TABLE1_BENCHMARKS,
    benchmark_info,
    list_benchmarks,
    load_benchmark,
)

__all__ = [
    "parse_soc_text",
    "parse_soc_file",
    "soc_to_text",
    "write_soc_file",
    "BenchmarkInfo",
    "TABLE1_BENCHMARKS",
    "benchmark_info",
    "list_benchmarks",
    "load_benchmark",
]
