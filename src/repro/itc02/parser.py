"""Parser for the ``.soc`` benchmark format (see :mod:`repro.itc02.format`)."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.core.exceptions import InvalidSocError, ParseError
from repro.itc02.format import COMMENT_CHAR, MEMORY_FLAG
from repro.soc.builder import SocBuilder
from repro.soc.soc import Soc


@dataclass
class _ModuleDraft:
    """Mutable staging area for the module currently being parsed."""

    index: int
    name: str
    is_memory: bool
    inputs: int | None = None
    outputs: int | None = None
    bidirs: int | None = None
    scan_lengths: list[int] | None = None
    patterns: int | None = None
    line: int = 0

    def missing_fields(self) -> list[str]:
        missing = []
        if self.inputs is None:
            missing.append("Inputs")
        if self.outputs is None:
            missing.append("Outputs")
        if self.bidirs is None:
            missing.append("Bidirs")
        if self.scan_lengths is None:
            missing.append("ScanChains")
        if self.patterns is None:
            missing.append("Patterns")
        return missing


def _strip_comment(line: str) -> str:
    position = line.find(COMMENT_CHAR)
    return line if position < 0 else line[:position]


def _parse_int(token: str, what: str, filename: str | None, line: int) -> int:
    try:
        value = int(token)
    except ValueError as error:
        raise ParseError(f"{what} must be an integer, got {token!r}", filename, line) from error
    if value < 0:
        raise ParseError(f"{what} must be non-negative, got {value}", filename, line)
    return value


def parse_soc_text(text: str, filename: str | None = None) -> Soc:
    """Parse ``.soc`` file contents into an :class:`~repro.soc.soc.Soc`.

    Raises
    ------
    ParseError
        On any syntactic or structural problem; the error message carries
        the file name and line number when available.
    """
    soc_name: str | None = None
    functional_pins: int | None = None
    drafts: list[_ModuleDraft] = []
    current: _ModuleDraft | None = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].lower()

        if keyword == "socname":
            if len(tokens) != 2:
                raise ParseError("SocName expects exactly one value", filename, line_number)
            if soc_name is not None:
                raise ParseError("duplicate SocName line", filename, line_number)
            soc_name = tokens[1]
        elif keyword == "functionalpins":
            if len(tokens) != 2:
                raise ParseError("FunctionalPins expects exactly one value", filename, line_number)
            functional_pins = _parse_int(tokens[1], "FunctionalPins", filename, line_number)
        elif keyword == "module":
            if len(tokens) < 3:
                raise ParseError(
                    "Module expects an index and a name", filename, line_number
                )
            is_memory = len(tokens) > 3 and tokens[3].lower() == MEMORY_FLAG
            if len(tokens) > 3 and not is_memory:
                raise ParseError(
                    f"unexpected token {tokens[3]!r} on Module line", filename, line_number
                )
            current = _ModuleDraft(
                index=_parse_int(tokens[1], "module index", filename, line_number),
                name=tokens[2],
                is_memory=is_memory,
                line=line_number,
            )
            drafts.append(current)
        elif keyword in ("inputs", "outputs", "bidirs", "patterns"):
            if current is None:
                raise ParseError(
                    f"{tokens[0]} before any Module line", filename, line_number
                )
            if len(tokens) != 2:
                raise ParseError(f"{tokens[0]} expects exactly one value", filename, line_number)
            value = _parse_int(tokens[1], tokens[0], filename, line_number)
            setattr(current, keyword, value)
        elif keyword == "scanchains":
            if current is None:
                raise ParseError("ScanChains before any Module line", filename, line_number)
            if len(tokens) < 2:
                raise ParseError("ScanChains expects a count", filename, line_number)
            count = _parse_int(tokens[1], "scan-chain count", filename, line_number)
            lengths: list[int] = []
            if count > 0:
                if len(tokens) < 3 or tokens[2] != ":":
                    raise ParseError(
                        "ScanChains with a positive count expects ': <lengths>'",
                        filename,
                        line_number,
                    )
                lengths = [
                    _parse_int(token, "scan-chain length", filename, line_number)
                    for token in tokens[3:]
                ]
                if len(lengths) != count:
                    raise ParseError(
                        f"expected {count} scan-chain lengths, got {len(lengths)}",
                        filename,
                        line_number,
                    )
            elif len(tokens) > 2:
                raise ParseError(
                    "ScanChains 0 must not be followed by lengths", filename, line_number
                )
            current.scan_lengths = lengths
        else:
            raise ParseError(f"unknown keyword {tokens[0]!r}", filename, line_number)

    if soc_name is None:
        raise ParseError("missing SocName line", filename)
    if not drafts:
        raise ParseError(f"SOC {soc_name!r} contains no modules", filename)

    builder = SocBuilder(soc_name, functional_pins=functional_pins)
    for draft in drafts:
        missing = draft.missing_fields()
        if missing:
            raise ParseError(
                f"module {draft.name!r} is missing: {', '.join(missing)}",
                filename,
                draft.line,
            )
        try:
            builder.add_module(
                name=draft.name,
                inputs=draft.inputs or 0,
                outputs=draft.outputs or 0,
                bidirs=draft.bidirs or 0,
                scan_lengths=draft.scan_lengths or [],
                patterns=draft.patterns or 0,
                is_memory=draft.is_memory,
            )
        except InvalidSocError as error:
            raise ParseError(str(error), filename, draft.line) from error
    try:
        return builder.build()
    except InvalidSocError as error:
        raise ParseError(str(error), filename) from error


def parse_soc_file(path: str | Path) -> Soc:
    """Parse a ``.soc`` file from disk."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ParseError(f"cannot read file: {error}", str(path)) from error
    return parse_soc_text(text, filename=str(path))
