"""The ``.soc`` file format used by this reproduction.

The ITC'02 SOC Test Benchmarks (Marinissen, Iyengar & Chakrabarty, ITC 2002)
distribute each benchmark as a ``.soc`` text file listing, per module, its
terminal counts, scan chains and pattern counts.  The original files are not
shipped in this offline environment, so this reproduction defines a compact,
line-oriented format carrying exactly the per-module quantities the paper's
Problem 1 needs.  The grammar is:

.. code-block:: text

    # comment (anywhere, to end of line)
    SocName <name>
    FunctionalPins <int>          # optional chip-level pin count
    Module <index> <name> [memory]
        Inputs <int>
        Outputs <int>
        Bidirs <int>
        ScanChains <count> [: <len> <len> ...]
        Patterns <int>

* Keywords are case-insensitive; indentation is not significant.
* ``Module`` opens a new module section; the following keyword lines apply
  to it until the next ``Module`` line or end of file.
* ``ScanChains 0`` (no lengths) declares a module without internal scan.
* When ``<count>`` is positive, exactly ``<count>`` lengths must follow the
  colon.
* The trailing ``memory`` flag marks BIST-ed memory modules; it only affects
  reporting.

:data:`KEYWORDS` lists all recognised keywords; the parser and writer in
this package are inverse operations (``parse(write(soc)) == soc``).
"""

from __future__ import annotations

#: Recognised keywords of the ``.soc`` format (lower-case canonical form).
KEYWORDS = (
    "socname",
    "functionalpins",
    "module",
    "inputs",
    "outputs",
    "bidirs",
    "scanchains",
    "patterns",
)

#: Flag token marking memory modules on a ``Module`` line.
MEMORY_FLAG = "memory"

#: Comment character: everything from this character to end of line is ignored.
COMMENT_CHAR = "#"

#: Canonical file extension.
EXTENSION = ".soc"
