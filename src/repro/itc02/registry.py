"""Registry of the ITC'02 SOC Test Benchmarks used by the paper.

The paper's Table 1 evaluates four benchmarks: ``d695``, ``p22810``,
``p34392`` and ``p93791``.  This registry provides them by name:

* **d695** is loaded from the shipped ``data/d695.soc`` file, which encodes
  the published per-core data of the benchmark (ten ISCAS cores).
* **p22810**, **p34392** and **p93791** are Philips designs whose benchmark
  files are not available in this offline environment.  They are provided
  as *synthetic reconstructions*: deterministic synthetic SOCs with the
  published module counts and with total test-data volumes calibrated to
  the published single-TAM operating points (see DESIGN.md section 5).
  Absolute per-benchmark numbers therefore differ from the original files,
  but the relative behaviour of the algorithms compared in Table 1 is
  preserved.

Use :func:`load_benchmark` to obtain an SOC by name and
:func:`list_benchmarks` to enumerate what is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from importlib import resources
from typing import Callable

from repro.core.exceptions import ConfigurationError
from repro.itc02.parser import parse_soc_text
from repro.soc.soc import Soc
from repro.soc.synthetic import (
    LogicModuleProfile,
    MemoryModuleProfile,
    make_synthetic_soc,
)


@dataclass(frozen=True)
class BenchmarkInfo:
    """Metadata about one registered benchmark."""

    name: str
    modules: int
    synthetic: bool
    description: str


def _load_data_file(filename: str) -> Soc:
    package = resources.files("repro.itc02") / "data" / filename
    text = package.read_text(encoding="utf-8")
    return parse_soc_text(text, filename=filename)


def _make_d695() -> Soc:
    return _load_data_file("d695.soc")


def _make_p22810() -> Soc:
    # 28 modules; calibrated to ~7.0e6 channel*cycle units of minimum test
    # data, matching the regime of the published benchmark (test time around
    # 1.3e5 cycles on a 64-wire TAM).
    return make_synthetic_soc(
        name="p22810",
        num_logic=22,
        num_memory=6,
        seed=22810,
        target_min_area=7_000_000,
        logic_profile=LogicModuleProfile(
            median_flipflops=1200,
            sigma_flipflops=1.2,
            min_flipflops=30,
            max_flipflops=25_000,
            median_patterns=150,
            sigma_patterns=1.0,
            min_patterns=10,
            max_patterns=2500,
            median_terminals=60,
            sigma_terminals=0.7,
            min_terminals=6,
            max_terminals=400,
            target_chain_length=300,
        ),
        memory_profile=MemoryModuleProfile(
            median_patterns=120,
            sigma_patterns=0.8,
            min_patterns=10,
            max_patterns=1500,
            min_terminals=8,
            max_terminals=40,
        ),
        functional_pins=400,
    )


def _make_p34392() -> Soc:
    # 19 modules; one of the published cores dominates the test time, which
    # the heavier-tailed logic profile reproduces.  Calibrated to ~1.6e7
    # channel*cycle units.
    return make_synthetic_soc(
        name="p34392",
        num_logic=15,
        num_memory=4,
        seed=34392,
        target_min_area=16_000_000,
        logic_profile=LogicModuleProfile(
            median_flipflops=2500,
            sigma_flipflops=1.5,
            min_flipflops=50,
            max_flipflops=60_000,
            median_patterns=250,
            sigma_patterns=1.2,
            min_patterns=20,
            max_patterns=6000,
            median_terminals=80,
            sigma_terminals=0.7,
            min_terminals=8,
            max_terminals=500,
            target_chain_length=400,
        ),
        memory_profile=MemoryModuleProfile(
            median_patterns=200,
            sigma_patterns=0.9,
            min_patterns=20,
            max_patterns=2500,
            min_terminals=8,
            max_terminals=40,
        ),
        functional_pins=500,
    )


def _make_p93791() -> Soc:
    # 32 modules; the largest of the four benchmarks.  Calibrated to ~2.9e7
    # channel*cycle units (test time around 4.7e5 cycles on a 64-wire TAM).
    return make_synthetic_soc(
        name="p93791",
        num_logic=27,
        num_memory=5,
        seed=93791,
        target_min_area=29_000_000,
        logic_profile=LogicModuleProfile(
            median_flipflops=3500,
            sigma_flipflops=1.3,
            min_flipflops=100,
            max_flipflops=60_000,
            median_patterns=300,
            sigma_patterns=1.0,
            min_patterns=20,
            max_patterns=6000,
            median_terminals=100,
            sigma_terminals=0.7,
            min_terminals=10,
            max_terminals=600,
            target_chain_length=450,
        ),
        memory_profile=MemoryModuleProfile(
            median_patterns=200,
            sigma_patterns=0.9,
            min_patterns=20,
            max_patterns=2500,
            min_terminals=8,
            max_terminals=48,
        ),
        functional_pins=800,
    )


_FACTORIES: dict[str, Callable[[], Soc]] = {
    "d695": _make_d695,
    "p22810": _make_p22810,
    "p34392": _make_p34392,
    "p93791": _make_p93791,
}

_INFO: dict[str, BenchmarkInfo] = {
    "d695": BenchmarkInfo(
        name="d695",
        modules=10,
        synthetic=False,
        description="Ten ISCAS cores; encoded from published benchmark data",
    ),
    "p22810": BenchmarkInfo(
        name="p22810",
        modules=28,
        synthetic=True,
        description="Philips SOC; synthetic reconstruction calibrated to the published regime",
    ),
    "p34392": BenchmarkInfo(
        name="p34392",
        modules=19,
        synthetic=True,
        description="Philips SOC; synthetic reconstruction calibrated to the published regime",
    ),
    "p93791": BenchmarkInfo(
        name="p93791",
        modules=32,
        synthetic=True,
        description="Philips SOC; synthetic reconstruction calibrated to the published regime",
    ),
}

#: Benchmarks evaluated in the paper's Table 1, in table order.
TABLE1_BENCHMARKS = ("d695", "p22810", "p34392", "p93791")


def list_benchmarks() -> tuple[BenchmarkInfo, ...]:
    """Return metadata for every registered benchmark, in a stable order."""
    return tuple(_INFO[name] for name in sorted(_INFO))


@lru_cache(maxsize=None)
def load_benchmark(name: str) -> Soc:
    """Load a benchmark SOC by name (case-insensitive).

    Raises
    ------
    ConfigurationError
        When the name is not a registered benchmark.
    """
    key = name.lower()
    if key not in _FACTORIES:
        known = ", ".join(sorted(_FACTORIES))
        raise ConfigurationError(f"unknown benchmark {name!r}; known benchmarks: {known}")
    return _FACTORIES[key]()


def benchmark_info(name: str) -> BenchmarkInfo:
    """Return metadata for one benchmark by name."""
    key = name.lower()
    if key not in _INFO:
        known = ", ".join(sorted(_INFO))
        raise ConfigurationError(f"unknown benchmark {name!r}; known benchmarks: {known}")
    return _INFO[key]
