"""Writer for the ``.soc`` benchmark format (inverse of the parser)."""

from __future__ import annotations

from pathlib import Path

from repro.itc02.format import MEMORY_FLAG
from repro.soc.soc import Soc


def soc_to_text(soc: Soc) -> str:
    """Serialise ``soc`` into ``.soc`` file contents.

    The output round-trips through :func:`repro.itc02.parser.parse_soc_text`:
    parsing the produced text yields an SOC equal to the input.
    """
    lines: list[str] = [
        f"# {soc.name}: {len(soc.modules)} modules, "
        f"{soc.total_scan_flipflops} scan flip-flops, {soc.total_patterns} patterns",
        f"SocName {soc.name}",
    ]
    if soc.functional_pins is not None:
        lines.append(f"FunctionalPins {soc.functional_pins}")
    for index, module in enumerate(soc.modules, start=1):
        flag = f" {MEMORY_FLAG}" if module.is_memory else ""
        lines.append("")
        lines.append(f"Module {index} {module.name}{flag}")
        lines.append(f"    Inputs {module.inputs}")
        lines.append(f"    Outputs {module.outputs}")
        lines.append(f"    Bidirs {module.bidirs}")
        if module.num_scan_chains:
            lengths = " ".join(str(length) for length in module.scan_lengths)
            lines.append(f"    ScanChains {module.num_scan_chains} : {lengths}")
        else:
            lines.append("    ScanChains 0")
        lines.append(f"    Patterns {module.patterns}")
    lines.append("")
    return "\n".join(lines)


def write_soc_file(soc: Soc, path: str | Path) -> Path:
    """Write ``soc`` to ``path`` in ``.soc`` format and return the path."""
    path = Path(path)
    path.write_text(soc_to_text(soc), encoding="utf-8")
    return path
