"""Test schedule (timeline) derived from a channel-group architecture.

A :class:`~repro.tam.architecture.TestArchitecture` fixes *which* TAM tests
*which* modules; the schedule makes the timing explicit: on every channel
group the assigned modules are tested back-to-back, so each module occupies
a contiguous interval of test-clock cycles on its group.  The schedule is
what a test engineer would load into the ATE: per TAM, the order of module
tests and their start/stop cycles.

Besides being a useful artefact in its own right, the schedule exposes the
quantities the paper's Step 1 criterion 2 is really about: how much of the
ATE's vector memory is actually used (utilisation) and how much sits idle
because the groups finish at different times (imbalance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.tam.architecture import TestArchitecture
from repro.wrapper.combine import module_test_time


@dataclass(frozen=True)
class ScheduledTest:
    """One module test placed on the timeline of its channel group."""

    module_name: str
    group_index: int
    width: int
    start_cycle: int
    end_cycle: int

    @property
    def duration(self) -> int:
        """Length of the test in cycles."""
        return self.end_cycle - self.start_cycle


@dataclass(frozen=True)
class GroupTimeline:
    """The back-to-back module tests of one channel group."""

    group_index: int
    width: int
    tests: tuple[ScheduledTest, ...]

    @property
    def end_cycle(self) -> int:
        """Cycle at which the last module test of the group finishes."""
        return self.tests[-1].end_cycle if self.tests else 0

    @property
    def num_tests(self) -> int:
        """Number of module tests scheduled on this group."""
        return len(self.tests)


@dataclass(frozen=True)
class TestSchedule:
    """The complete schedule of an SOC test on its architecture.

    Attributes
    ----------
    soc_name:
        Name of the scheduled SOC.
    depth:
        Vector-memory depth the architecture was designed against.
    groups:
        Per-group timelines.
    """

    soc_name: str
    depth: int
    groups: tuple[GroupTimeline, ...]

    __test__ = False  # domain class, not a pytest test case

    # ------------------------------------------------------------------
    # Global quantities
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> int:
        """SOC test time in cycles (the latest finishing group)."""
        return max((group.end_cycle for group in self.groups), default=0)

    @property
    def total_width(self) -> int:
        """Total TAM width of the scheduled architecture."""
        return sum(group.width for group in self.groups)

    @property
    def busy_channel_cycles(self) -> int:
        """Channel*cycle units during which TAM wires carry test data."""
        return sum(
            2 * group.width * group.end_cycle for group in self.groups
        )

    def memory_utilisation(self) -> float:
        """Fraction of the occupied vector memory that carries test data.

        The ATE reserves ``depth`` vectors on every used channel; a group
        that finishes before the deepest group leaves its remaining vectors
        idle.  This is the quantity the paper's criterion 2 (minimise the
        memory filling) indirectly optimises.
        """
        reserved = 2 * self.total_width * self.makespan
        if reserved == 0:
            return 0.0
        return self.busy_channel_cycles / reserved

    def ate_utilisation(self, channels: int) -> float:
        """Fraction of all ATE channels kept busy during the SOC test."""
        if channels <= 0:
            raise ConfigurationError(f"channel count must be positive, got {channels}")
        if self.makespan == 0:
            return 0.0
        return self.busy_channel_cycles / (channels * self.makespan)

    def tests_for(self, module_name: str) -> ScheduledTest:
        """Return the scheduled interval of one module."""
        for group in self.groups:
            for test in group.tests:
                if test.module_name == module_name:
                    return test
        raise KeyError(f"module {module_name!r} is not in the schedule")

    def iter_tests(self):
        """Iterate over all scheduled module tests (group order, then time)."""
        for group in self.groups:
            yield from group.tests

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_gantt(self, width: int = 72) -> str:
        """Render the schedule as an ASCII Gantt chart.

        Each group becomes one row; module tests are drawn proportionally to
        their duration.  Intended for terminals and docs, not for parsing.
        """
        if width < 20:
            raise ConfigurationError("gantt width must be at least 20 characters")
        span = max(self.makespan, 1)
        lines = [
            f"test schedule for {self.soc_name}: {self.makespan} cycles, "
            f"memory utilisation {self.memory_utilisation() * 100:.0f}%"
        ]
        for group in self.groups:
            bar = ""
            for test in group.tests:
                cells = max(1, round(width * test.duration / span))
                label = test.module_name[: max(0, cells - 2)]
                bar += "[" + label.ljust(cells - 2, "=") + "]" if cells >= 2 else "|"
            lines.append(f"  TAM {group.group_index} (w={group.width:3d}) {bar}")
        return "\n".join(lines)


def build_schedule(architecture: TestArchitecture) -> TestSchedule:
    """Derive the serial-per-group test schedule of ``architecture``.

    Modules keep the order in which Step 1 assigned them to their group; the
    first module starts at cycle 0 and each subsequent module starts when
    its predecessor finishes.
    """
    timelines = []
    for group in architecture.groups:
        cursor = 0
        tests = []
        for module in group.modules:
            duration = module_test_time(module, group.width)
            tests.append(
                ScheduledTest(
                    module_name=module.name,
                    group_index=group.index,
                    width=group.width,
                    start_cycle=cursor,
                    end_cycle=cursor + duration,
                )
            )
            cursor += duration
        timelines.append(
            GroupTimeline(group_index=group.index, width=group.width, tests=tuple(tests))
        )
    return TestSchedule(
        soc_name=architecture.soc.name,
        depth=architecture.depth,
        groups=tuple(timelines),
    )
