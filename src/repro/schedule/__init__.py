"""Test schedules (per-TAM timelines) derived from channel-group architectures."""

from repro.schedule.timeline import (
    GroupTimeline,
    ScheduledTest,
    TestSchedule,
    build_schedule,
)

__all__ = ["GroupTimeline", "ScheduledTest", "TestSchedule", "build_schedule"]
