"""Cached structural fingerprints for frozen kernel-key dataclasses.

The evaluation kernel (:mod:`repro.solvers.evaluate`) memoises points on
tuples of frozen dataclasses -- architecture, SOC, modules, test-cell specs.
A generated dataclass ``__hash__`` re-walks every nested field tuple on
every lookup, which profiling shows dominates hot sweeps (millions of
``hash`` calls for a few thousand distinct objects).  The kernel-key
classes therefore define ``__hash__`` explicitly: the structural hash is
computed once, stored on the instance under :data:`FINGERPRINT_SLOT` via
``object.__setattr__`` (legal on frozen dataclasses), and every later
lookup hashes a precomputed int.

Two hazards shape the design:

* **Process-specific hashes.** String hashing is randomised per process
  (``PYTHONHASHSEED``), so a fingerprint must never travel between
  processes: a pickled object carrying a stale fingerprint would be equal
  to, yet hash differently from, a locally-built twin.  Classes using
  cached fingerprints assign :func:`pickle_state` to ``__getstate__`` so
  the slot is stripped from pickles and lazily recomputed on first hash in
  the receiving process.
* **Laziness.** The fingerprint is computed on first ``hash()`` rather
  than in ``__post_init__`` so unpickled instances (which skip
  ``__post_init__``) need no special handling.
"""

from __future__ import annotations

from typing import Any

#: Instance-dict slot the cached structural hash is stored under.
FINGERPRINT_SLOT = "_fingerprint"


def pickle_state(obj: Any) -> dict[str, Any]:
    """``__getstate__`` implementation that drops the cached fingerprint.

    Everything else in the instance dict (dataclass fields, cached derived
    quantities such as group fills) is process-independent and kept.
    """
    state = obj.__dict__
    if FINGERPRINT_SLOT in state:
        state = {key: value for key, value in state.items() if key != FINGERPRINT_SLOT}
    return state
