"""Unit helpers for vector-memory depths, clock frequencies and time.

The paper quotes ATE vector-memory depths in "M" (mega) vectors per channel
(e.g. 7 M) and ITC'02 Table 1 depths in "K" (kilo) vectors (e.g. 48 K).
Following ATE-industry convention these are binary multiples:

* 1 K = 1024 vectors
* 1 M = 1024 * 1024 vectors

Test times are expressed in test-clock cycles; one cycle consumes one vector
of memory on every channel, so "cycles" and "vectors per channel" are
interchangeable.  Helper functions convert between cycles and wall-clock
seconds for a given test-clock frequency.
"""

from __future__ import annotations

import math

from repro.core.exceptions import ConfigurationError

#: Number of vectors in one "K" of ATE vector memory.
KILO = 1024

#: Number of vectors in one "M" of ATE vector memory.
MEGA = 1024 * 1024


def kilo_vectors(depth_k: float) -> int:
    """Return the number of vectors in ``depth_k`` K of vector memory.

    >>> kilo_vectors(48)
    49152
    """
    if depth_k < 0:
        raise ConfigurationError(f"memory depth must be non-negative, got {depth_k} K")
    return int(round(depth_k * KILO))


def mega_vectors(depth_m: float) -> int:
    """Return the number of vectors in ``depth_m`` M of vector memory.

    >>> mega_vectors(7)
    7340032
    """
    if depth_m < 0:
        raise ConfigurationError(f"memory depth must be non-negative, got {depth_m} M")
    return int(round(depth_m * MEGA))


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a number of test-clock cycles into seconds.

    ``frequency_hz`` is the test-clock frequency; the paper uses 5 MHz.
    """
    if frequency_hz <= 0:
        raise ConfigurationError(f"test clock frequency must be positive, got {frequency_hz}")
    if cycles < 0:
        raise ConfigurationError(f"cycle count must be non-negative, got {cycles}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> int:
    """Convert seconds into a whole number of test-clock cycles (ceiling)."""
    if frequency_hz <= 0:
        raise ConfigurationError(f"test clock frequency must be positive, got {frequency_hz}")
    if seconds < 0:
        raise ConfigurationError(f"time must be non-negative, got {seconds}")
    return int(math.ceil(seconds * frequency_hz))


def format_depth(vectors: int) -> str:
    """Format a vector-memory depth the way the paper's tables do.

    Depths that are whole multiples of 1 M are printed as ``"<x>M"``, whole
    multiples of 1 K as ``"<x>K"``, anything else as a plain integer.

    >>> format_depth(7340032)
    '7M'
    >>> format_depth(49152)
    '48K'
    """
    if vectors < 0:
        raise ConfigurationError(f"vector count must be non-negative, got {vectors}")
    if vectors and vectors % MEGA == 0:
        return f"{vectors // MEGA}M"
    if vectors and vectors % KILO == 0:
        return f"{vectors // KILO}K"
    return str(vectors)


def format_si(value: float, digits: int = 3) -> str:
    """Format a value with an SI-style suffix for readable report output.

    >>> format_si(12500)
    '12.5k'
    """
    if value < 0:
        return "-" + format_si(-value, digits)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= threshold:
            return f"{value / threshold:.{digits - 2}f}{suffix}"
    return f"{value:.{digits - 2}f}"
