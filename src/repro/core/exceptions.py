"""Exception hierarchy for the ``repro`` package.

All exceptions raised by the library derive from :class:`ReproError`, so
client code can catch a single base class.  More specific subclasses are
provided for the main failure modes a user is expected to handle
programmatically:

* :class:`InvalidSocError` -- the SOC description itself is malformed
  (negative pattern counts, duplicate module names, empty SOC, ...).
* :class:`InfeasibleDesignError` -- the SOC is valid but cannot be tested on
  the given ATE (some module does not fit in the vector memory even with all
  available channels, or the channel budget is exhausted).
* :class:`ParseError` -- an ITC'02 ``.soc`` file could not be parsed.
* :class:`ConfigurationError` -- an optimisation or experiment was configured
  with inconsistent parameters (e.g. a negative index time or a yield
  outside ``[0, 1]``).
* :class:`StoreError` -- a persistent result-store record cannot be encoded
  or decoded (unregistered type, malformed payload).  Reads through
  :class:`repro.store.ResultStore` treat it as a cache miss; it only
  surfaces to callers that use the serialisation layer directly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidSocError(ReproError):
    """Raised when an SOC description violates a structural invariant."""


class InfeasibleDesignError(ReproError):
    """Raised when no test infrastructure satisfies the ATE constraints.

    The paper's Step 1 exits when a module requires more channels than the
    ATE provides, or when the channel budget is exceeded while assigning
    modules to channel groups.  Both situations map onto this exception.
    """

    def __init__(self, message: str, module_name: str | None = None):
        super().__init__(message)
        #: Name of the module that triggered the infeasibility, if known.
        self.module_name = module_name


class ParseError(ReproError):
    """Raised when an ITC'02 ``.soc`` file cannot be parsed.

    Carries the file name and line number (1-based) when available so error
    messages can point the user at the offending line.
    """

    def __init__(self, message: str, filename: str | None = None, line: int | None = None):
        location = ""
        if filename is not None:
            location += f"{filename}"
        if line is not None:
            location += f":{line}"
        if location:
            message = f"{location}: {message}"
        super().__init__(message)
        self.filename = filename
        self.line = line


class ConfigurationError(ReproError):
    """Raised when user-supplied parameters are inconsistent or out of range."""


class StoreError(ReproError):
    """Raised when a result-store payload cannot be encoded or decoded."""


class ServiceError(ReproError):
    """Raised when a campaign-service request fails.

    Covers both transport failures (server unreachable, connection dropped)
    and protocol-level rejections (the server answered with an error
    payload).  ``status`` carries the HTTP status code when one was
    received, ``None`` for pure transport failures.
    """

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status
