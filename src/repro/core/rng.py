"""Deterministic random-number helper used by synthetic SOC generators.

The reproduction needs synthetic stand-ins for proprietary designs (the
Philips PNX8550) and for ITC'02 benchmark files that are not shipped in this
offline environment.  To keep every experiment reproducible bit-for-bit, all
randomness flows through :class:`DeterministicRng`, a thin wrapper around
:class:`random.Random` that

* always requires an explicit seed,
* exposes only the handful of draws the generators need, and
* records how many draws were made (useful in tests to assert that two
  generator runs consumed the same amount of entropy).
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

from repro.core.exceptions import ConfigurationError

T = TypeVar("T")


class DeterministicRng:
    """Seeded random source with draw counting.

    Parameters
    ----------
    seed:
        Integer seed.  The same seed always yields the same sequence of
        draws, independent of platform and Python hash randomisation.
    """

    def __init__(self, seed: int):
        if not isinstance(seed, int):
            raise ConfigurationError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._random = random.Random(seed)
        self._draws = 0

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    @property
    def draws(self) -> int:
        """Number of random draws made so far."""
        return self._draws

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in ``[low, high]`` (both inclusive)."""
        if low > high:
            raise ConfigurationError(f"randint bounds reversed: [{low}, {high}]")
        self._draws += 1
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Return a uniform float in ``[low, high]``."""
        if low > high:
            raise ConfigurationError(f"uniform bounds reversed: [{low}, {high}]")
        self._draws += 1
        return self._random.uniform(low, high)

    def lognormal_int(self, median: float, sigma: float, low: int, high: int) -> int:
        """Return a log-normally distributed integer clamped to ``[low, high]``.

        Module sizes in real SOCs are heavily skewed (a few very large cores,
        many small ones); a log-normal draw reproduces that skew.  ``median``
        is the distribution median (``exp(mu)``), ``sigma`` the log-space
        standard deviation.
        """
        if median <= 0:
            raise ConfigurationError(f"median must be positive, got {median}")
        if low > high:
            raise ConfigurationError(f"lognormal bounds reversed: [{low}, {high}]")
        self._draws += 1
        import math

        value = self._random.lognormvariate(math.log(median), sigma)
        return max(low, min(high, int(round(value))))

    def choice(self, options: Sequence[T]) -> T:
        """Return a uniformly chosen element of ``options``."""
        if not options:
            raise ConfigurationError("cannot choose from an empty sequence")
        self._draws += 1
        return self._random.choice(list(options))

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """Return a shuffled copy of ``items`` (the input is not modified)."""
        copy = list(items)
        self._draws += 1
        self._random.shuffle(copy)
        return copy

    def spawn(self, offset: int) -> "DeterministicRng":
        """Return an independent child generator derived from this seed.

        Useful when a generator builds many modules and wants each module's
        parameters to be independent of how many draws previous modules made.
        """
        return DeterministicRng(self._seed * 1_000_003 + offset)
