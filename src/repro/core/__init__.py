"""Core utilities shared across the ``repro`` package.

This sub-package collects the small, dependency-free building blocks used by
every other subsystem: exception types, unit helpers (vector-memory depths,
clock frequencies, time conversions) and a deterministic random-number
facility used by the synthetic SOC generators.
"""

from repro.core.exceptions import (
    ReproError,
    InfeasibleDesignError,
    InvalidSocError,
    ParseError,
    ConfigurationError,
)
from repro.core.units import (
    KILO,
    MEGA,
    mega_vectors,
    kilo_vectors,
    cycles_to_seconds,
    seconds_to_cycles,
    format_depth,
    format_si,
)
from repro.core.rng import DeterministicRng

__all__ = [
    "ReproError",
    "InfeasibleDesignError",
    "InvalidSocError",
    "ParseError",
    "ConfigurationError",
    "KILO",
    "MEGA",
    "mega_vectors",
    "kilo_vectors",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "format_depth",
    "format_si",
    "DeterministicRng",
]
